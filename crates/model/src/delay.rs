//! Worst-case delay bounds (Section 5.3.1 of the paper).
//!
//! * **GSF**: injected packets drain within one frame window, but the
//!   window period is hard to bound tightly; the paper's worst-case
//!   estimate is `k × WF × F` cycles with `k = 2` for the modeled
//!   flow-control overhead — 24 000 cycles with Table 1 parameters,
//!   *independent of the path*.
//! * **LOFT**: the per-output-port frames bound each hop by
//!   `F × WF` cycles (the RCQ bound), so the end-to-end worst case is
//!   `F × WF × hops` — 512 cycles per hop, *proportional to the
//!   path length*.

use loft::LoftConfig;
use noc_gsf::GsfConfig;
use noc_sim::{NodeId, Routing, Topology};

/// GSF's flow-control overhead factor (`k` in the paper).
pub const GSF_FLOW_CONTROL_FACTOR: u64 = 2;

/// GSF's worst-case end-to-end latency bound in cycles
/// (path-independent).
pub fn gsf_worst_case(cfg: &GsfConfig) -> u64 {
    GSF_FLOW_CONTROL_FACTOR * cfg.frame_window as u64 * cfg.frame_size as u64
}

/// LOFT's worst-case latency bound for a path of `hops` links
/// (`F × WF × hops`, the RCQ bound).
pub fn loft_worst_case(cfg: &LoftConfig, hops: u32) -> u64 {
    cfg.frame_size as u64 * cfg.frame_window as u64 * hops as u64
}

/// LOFT's per-hop bound in cycles (512 with Table 1 parameters).
pub fn loft_per_hop(cfg: &LoftConfig) -> u64 {
    cfg.frame_size as u64 * cfg.frame_window as u64
}

/// Hop count used in the bounds: router-to-router hops plus the
/// injection and ejection links.
pub fn bound_hops(topo: &Topology, routing: Routing, src: NodeId, dst: NodeId) -> u32 {
    routing.port_path(topo, src, dst).len() as u32 + 1
}

/// LOFT's worst-case latency for a specific source/destination pair.
pub fn loft_worst_case_for(cfg: &LoftConfig, src: NodeId, dst: NodeId) -> u64 {
    loft_worst_case(cfg, bound_hops(&cfg.topo, cfg.routing, src, dst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsf_bound_matches_paper() {
        assert_eq!(gsf_worst_case(&GsfConfig::default()), 24_000);
    }

    #[test]
    fn loft_per_hop_matches_paper() {
        assert_eq!(loft_per_hop(&LoftConfig::default()), 512);
    }

    #[test]
    fn loft_bound_scales_with_path() {
        let cfg = LoftConfig::default();
        let near = loft_worst_case_for(&cfg, NodeId::new(0), NodeId::new(1));
        let far = loft_worst_case_for(&cfg, NodeId::new(0), NodeId::new(63));
        assert!(near < far);
        // 0 → 1 crosses injection + 1 link + ejection = 3 hops.
        assert_eq!(near, 512 * 3);
        // 0 → 63 crosses injection + 14 links + ejection = 16 hops.
        assert_eq!(far, 512 * 16);
    }

    #[test]
    fn loft_corner_to_corner_beats_gsf_bound() {
        let cfg = LoftConfig::default();
        let worst = loft_worst_case_for(&cfg, NodeId::new(0), NodeId::new(63));
        assert!(worst < gsf_worst_case(&GsfConfig::default()));
    }
}
