//! First-order area/power proxy (substitute for McPAT).
//!
//! The paper estimates a 64-node LOFT NoC at **32 mm²** and **50 W**
//! using McPAT configured as a wormhole router with a 256-flit
//! central buffer. McPAT is an external C++ tool, so this module
//! substitutes a linear model — storage-dominated area and power with
//! a fixed per-router logic overhead — calibrated such that the
//! reference LOFT configuration reproduces the paper's numbers
//! exactly. The model is only meant for the *relative* comparisons
//! the paper makes (LOFT vs GSF, spec-buffer sweeps); absolute
//! figures inherit McPAT's (large) error bars anyway.

use crate::storage::{gsf_router_bits, loft_router_bits};
use loft::LoftConfig;
use noc_gsf::GsfConfig;

/// Calibrated area per storage bit, mm².
///
/// Solving `64 × (bits × a + logic_area) = 32 mm²` with the reference
/// LOFT router (184k bits, see Table 2) and a 0.1 mm² logic+wire
/// constant per router.
pub const AREA_PER_BIT_MM2: f64 = 2.146e-6;

/// Fixed per-router logic/crossbar/link area, mm².
pub const LOGIC_AREA_MM2: f64 = 0.1;

/// Calibrated power per storage bit, W (leakage + amortized dynamic).
pub const POWER_PER_BIT_W: f64 = 3.25e-6;

/// Fixed per-router logic power, W.
pub const LOGIC_POWER_W: f64 = 0.18;

/// Area/power estimate of a whole NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in W.
    pub power_w: f64,
}

/// Estimates a NoC of `routers` routers with `bits_per_router`
/// storage bits each.
pub fn estimate(routers: usize, bits_per_router: u64) -> PowerEstimate {
    let r = routers as f64;
    let b = bits_per_router as f64;
    PowerEstimate {
        area_mm2: r * (b * AREA_PER_BIT_MM2 + LOGIC_AREA_MM2),
        power_w: r * (b * POWER_PER_BIT_W + LOGIC_POWER_W),
    }
}

/// Estimate for a LOFT NoC from its configuration.
pub fn loft_estimate(cfg: &LoftConfig) -> PowerEstimate {
    estimate(cfg.topo.num_nodes(), loft_router_bits(cfg).total())
}

/// Estimate for a GSF NoC from its configuration.
pub fn gsf_estimate(cfg: &GsfConfig) -> PowerEstimate {
    estimate(cfg.topo.num_nodes(), gsf_router_bits(cfg).total())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_loft_matches_paper_calibration() {
        let e = loft_estimate(&LoftConfig::default());
        // Paper: 32 mm² and 50 W for the 64-node LOFT NoC.
        assert!((e.area_mm2 - 32.0).abs() < 1.0, "area {}", e.area_mm2);
        assert!((e.power_w - 50.0).abs() < 2.0, "power {}", e.power_w);
    }

    #[test]
    fn gsf_needs_more_area_than_loft() {
        let gsf = gsf_estimate(&GsfConfig::default());
        let loft = loft_estimate(&LoftConfig::default());
        assert!(gsf.area_mm2 > loft.area_mm2);
        assert!(gsf.power_w > loft.power_w);
    }

    #[test]
    fn estimate_scales_linearly_in_routers() {
        let one = estimate(1, 100_000);
        let many = estimate(64, 100_000);
        assert!((many.area_mm2 / one.area_mm2 - 64.0).abs() < 1e-9);
    }
}
