//! Per-router storage requirements (the paper's Table 2).
//!
//! Assumptions, chosen to match the paper's accounting where it can
//! be reverse-engineered from the published totals:
//!
//! * only the four network ports are counted (the local port's
//!   buffering belongs to the NIC),
//! * GSF additionally needs a frame-sized source queue per node
//!   (2000 flits × 128 bits = 256 kbit — the dominant term),
//! * LOFT's speculative buffer is counted at its maximum swept size
//!   (16 flits),
//! * data flits are 128 bits, look-ahead flits 64 bits wide.

use loft::LoftConfig;
use noc_gsf::GsfConfig;

/// Width of a data flit in bits (Table 1).
pub const DATA_FLIT_BITS: u64 = 128;
/// Width of a look-ahead flit in bits (Table 1).
pub const LA_FLIT_BITS: u64 = 64;
/// Network ports counted per router (N/E/S/W).
pub const NET_PORTS: u64 = 4;

/// Bits needed to count `0..=n`.
pub fn bits_for(n: u64) -> u64 {
    (64 - n.leading_zeros() as u64).max(1)
}

/// GSF per-router storage breakdown, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GsfStorage {
    /// The frame-sized source queue (per node).
    pub source_queue: u64,
    /// Virtual-channel buffers over the network ports.
    pub vc_buffers: u64,
    /// Frame bookkeeping: per-flow quota counters and frame pointers.
    pub bookkeeping: u64,
}

impl GsfStorage {
    /// Total bits per router.
    pub fn total(&self) -> u64 {
        self.source_queue + self.vc_buffers + self.bookkeeping
    }
}

/// Computes GSF's per-router storage from its configuration.
pub fn gsf_router_bits(cfg: &GsfConfig) -> GsfStorage {
    let source_queue = cfg.source_queue_flits as u64 * DATA_FLIT_BITS;
    let vc_buffers = NET_PORTS * cfg.num_vcs as u64 * cfg.vc_capacity as u64 * DATA_FLIT_BITS;
    // Per-flow injection state at the source: inject frame pointer
    // (window-relative) + remaining quota; plus the head-frame
    // counter. 64 flows as in Table 1.
    let flows = 64u64;
    let quota_bits = bits_for(cfg.frame_size as u64);
    let frame_bits = bits_for(cfg.frame_window as u64);
    let bookkeeping = flows * (quota_bits + frame_bits) + bits_for(cfg.frame_window as u64);
    GsfStorage {
        source_queue,
        vc_buffers,
        bookkeeping,
    }
}

/// LOFT per-router storage breakdown, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoftStorage {
    /// Central (non-speculative) + speculative input buffers.
    pub input_buffers: u64,
    /// Output + input reservation tables.
    pub reservation_tables: u64,
    /// Per-flow LSF state (`IF`, `C`, `R`) + `HF`/`CP` pointers +
    /// `skipped` counters.
    pub flow_state: u64,
    /// Look-ahead network buffering.
    pub lookahead: u64,
}

impl LoftStorage {
    /// Total bits per router.
    pub fn total(&self) -> u64 {
        self.input_buffers + self.reservation_tables + self.flow_state + self.lookahead
    }
}

/// Computes LOFT's per-router storage from its configuration, with
/// the speculative buffer at `spec_flits_counted` (the paper counts
/// the maximum swept size, 16).
pub fn loft_router_bits_with_spec(cfg: &LoftConfig, spec_flits_counted: u64) -> LoftStorage {
    let input_buffers =
        NET_PORTS * (cfg.nonspec_buffer as u64 + spec_flits_counted) * DATA_FLIT_BITS;
    let table_entries = cfg.window_quanta() as u64;
    // Output entry: busy flag + virtual credit counter.
    let out_entry = 1 + bits_for(cfg.nonspec_quanta() as u64);
    // Input entry: flow number (64 flows), quantum number, buffer
    // pointer, output port, valid flag, switch-time slot.
    let in_entry = bits_for(63)
        + 10
        + bits_for(cfg.nonspec_quanta() as u64)
        + 3
        + 1
        + bits_for(table_entries - 1);
    let reservation_tables = NET_PORTS * table_entries * (out_entry + in_entry);
    // Per output port: 64 flows × (IF, C, R) + HF + CP + skipped.
    let flows = 64u64;
    let c_bits = bits_for(cfg.frame_size as u64);
    let if_bits = bits_for(cfg.frame_window as u64);
    let per_port = flows * (if_bits + 2 * c_bits)
        + bits_for(cfg.frame_window as u64)
        + bits_for(table_entries - 1)
        + cfg.frame_window as u64 * bits_for(cfg.frame_quanta() as u64);
    let flow_state = NET_PORTS * per_port;
    // Look-ahead network: Table 1's 3 VCs × 4 flits of 64-bit
    // look-ahead flits per port. The paper's total (1536) counts two
    // ports' worth; we count all four network ports and note the
    // difference in EXPERIMENTS.md.
    let lookahead = NET_PORTS * 3 * 4 * LA_FLIT_BITS;
    LoftStorage {
        input_buffers,
        reservation_tables,
        flow_state,
        lookahead,
    }
}

/// [`loft_router_bits_with_spec`] with the paper's 16-flit maximum.
pub fn loft_router_bits(cfg: &LoftConfig) -> LoftStorage {
    loft_router_bits_with_spec(cfg, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(63), 6);
        assert_eq!(bits_for(64), 7);
        assert_eq!(bits_for(2000), 11);
        assert_eq!(bits_for(255), 8);
    }

    #[test]
    fn gsf_source_queue_matches_paper() {
        let s = gsf_router_bits(&GsfConfig::default());
        assert_eq!(s.source_queue, 256_000); // paper's exact number
        assert_eq!(s.vc_buffers, 15_360); // paper's exact number
                                          // Total within 2% of the paper's 271379 (bookkeeping details
                                          // differ slightly).
        let total = s.total() as f64;
        assert!(
            (total - 271_379.0).abs() / 271_379.0 < 0.02,
            "total {total}"
        );
    }

    #[test]
    fn loft_input_buffers_match_paper() {
        let s = loft_router_bits(&LoftConfig::default());
        assert_eq!(s.input_buffers, 139_264); // paper's exact number
                                              // Reservation tables within 25% of the paper's 40960 (entry
                                              // encodings are not fully specified).
        let rt = s.reservation_tables as f64;
        assert!((rt - 40_960.0).abs() / 40_960.0 < 0.25, "tables {rt}");
    }

    #[test]
    fn headline_loft_saves_about_a_third() {
        let gsf = gsf_router_bits(&GsfConfig::default()).total() as f64;
        let loft = loft_router_bits(&LoftConfig::default()).total() as f64;
        let saving = 1.0 - loft / gsf;
        // Paper: "LOFT uses 32% less storage than GSF".
        assert!((0.20..0.45).contains(&saving), "saving {saving}");
    }

    #[test]
    fn smaller_spec_buffer_reduces_storage() {
        let cfg = LoftConfig::default();
        let big = loft_router_bits_with_spec(&cfg, 16).total();
        let small = loft_router_bits_with_spec(&cfg, 0).total();
        assert!(small < big);
        assert_eq!(big - small, NET_PORTS * 16 * DATA_FLIT_BITS);
    }
}
