//! # noc-model — analytic storage, delay-bound, and power models
//!
//! Everything in the LOFT paper that is *computed* rather than
//! simulated lives here:
//!
//! * [`storage`] — the per-router storage requirements of Table 2
//!   (bits of buffering and bookkeeping for GSF and LOFT),
//! * [`delay`] — the worst-case delay bounds of Section 5.3.1
//!   (GSF's `k × WF × F` versus LOFT's `F × WF × hops`),
//! * [`power`] — a first-order area/power proxy substituting for
//!   McPAT (closed-source), linearly calibrated so the paper's
//!   reference configuration reproduces its published 32 mm² / 50 W
//!   estimate.
//!
//! # Example
//!
//! ```
//! use noc_model::storage;
//! use noc_gsf::GsfConfig;
//! use loft::LoftConfig;
//!
//! let gsf = storage::gsf_router_bits(&GsfConfig::default());
//! let loft = storage::loft_router_bits(&LoftConfig::default());
//! // The paper's headline: LOFT uses roughly a third less storage.
//! assert!(loft.total() < gsf.total());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod delay;
pub mod power;
pub mod storage;
