//! Configuration of the baseline wormhole network.

use noc_sim::routing::Routing;
use noc_sim::topology::Topology;

/// Parameters of a [`crate::WormholeNetwork`].
///
/// The defaults model a generic 3-stage VC router on the paper's
/// 8×8 mesh: 4 virtual channels of 4 flits per input port and a
/// combined per-hop latency of 3 cycles (router pipeline + link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormholeConfig {
    /// Topology to build.
    pub topo: Topology,
    /// Routing algorithm.
    pub routing: Routing,
    /// Virtual channels per input port.
    pub num_vcs: usize,
    /// Buffer depth of each virtual channel, in flits.
    pub vc_capacity: usize,
    /// Cycles from switch traversal at one router to buffer write at
    /// the next (router pipeline + link traversal).
    pub hop_latency: u64,
    /// Cycles for a credit to return upstream.
    pub credit_delay: u64,
    /// Shards stepped concurrently each cycle (1 = single-threaded).
    /// Results are bit-identical at every value; see `noc_sim::par`.
    pub threads: usize,
}

impl WormholeConfig {
    /// Validates invariants shared by all constructors.
    fn validated(self) -> Self {
        assert!(self.num_vcs > 0, "need at least one virtual channel");
        assert!(
            self.vc_capacity > 0,
            "VC buffers must hold at least one flit"
        );
        assert!(self.hop_latency >= 1, "hops take at least one cycle");
        self
    }

    /// The default configuration on a custom topology.
    pub fn on(topo: Topology) -> Self {
        WormholeConfig {
            topo,
            ..Self::default()
        }
        .validated()
    }
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            topo: Topology::mesh(8, 8),
            routing: Routing::XY,
            num_vcs: 4,
            vc_capacity: 4,
            hop_latency: 3,
            credit_delay: 1,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_mesh() {
        let c = WormholeConfig::default();
        assert_eq!(c.topo.num_nodes(), 64);
        assert_eq!(c.num_vcs, 4);
    }

    #[test]
    fn on_changes_topology_only() {
        let c = WormholeConfig::on(Topology::mesh(4, 4));
        assert_eq!(c.topo.num_nodes(), 16);
        assert_eq!(c.vc_capacity, WormholeConfig::default().vc_capacity);
    }
}
