//! # noc-wormhole — baseline virtual-channel wormhole network
//!
//! A classic credit-based wormhole-switched NoC with virtual channels,
//! used by the LOFT reproduction as the no-QoS baseline and for the
//! flow-control comparison of the paper's Figure 6. The router follows
//! the canonical RC → VA → SA → ST organization with round-robin
//! separable allocation.
//!
//! # Example
//!
//! ```
//! use noc_sim::{Simulation, RunConfig};
//! use noc_traffic::Scenario;
//! use noc_wormhole::{WormholeConfig, WormholeNetwork};
//!
//! let scenario = Scenario::uniform(0.1);
//! let network = WormholeNetwork::new(WormholeConfig::default());
//! let report = Simulation::new(network, scenario.workload(1), RunConfig::short()).run();
//! assert!(report.avg_latency() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod network;

pub use config::WormholeConfig;
pub use network::WormholeNetwork;
