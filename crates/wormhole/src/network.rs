//! The wormhole network model: the baseline round-robin policy over
//! the shared VC fabric ([`noc_sim::fabric::VcFabric`]).
//!
//! The fabric owns the full cycle-accurate datapath — link arrivals,
//! credits, NIC streaming, route computation, ejection, worklists.
//! This crate supplies only what makes the network *wormhole*:
//!
//! * plain FIFO source queues,
//! * round-robin virtual-channel allocation,
//! * round-robin switch allocation,
//! * tail flits free downstream VCs immediately (no drain-before-reuse).
//!
//! The per-hop latency (router pipeline + link) is a single
//! configurable constant, defaulting to 3 cycles like the paper's
//! 3-stage routers.

use std::collections::VecDeque;

use noc_sim::fabric::{
    PolicyCtx, RouterPolicy, SwitchGrant, VcFabric, VcParams, VcRouter, LOCAL, PORTS,
};
use noc_sim::flit::{NodeId, Packet};
use noc_sim::routing::Direction;
use noc_sim::slab::PacketRef;
use noc_sim::telemetry::{NoopProbe, Probe};
use noc_sim::Network;

use crate::config::WormholeConfig;

/// The wormhole scheduling policy: FIFO sources, round-robin VC and
/// switch allocation, immediate VC reuse on tail.
///
/// All per-node state is the FIFO source queue itself, owned by the
/// fabric as the policy's [`RouterPolicy::Source`]; the policy struct
/// is stateless.
#[derive(Debug, Clone)]
struct WormholePolicy;

impl RouterPolicy for WormholePolicy {
    type Tag = ();
    type Source = VecDeque<PacketRef>;
    type Scratch = ();
    const DRAIN_BEFORE_REUSE: bool = false;

    fn new_source(&self) -> Self::Source {
        VecDeque::new()
    }

    fn on_enqueue(&mut self, node: usize, pref: PacketRef, ctx: &mut PolicyCtx<'_, Self::Source>) {
        ctx.sources[node].push_back(pref);
        ctx.woken.push(node);
    }

    fn peek_source(source: &Self::Source) -> Option<PacketRef> {
        source.front().copied()
    }

    fn pop_source(source: &mut Self::Source) -> (PacketRef, ()) {
        let pref = source.pop_front().expect("peeked source packet");
        (pref, ())
    }

    fn source_idle(source: &Self::Source) -> bool {
        source.is_empty()
    }

    fn vc_allocate((): &mut (), router: &mut VcRouter<()>, num_vcs: usize) {
        // The request masks partition pending heads by output port.
        // Grants at different outputs touch disjoint state (each
        // output's owner flags and round-robin pointer), so walking
        // requests grouped by output — ascending slot order within
        // each — makes exactly the decisions of the old flat slot
        // scan.
        for out in 0..PORTS {
            for slot in router.va_requests(out) {
                let start = router.rr_va[out];
                let base = out * num_vcs;
                let free = (0..num_vcs)
                    .map(|k| {
                        let v = start + k;
                        if v >= num_vcs {
                            v - num_vcs
                        } else {
                            v
                        }
                    })
                    .find(|&v| !router.out_owner[base + v]);
                if let Some(v) = free {
                    router.grant_vc(slot, out, v, num_vcs);
                    router.rr_va[out] = if v + 1 == num_vcs { 0 } else { v + 1 };
                }
            }
        }
    }

    fn pick_winner(router: &VcRouter<()>, out_port: usize, num_vcs: usize) -> Option<SwitchGrant> {
        // First candidate in round-robin order: an input VC routed
        // here with a flit ready and downstream credit (ejection
        // needs none). The ready mask pre-filters routed+allocated
        // non-empty slots; only credits are checked per candidate.
        for slot in router.sa_candidates(out_port, router.rr_sa[out_port]) {
            let ov = router.inputs[slot].out_vc.expect("ready slot has a VC");
            if out_port != LOCAL && router.credits[out_port * num_vcs + ov] == 0 {
                continue;
            }
            return Some(SwitchGrant {
                in_port: slot / num_vcs,
                in_vc: slot % num_vcs,
                out_vc: ov,
                slot,
            });
        }
        None
    }
}

/// The baseline credit-based wormhole network, generic over the
/// telemetry probe threaded through its fabric (defaulting to the
/// zero-cost [`NoopProbe`]).
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct WormholeNetwork<Pr: Probe = NoopProbe> {
    cfg: WormholeConfig,
    fabric: VcFabric<WormholePolicy, Pr>,
}

impl WormholeNetwork {
    /// Builds the network with telemetry disabled.
    pub fn new(cfg: WormholeConfig) -> Self {
        Self::with_probe(cfg, NoopProbe)
    }
}

impl<Pr: Probe> WormholeNetwork<Pr> {
    /// Builds the network reporting telemetry events to `probe`;
    /// retrieve the merged probe with
    /// [`WormholeNetwork::into_probe`] after the run.
    pub fn with_probe(cfg: WormholeConfig, probe: Pr) -> Self {
        let params = VcParams {
            topo: cfg.topo,
            routing: cfg.routing,
            num_vcs: cfg.num_vcs,
            vc_capacity: cfg.vc_capacity,
            hop_latency: cfg.hop_latency,
            credit_delay: cfg.credit_delay,
            threads: cfg.threads,
        };
        WormholeNetwork {
            cfg,
            fabric: VcFabric::with_probe(params, WormholePolicy, probe),
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &WormholeConfig {
        &self.cfg
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.fabric.link_flits(node, dir)
    }

    /// Consumes the network, returning the telemetry probe with every
    /// shard fork merged in deterministic order.
    #[must_use]
    pub fn into_probe(self) -> Pr {
        self.fabric.into_probe()
    }
}

impl<Pr: Probe> Network for WormholeNetwork<Pr> {
    fn num_nodes(&self) -> usize {
        self.fabric.num_nodes()
    }

    fn cycle(&self) -> u64 {
        self.fabric.cycle()
    }

    fn enqueue(&mut self, packet: Packet) {
        self.fabric.enqueue(packet);
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        self.fabric.step(out);
    }

    fn fast_forward(&mut self, cycles: u64) -> u64 {
        self.fabric.fast_forward(cycles)
    }

    fn in_flight(&self) -> usize {
        self.fabric.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::{FlowId, PacketId};
    use noc_sim::topology::Topology;

    fn packet(flow: u32, seq: u64, src: u32, dst: u32, at: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(src),
            NodeId::new(dst),
            4,
            at,
        )
    }

    fn run_until_empty(net: &mut WormholeNetwork, limit: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < limit, "network failed to drain in {limit} cycles");
        }
        out
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 63, 0));
        let out = run_until_empty(&mut net, 500);
        assert_eq!(out.len(), 1);
        let p = &out[0];
        assert!(p.ejected_at.is_some());
        // 14 hops * 3 cycles + serialization; must be at least that.
        assert!(p.total_latency().unwrap() >= 14 * 3);
        assert!(p.total_latency().unwrap() < 100);
    }

    #[test]
    fn neighbor_packet_is_fast() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 1, 0));
        let out = run_until_empty(&mut net, 100);
        let lat = out[0].total_latency().unwrap();
        assert!(lat <= 12, "one-hop latency was {lat}");
    }

    #[test]
    fn all_packets_delivered_under_load() {
        let mut net = WormholeNetwork::new(WormholeConfig::on(Topology::mesh(4, 4)));
        let mut seq = 0;
        for src in 0..16u32 {
            for dst in 0..16u32 {
                if src != dst {
                    net.enqueue(packet(src, seq, src, dst, 0));
                    seq += 1;
                }
            }
        }
        let out = run_until_empty(&mut net, 20_000);
        assert_eq!(out.len(), 240);
        // Every packet reached its own destination (checked by the
        // debug assertion in the fabric's ejection path) and has sane
        // timestamps.
        for p in &out {
            assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
        }
    }

    #[test]
    fn ejection_is_one_flit_per_cycle() {
        // Two sources blast the same destination; the destination can
        // only sink 1 flit/cycle, so 2N packets of 4 flits need at
        // least 8N cycles.
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        for seq in 0..50 {
            net.enqueue(packet(0, seq, 0, 9, 0));
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        let start = net.cycle();
        let out = run_until_empty(&mut net, 20_000);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        assert!(
            end - start >= 400,
            "100 packets x 4 flits need 400 cycles, took {}",
            end - start
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = WormholeNetwork::new(WormholeConfig::default());
            for seq in 0..20 {
                net.enqueue(packet(0, seq, 5, 60, 0));
                net.enqueue(packet(1, seq, 12, 3, 0));
            }
            run_until_empty(&mut net, 10_000)
                .iter()
                .map(|p| (p.id, p.ejected_at.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn in_flight_counts_source_queue() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        assert_eq!(net.in_flight(), 0);
        net.enqueue(packet(0, 0, 0, 63, 0));
        net.enqueue(packet(0, 1, 0, 63, 0));
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn yx_routing_delivers() {
        use noc_sim::routing::Routing;
        let mut net = WormholeNetwork::new(WormholeConfig {
            routing: Routing::YX,
            ..WormholeConfig::default()
        });
        net.enqueue(packet(0, 0, 0, 63, 0));
        net.enqueue(packet(1, 0, 63, 0, 0));
        let out = run_until_empty(&mut net, 2_000);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn torus_wrap_links_shorten_paths() {
        use noc_sim::topology::Topology;
        let lat_on = |topo| {
            let mut net = WormholeNetwork::new(WormholeConfig::on(topo));
            net.enqueue(packet(0, 0, 0, 63, 0));
            run_until_empty(&mut net, 2_000)[0].total_latency().unwrap()
        };
        let mesh = lat_on(Topology::mesh(8, 8));
        let torus = lat_on(Topology::torus(8, 8));
        assert!(torus < mesh, "torus {torus} should beat mesh {mesh}");
    }

    #[test]
    fn link_flits_probe_counts_traffic() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 1, 0));
        let _ = run_until_empty(&mut net, 1_000);
        assert_eq!(net.link_flits(NodeId::new(0), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(1), Direction::Local), 4);
        assert_eq!(net.link_flits(NodeId::new(1), Direction::East), 0);
    }

    #[test]
    fn single_vc_serializes_packets() {
        // With one VC per port, two packets from the same source to
        // the same destination cannot overlap on a link.
        let mut net = WormholeNetwork::new(WormholeConfig {
            num_vcs: 1,
            ..WormholeConfig::default()
        });
        for seq in 0..10 {
            net.enqueue(packet(0, seq, 0, 7, 0));
        }
        let out = run_until_empty(&mut net, 5_000);
        assert_eq!(out.len(), 10);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        assert!(end >= 40, "10 packets of 4 flits need at least 40 cycles");
    }
}
