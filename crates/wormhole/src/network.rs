//! The wormhole network model.
//!
//! Cycle processing order (all routers each cycle):
//!
//! 1. link arrivals are written into input VC buffers,
//! 2. returned credits are applied,
//! 3. NICs stream source-queue packets into their router's local
//!    input port (one flit/cycle, one VC per packet),
//! 4. route computation for new head flits,
//! 5. virtual-channel allocation (round-robin),
//! 6. switch allocation + traversal: each output port forwards at
//!    most one flit per cycle, consuming a credit; the freed input
//!    slot's credit travels upstream with a configurable delay.
//!
//! The per-hop latency (router pipeline + link) is a single
//! configurable constant, defaulting to 3 cycles like the paper's
//! 3-stage routers.

use std::collections::VecDeque;

use noc_sim::flit::{FlitKind, NodeId, Packet, PacketId};
use noc_sim::routing::Direction;
use noc_sim::{ActiveSet, FxHashMap, Network};

use crate::config::WormholeConfig;

const PORTS: usize = Direction::COUNT;
const LOCAL: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Flit {
    id: PacketId,
    dst: NodeId,
    kind: FlitKind,
}

#[derive(Debug, Default)]
struct VcBuf {
    q: VecDeque<Flit>,
    route: Option<usize>,
    out_vc: Option<usize>,
}

#[derive(Debug)]
struct Router {
    /// `inputs[port][vc]`
    inputs: Vec<Vec<VcBuf>>,
    /// `out_owner[port][vc]`: which (in_port, in_vc) currently owns
    /// the downstream VC reached through this output.
    out_owner: Vec<Vec<Option<(usize, usize)>>>,
    /// `credits[port][vc]`: free flit slots in the downstream VC.
    credits: Vec<Vec<u32>>,
    rr_va: [usize; PORTS],
    rr_sa: [usize; PORTS],
}

impl Router {
    fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        Router {
            inputs: (0..PORTS)
                .map(|_| (0..num_vcs).map(|_| VcBuf::default()).collect())
                .collect(),
            out_owner: vec![vec![None; num_vcs]; PORTS],
            credits: vec![vec![vc_capacity as u32; num_vcs]; PORTS],
            rr_va: [0; PORTS],
            rr_sa: [0; PORTS],
        }
    }
}

#[derive(Debug)]
struct Nic {
    /// Packets waiting to be flitized (ids into the in-flight map).
    src_queue: VecDeque<PacketId>,
    /// The packet currently streaming into the router, if any.
    current: Option<Streaming>,
    /// Free slots in each local input VC of the attached router.
    credits: Vec<u32>,
    /// Local VCs currently owned by an in-progress NIC packet.
    owned: Vec<bool>,
    rr: usize,
    /// Flits received per partially ejected packet.
    eject_progress: FxHashMap<PacketId, u16>,
}

#[derive(Debug)]
struct Streaming {
    id: PacketId,
    dst: NodeId,
    len: u16,
    pos: u16,
    vc: usize,
}

/// The baseline credit-based wormhole network.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct WormholeNetwork {
    cfg: WormholeConfig,
    cycle: u64,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// In-flight flits per (node, input port): `(arrival, vc, flit)`.
    wires: Vec<VecDeque<(u64, usize, Flit)>>,
    /// Credit returns: `(due, node, port, vc)`; `port == LOCAL` means
    /// the NIC credit pool of `node`.
    credit_events: VecDeque<(u64, usize, usize, usize)>,
    inflight: FxHashMap<PacketId, Packet>,
    /// Flits forwarded per output link, index `node * 5 + port`.
    forwarded: Vec<u64>,
    /// Wires with queued flits, index `node * 5 + port`.
    wire_work: ActiveSet,
    /// NICs with a packet streaming or queued.
    nic_work: ActiveSet,
    /// Routers with at least one buffered input flit.
    router_work: ActiveSet,
    /// Buffered input flits per router (maintains `router_work`).
    buffered: Vec<u32>,
}

impl WormholeNetwork {
    /// Builds the network.
    pub fn new(cfg: WormholeConfig) -> Self {
        let n = cfg.topo.num_nodes();
        WormholeNetwork {
            routers: (0..n)
                .map(|_| Router::new(cfg.num_vcs, cfg.vc_capacity))
                .collect(),
            nics: (0..n)
                .map(|_| Nic {
                    src_queue: VecDeque::new(),
                    current: None,
                    credits: vec![cfg.vc_capacity as u32; cfg.num_vcs],
                    owned: vec![false; cfg.num_vcs],
                    rr: 0,
                    eject_progress: FxHashMap::default(),
                })
                .collect(),
            wires: vec![VecDeque::new(); n * PORTS],
            credit_events: VecDeque::new(),
            inflight: FxHashMap::default(),
            forwarded: vec![0; n * PORTS],
            wire_work: ActiveSet::new(n * PORTS),
            nic_work: ActiveSet::new(n),
            router_work: ActiveSet::new(n),
            buffered: vec![0; n],
            cycle: 0,
            cfg,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &WormholeConfig {
        &self.cfg
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.forwarded[node.index() * PORTS + dir.index()]
    }

    fn deliver_arrivals(&mut self, now: u64) {
        let mut cursor = 0;
        while let Some(widx) = self.wire_work.first_from(cursor) {
            cursor = widx + 1;
            let node = widx / PORTS;
            let port = widx % PORTS;
            let wire = &mut self.wires[widx];
            while wire.front().is_some_and(|&(t, _, _)| t <= now) {
                let (_, vc, flit) = wire.pop_front().expect("checked front");
                let buf = &mut self.routers[node].inputs[port][vc];
                debug_assert!(
                    buf.q.len() < self.cfg.vc_capacity,
                    "credit protocol violated: buffer overflow"
                );
                buf.q.push_back(flit);
                self.buffered[node] += 1;
                self.router_work.insert(node);
            }
            if wire.is_empty() {
                self.wire_work.remove(widx);
            }
        }
    }

    fn apply_credits(&mut self, now: u64) {
        while self.credit_events.front().is_some_and(|&(t, ..)| t <= now) {
            let (_, node, port, vc) = self.credit_events.pop_front().expect("checked front");
            if port == LOCAL {
                self.nics[node].credits[vc] += 1;
            } else {
                self.routers[node].credits[port][vc] += 1;
            }
        }
    }

    fn nic_inject(&mut self, now: u64) {
        let mut cursor = 0;
        while let Some(node) = self.nic_work.first_from(cursor) {
            cursor = node + 1;
            let nic = &mut self.nics[node];
            if nic.current.is_none() {
                if let Some(&pid) = nic.src_queue.front() {
                    // Allocate a free local VC, round-robin.
                    let v = (0..self.cfg.num_vcs)
                        .map(|k| (nic.rr + k) % self.cfg.num_vcs)
                        .find(|&v| !nic.owned[v]);
                    if let Some(vc) = v {
                        nic.src_queue.pop_front();
                        nic.owned[vc] = true;
                        nic.rr = (vc + 1) % self.cfg.num_vcs;
                        let p = &self.inflight[&pid];
                        nic.current = Some(Streaming {
                            id: pid,
                            dst: p.dst,
                            len: p.len_flits,
                            pos: 0,
                            vc,
                        });
                    }
                }
            }
            if let Some(cur) = &mut nic.current {
                if nic.credits[cur.vc] > 0 {
                    let kind = FlitKind::for_position(cur.pos, cur.len);
                    let flit = Flit {
                        id: cur.id,
                        dst: cur.dst,
                        kind,
                    };
                    nic.credits[cur.vc] -= 1;
                    if cur.pos == 0 {
                        self.inflight
                            .get_mut(&cur.id)
                            .expect("streaming packet is in flight")
                            .injected_at = Some(now);
                    }
                    cur.pos += 1;
                    let vc = cur.vc;
                    let done = cur.pos == cur.len;
                    if done {
                        nic.owned[vc] = false;
                        nic.current = None;
                    }
                    self.routers[node].inputs[LOCAL][vc].q.push_back(flit);
                    self.buffered[node] += 1;
                    self.router_work.insert(node);
                }
            }
            let nic = &self.nics[node];
            if nic.current.is_none() && nic.src_queue.is_empty() {
                self.nic_work.remove(node);
            }
        }
    }

    fn route_compute(&mut self) {
        let topo = self.cfg.topo;
        let routing = self.cfg.routing;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node];
            for port in router.inputs.iter_mut() {
                for buf in port.iter_mut() {
                    if buf.route.is_none() {
                        if let Some(front) = buf.q.front() {
                            if front.kind.is_head() {
                                let dir =
                                    routing.next_hop(&topo, NodeId::new(node as u32), front.dst);
                                buf.route = Some(dir.index());
                            }
                        }
                    }
                }
            }
        }
    }

    fn vc_allocate(&mut self) {
        let num_vcs = self.cfg.num_vcs;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node];
            for in_port in 0..PORTS {
                for in_vc in 0..num_vcs {
                    let buf = &router.inputs[in_port][in_vc];
                    let needs = buf.out_vc.is_none()
                        && buf.route.is_some()
                        && buf.q.front().is_some_and(|f| f.kind.is_head());
                    if !needs {
                        continue;
                    }
                    let out = buf.route.expect("checked above");
                    let start = router.rr_va[out];
                    let free = (0..num_vcs)
                        .map(|k| (start + k) % num_vcs)
                        .find(|&v| router.out_owner[out][v].is_none());
                    if let Some(v) = free {
                        router.out_owner[out][v] = Some((in_port, in_vc));
                        router.inputs[in_port][in_vc].out_vc = Some(v);
                        router.rr_va[out] = (v + 1) % num_vcs;
                    }
                }
            }
        }
    }

    fn switch_traverse(&mut self, now: u64, out: &mut Vec<Packet>) {
        let num_vcs = self.cfg.num_vcs;
        let topo = self.cfg.topo;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            for out_port in 0..PORTS {
                // Gather candidates: input VCs routed here with a flit
                // ready and downstream credit (ejection needs none).
                let router = &self.routers[node];
                let start = router.rr_sa[out_port];
                let mut winner = None;
                for k in 0..PORTS * num_vcs {
                    let slot = (start + k) % (PORTS * num_vcs);
                    let (p, v) = (slot / num_vcs, slot % num_vcs);
                    let buf = &router.inputs[p][v];
                    if buf.route != Some(out_port) || buf.q.is_empty() {
                        continue;
                    }
                    let Some(ov) = buf.out_vc else { continue };
                    if out_port != LOCAL && router.credits[out_port][ov] == 0 {
                        continue;
                    }
                    winner = Some((p, v, ov, slot));
                    break;
                }
                let Some((p, v, ov, slot)) = winner else {
                    continue;
                };
                self.forwarded[node * PORTS + out_port] += 1;
                let router = &mut self.routers[node];
                router.rr_sa[out_port] = (slot + 1) % (PORTS * num_vcs);
                let flit = router.inputs[p][v]
                    .q
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[node] -= 1;
                if self.buffered[node] == 0 {
                    self.router_work.remove(node);
                }
                if flit.kind.is_tail() {
                    router.out_owner[out_port][ov] = None;
                    router.inputs[p][v].route = None;
                    router.inputs[p][v].out_vc = None;
                }
                if out_port != LOCAL {
                    router.credits[out_port][ov] -= 1;
                }
                // Return the freed input-slot credit upstream.
                if p == LOCAL {
                    self.credit_events
                        .push_back((now + self.cfg.credit_delay, node, LOCAL, v));
                } else {
                    let dir = Direction::from_index(p);
                    let upstream = topo
                        .neighbor(NodeId::new(node as u32), dir)
                        .expect("input port implies a neighbor");
                    self.credit_events.push_back((
                        now + self.cfg.credit_delay,
                        upstream.index(),
                        dir.opposite().index(),
                        v,
                    ));
                }
                if out_port == LOCAL {
                    self.eject(node, flit, now, out);
                } else {
                    let dir = Direction::from_index(out_port);
                    let next = topo
                        .neighbor(NodeId::new(node as u32), dir)
                        .expect("route leads to a neighbor");
                    let in_port = dir.opposite().index();
                    let widx = next.index() * PORTS + in_port;
                    self.wires[widx].push_back((now + self.cfg.hop_latency, ov, flit));
                    self.wire_work.insert(widx);
                }
            }
        }
    }

    /// Full-scan cross-check of every worklist invariant (debug
    /// builds only): the active sets must contain exactly the indices
    /// a naive scan would find work at.
    #[cfg(debug_assertions)]
    fn debug_verify_worklists(&self) {
        for (i, wire) in self.wires.iter().enumerate() {
            debug_assert_eq!(
                self.wire_work.contains(i),
                !wire.is_empty(),
                "wire_work[{i}]"
            );
        }
        for (n, nic) in self.nics.iter().enumerate() {
            let active = nic.current.is_some() || !nic.src_queue.is_empty();
            debug_assert_eq!(self.nic_work.contains(n), active, "nic_work[{n}]");
        }
        for (n, router) in self.routers.iter().enumerate() {
            let count: u32 = router
                .inputs
                .iter()
                .flat_map(|port| port.iter().map(|buf| buf.q.len() as u32))
                .sum();
            debug_assert_eq!(self.buffered[n], count, "buffered[{n}]");
            debug_assert_eq!(self.router_work.contains(n), count > 0, "router_work[{n}]");
        }
    }

    fn eject(&mut self, node: usize, flit: Flit, now: u64, out: &mut Vec<Packet>) {
        let nic = &mut self.nics[node];
        let seen = nic.eject_progress.entry(flit.id).or_insert(0);
        *seen += 1;
        let total = self.inflight[&flit.id].len_flits;
        if *seen == total {
            nic.eject_progress.remove(&flit.id);
            let mut packet = self
                .inflight
                .remove(&flit.id)
                .expect("ejecting packet is in flight");
            packet.ejected_at = Some(now);
            debug_assert_eq!(packet.dst.index(), node, "packet ejected at wrong node");
            out.push(packet);
        }
    }
}

impl Network for WormholeNetwork {
    fn num_nodes(&self) -> usize {
        self.routers.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue(&mut self, packet: Packet) {
        let node = packet.src.index();
        let id = packet.id;
        self.inflight.insert(id, packet);
        self.nics[node].src_queue.push_back(id);
        self.nic_work.insert(node);
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        self.debug_verify_worklists();
        let now = self.cycle;
        self.deliver_arrivals(now);
        self.apply_credits(now);
        self.nic_inject(now);
        self.route_compute();
        self.vc_allocate();
        self.switch_traverse(now, out);
        self.cycle = now + 1;
    }

    fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::FlowId;
    use noc_sim::topology::Topology;

    fn packet(flow: u32, seq: u64, src: u32, dst: u32, at: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(src),
            NodeId::new(dst),
            4,
            at,
        )
    }

    fn run_until_empty(net: &mut WormholeNetwork, limit: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < limit, "network failed to drain in {limit} cycles");
        }
        out
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 63, 0));
        let out = run_until_empty(&mut net, 500);
        assert_eq!(out.len(), 1);
        let p = &out[0];
        assert!(p.ejected_at.is_some());
        // 14 hops * 3 cycles + serialization; must be at least that.
        assert!(p.total_latency().unwrap() >= 14 * 3);
        assert!(p.total_latency().unwrap() < 100);
    }

    #[test]
    fn neighbor_packet_is_fast() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 1, 0));
        let out = run_until_empty(&mut net, 100);
        let lat = out[0].total_latency().unwrap();
        assert!(lat <= 12, "one-hop latency was {lat}");
    }

    #[test]
    fn all_packets_delivered_under_load() {
        let mut net = WormholeNetwork::new(WormholeConfig::on(Topology::mesh(4, 4)));
        let mut seq = 0;
        for src in 0..16u32 {
            for dst in 0..16u32 {
                if src != dst {
                    net.enqueue(packet(src, seq, src, dst, 0));
                    seq += 1;
                }
            }
        }
        let out = run_until_empty(&mut net, 20_000);
        assert_eq!(out.len(), 240);
        // Every packet reached its own destination (checked by the
        // debug assertion in eject) and has sane timestamps.
        for p in &out {
            assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
        }
    }

    #[test]
    fn ejection_is_one_flit_per_cycle() {
        // Two sources blast the same destination; the destination can
        // only sink 1 flit/cycle, so 2N packets of 4 flits need at
        // least 8N cycles.
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        for seq in 0..50 {
            net.enqueue(packet(0, seq, 0, 9, 0));
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        let start = net.cycle();
        let out = run_until_empty(&mut net, 20_000);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        assert!(
            end - start >= 400,
            "100 packets x 4 flits need 400 cycles, took {}",
            end - start
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = WormholeNetwork::new(WormholeConfig::default());
            for seq in 0..20 {
                net.enqueue(packet(0, seq, 5, 60, 0));
                net.enqueue(packet(1, seq, 12, 3, 0));
            }
            run_until_empty(&mut net, 10_000)
                .iter()
                .map(|p| (p.id, p.ejected_at.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn in_flight_counts_source_queue() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        assert_eq!(net.in_flight(), 0);
        net.enqueue(packet(0, 0, 0, 63, 0));
        net.enqueue(packet(0, 1, 0, 63, 0));
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn yx_routing_delivers() {
        use noc_sim::routing::Routing;
        let mut net = WormholeNetwork::new(WormholeConfig {
            routing: Routing::YX,
            ..WormholeConfig::default()
        });
        net.enqueue(packet(0, 0, 0, 63, 0));
        net.enqueue(packet(1, 0, 63, 0, 0));
        let out = run_until_empty(&mut net, 2_000);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn torus_wrap_links_shorten_paths() {
        use noc_sim::topology::Topology;
        let lat_on = |topo| {
            let mut net = WormholeNetwork::new(WormholeConfig::on(topo));
            net.enqueue(packet(0, 0, 0, 63, 0));
            run_until_empty(&mut net, 2_000)[0].total_latency().unwrap()
        };
        let mesh = lat_on(Topology::mesh(8, 8));
        let torus = lat_on(Topology::torus(8, 8));
        assert!(torus < mesh, "torus {torus} should beat mesh {mesh}");
    }

    #[test]
    fn link_flits_probe_counts_traffic() {
        let mut net = WormholeNetwork::new(WormholeConfig::default());
        net.enqueue(packet(0, 0, 0, 1, 0));
        let _ = run_until_empty(&mut net, 1_000);
        assert_eq!(net.link_flits(NodeId::new(0), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(1), Direction::Local), 4);
        assert_eq!(net.link_flits(NodeId::new(1), Direction::East), 0);
    }

    #[test]
    fn single_vc_serializes_packets() {
        // With one VC per port, two packets from the same source to
        // the same destination cannot overlap on a link.
        let mut net = WormholeNetwork::new(WormholeConfig {
            num_vcs: 1,
            ..WormholeConfig::default()
        });
        for seq in 0..10 {
            net.enqueue(packet(0, seq, 0, 7, 0));
        }
        let out = run_until_empty(&mut net, 5_000);
        assert_eq!(out.len(), 10);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        assert!(end >= 40, "10 packets of 4 flits need at least 40 cycles");
    }
}
