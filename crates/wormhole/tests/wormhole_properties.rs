//! Randomized tests for the wormhole baseline: conservation and
//! correct delivery under random batches and configurations (cases
//! drawn from the workspace's deterministic RNG).

use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::rng::Xoshiro256;
use noc_sim::{Network, Topology};
use noc_wormhole::{WormholeConfig, WormholeNetwork};

#[test]
fn every_packet_delivered_exactly_once() {
    let mut rng = Xoshiro256::seed_from(0x3047_0001);
    for _case in 0..48 {
        let cfg = WormholeConfig {
            topo: Topology::mesh(4, 4),
            num_vcs: 1 + rng.next_below(4) as usize,
            vc_capacity: 2 + rng.next_below(6) as usize,
            ..WormholeConfig::default()
        };
        let mut net = WormholeNetwork::new(cfg);
        let batch = 1 + rng.next_below(119) as usize;
        let mut expected = Vec::new();
        for i in 0..batch {
            let a = rng.next_below(16) as u32;
            let b = rng.next_below(16) as u32;
            if a == b {
                continue;
            }
            let id = PacketId {
                flow: FlowId::new(i as u32),
                seq: 0,
            };
            net.enqueue(Packet::new(id, NodeId::new(a), NodeId::new(b), 4, 0));
            expected.push((id, b));
        }
        if expected.is_empty() {
            continue;
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 500_000, "network failed to drain");
        }
        assert_eq!(out.len(), expected.len());
        for (id, dst) in expected {
            let p = out.iter().find(|p| p.id == id).expect("delivered");
            assert_eq!(p.dst, NodeId::new(dst));
            assert!(p.created_at <= p.injected_at.unwrap());
            assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
        }
    }
}

/// Latency lower bound: no packet beats the physical minimum of
/// its path (hops × hop latency + serialization).
#[test]
fn latency_never_beats_physics() {
    let mut rng = Xoshiro256::seed_from(0x3047_0002);
    for _case in 0..48 {
        let a = rng.next_below(16) as u32;
        let b = rng.next_below(16) as u32;
        if a == b {
            continue;
        }
        let cfg = WormholeConfig::on(Topology::mesh(4, 4));
        let mut net = WormholeNetwork::new(cfg);
        net.enqueue(Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq: 0,
            },
            NodeId::new(a),
            NodeId::new(b),
            4,
            0,
        ));
        let mut out = Vec::new();
        while net.in_flight() > 0 {
            net.step(&mut out);
        }
        let hops = cfg.topo.hop_distance(NodeId::new(a), NodeId::new(b)) as u64;
        let physical_min = hops * cfg.hop_latency + 4 - 1;
        assert!(out[0].total_latency().unwrap() >= physical_min);
    }
}
