//! Property tests for the wormhole baseline: conservation and
//! correct delivery under random batches and configurations.

use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::{Network, Topology};
use noc_wormhole::{WormholeConfig, WormholeNetwork};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_packet_delivered_exactly_once(
        batch in prop::collection::vec((0u32..16, 0u32..16), 1..120),
        num_vcs in 1usize..5,
        vc_capacity in 2usize..8,
    ) {
        let cfg = WormholeConfig {
            topo: Topology::mesh(4, 4),
            num_vcs,
            vc_capacity,
            ..WormholeConfig::default()
        };
        let mut net = WormholeNetwork::new(cfg);
        let mut expected = Vec::new();
        for (i, &(a, b)) in batch.iter().enumerate() {
            if a == b {
                continue;
            }
            let id = PacketId { flow: FlowId::new(i as u32), seq: 0 };
            net.enqueue(Packet::new(id, NodeId::new(a), NodeId::new(b), 4, 0));
            expected.push((id, b));
        }
        prop_assume!(!expected.is_empty());
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            prop_assert!(guard < 500_000, "network failed to drain");
        }
        prop_assert_eq!(out.len(), expected.len());
        for (id, dst) in expected {
            let p = out.iter().find(|p| p.id == id).expect("delivered");
            prop_assert_eq!(p.dst, NodeId::new(dst));
            prop_assert!(p.created_at <= p.injected_at.unwrap());
            prop_assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
        }
    }

    /// Latency lower bound: no packet beats the physical minimum of
    /// its path (hops × hop latency + serialization).
    #[test]
    fn latency_never_beats_physics(
        a in 0u32..16,
        b in 0u32..16,
    ) {
        prop_assume!(a != b);
        let cfg = WormholeConfig::on(Topology::mesh(4, 4));
        let mut net = WormholeNetwork::new(cfg);
        net.enqueue(Packet::new(
            PacketId { flow: FlowId::new(0), seq: 0 },
            NodeId::new(a),
            NodeId::new(b),
            4,
            0,
        ));
        let mut out = Vec::new();
        while net.in_flight() > 0 {
            net.step(&mut out);
        }
        let hops = cfg.topo.hop_distance(NodeId::new(a), NodeId::new(b)) as u64;
        let physical_min = hops * cfg.hop_latency + 4 - 1;
        prop_assert!(out[0].total_latency().unwrap() >= physical_min);
    }
}
