//! # noc-traffic — synthetic workloads for the LOFT reproduction
//!
//! This crate implements every traffic pattern evaluated by the paper
//! (Section 6) plus the injection processes that drive them:
//!
//! * [`process`] — Bernoulli, regulated (deterministic), and bursty
//!   on/off packet injection,
//! * [`workload`] — the [`Workload`] type implementing
//!   [`noc_sim::TrafficSource`]: a set of flows, each with a
//!   destination rule and an injection process,
//! * [`scenario`] — ready-made builders for the paper's experiments:
//!   uniform, hotspot (equal and differentiated allocation,
//!   Figure 10), Case Study I (denial-of-service, Figure 12), and
//!   Case Study II (the pathological pattern of Figures 1 and 13).
//!
//! # Example
//!
//! ```
//! use noc_traffic::scenario::Scenario;
//!
//! // Hotspot traffic: all 63 other nodes send to node 63 at
//! // 0.02 flits/cycle each.
//! let scenario = Scenario::hotspot(0.02);
//! assert_eq!(scenario.num_flows(), 63);
//! // Reservations for a 128-slot frame: the ejection link at the
//! // hotspot is shared by all 63 flows, so each gets 2 slots.
//! let r = scenario.reservations(128)?;
//! assert!(r.iter().all(|&x| x == 2));
//! # Ok::<(), noc_sim::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod process;
pub mod scenario;
pub mod workload;

pub use process::InjectionProcess;
pub use scenario::Scenario;
pub use workload::{DestRule, Workload};
