//! Ready-made workload scenarios from the paper's evaluation
//! (Section 6), plus a few classic synthetic patterns.
//!
//! A [`Scenario`] bundles the flow endpoints, relative QoS weights,
//! injection processes, and named flow groups (for Figure 10-style
//! per-group statistics). It can instantiate a [`Workload`] for any
//! seed and compute reservations for any frame capacity, so the same
//! scenario drives both GSF (frame of 2000 flits) and LOFT (frame of
//! 256 flits).

use crate::process::InjectionProcess;
use crate::workload::{DestRule, Workload};
use noc_sim::flit::{FlowId, NodeId};
use noc_sim::flow::FlowSet;
use noc_sim::routing::Routing;
use noc_sim::topology::Topology;
use noc_sim::ConfigError;

/// One flow of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFlow {
    /// Source node.
    pub src: NodeId,
    /// Destination rule.
    pub dest: DestRule,
    /// Injection process.
    pub process: InjectionProcess,
    /// Relative weight used when scaling reservations to the most
    /// contended link.
    pub weight: f64,
    /// Explicit share of the frame (0..1], overriding weight-based
    /// scaling — used by Case Study I, where each flow is allocated
    /// exactly 1/4 of the link bandwidth.
    pub share: Option<f64>,
}

/// A named, reusable experiment workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (used by the harness output).
    pub name: String,
    /// Topology the scenario runs on.
    pub topo: Topology,
    /// Routing algorithm (the paper uses XY everywhere).
    pub routing: Routing,
    /// Packet length in flits.
    pub packet_len: u16,
    /// The flows, id order.
    pub flows: Vec<ScenarioFlow>,
    /// Named groups of flows for per-group reporting (Figure 10's
    /// partitions, Case Study groups, etc.).
    pub groups: Vec<(String, Vec<FlowId>)>,
}

impl Scenario {
    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Builds the runtime workload for a seed.
    pub fn workload(&self, seed: u64) -> Workload {
        let mut w = Workload::new(self.packet_len, seed);
        for f in &self.flows {
            w.add_flow(f.src, f.dest.clone(), f.process.clone());
        }
        w
    }

    /// Computes per-flow reservations in frame slots for a frame of
    /// `frame_capacity` slots.
    ///
    /// * Flows with an explicit [`ScenarioFlow::share`] get
    ///   `floor(share × capacity)`.
    /// * Otherwise, if every flow has a fixed destination, weights are
    ///   scaled so the most contended link is exactly filled
    ///   ([`FlowSet::assign_reservations`]).
    /// * If any flow uses random destinations (uniform traffic), the
    ///   whole frame is split in proportion to weights across *all*
    ///   flows, since any link may be shared by all of them.
    ///
    /// # Errors
    ///
    /// Returns an error if any flow would end up with a zero
    /// reservation at this capacity.
    pub fn reservations(&self, frame_capacity: u32) -> Result<Vec<u32>, ConfigError> {
        if self.flows.is_empty() {
            return Err(ConfigError::new("scenario has no flows"));
        }
        if self.flows.iter().all(|f| f.share.is_some()) {
            let mut out = Vec::with_capacity(self.flows.len());
            for (i, f) in self.flows.iter().enumerate() {
                let share = f.share.expect("checked above");
                if !(0.0..=1.0).contains(&share) {
                    return Err(ConfigError::new(format!(
                        "flow f{i} share {share} outside (0, 1]"
                    )));
                }
                let r = (share * frame_capacity as f64).floor() as u32;
                if r == 0 {
                    return Err(ConfigError::new(format!(
                        "flow f{i} share {share} rounds to zero slots"
                    )));
                }
                out.push(r);
            }
            return Ok(out);
        }
        let any_random = self
            .flows
            .iter()
            .any(|f| matches!(f.dest, DestRule::UniformRandom { .. }));
        if any_random {
            let total: f64 = self.flows.iter().map(|f| f.weight).sum();
            let mut out = Vec::with_capacity(self.flows.len());
            for (i, f) in self.flows.iter().enumerate() {
                let r = (f.weight / total * frame_capacity as f64).floor() as u32;
                if r == 0 {
                    return Err(ConfigError::new(format!(
                        "flow f{i} weight {} too small for capacity {frame_capacity}",
                        f.weight
                    )));
                }
                out.push(r);
            }
            Ok(out)
        } else {
            self.flow_set()
                .expect("all destinations fixed")
                .assign_reservations(frame_capacity)
        }
    }

    /// The [`FlowSet`] of this scenario, if every flow has a fixed
    /// destination (needed for path-based reservation math).
    pub fn flow_set(&self) -> Option<FlowSet> {
        let mut fs = FlowSet::new(self.topo, self.routing);
        for f in &self.flows {
            match f.dest {
                DestRule::Fixed(d) => {
                    fs.add(f.src, d, f.weight);
                }
                DestRule::UniformRandom { .. } => return None,
            }
        }
        Some(fs)
    }

    /// Looks up a flow group by name.
    pub fn group(&self, name: &str) -> Option<&[FlowId]> {
        self.groups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| g.as_slice())
    }

    // ----- paper scenarios --------------------------------------------

    /// The paper's default 8×8 mesh.
    pub fn default_topology() -> Topology {
        Topology::mesh(8, 8)
    }

    /// **Uniform** traffic (Figure 11a): every node is one flow
    /// sending `rate` flits/cycle to uniformly random destinations,
    /// with equal QoS weights.
    pub fn uniform(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let n = topo.num_nodes() as u32;
        let flows: Vec<ScenarioFlow> = topo
            .nodes()
            .map(|src| ScenarioFlow {
                src,
                dest: DestRule::UniformRandom { num_nodes: n },
                process: InjectionProcess::Bernoulli { rate },
                weight: 1.0,
                share: None,
            })
            .collect();
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("uniform(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    /// **Hotspot** traffic (Figures 10a and 11b): all other 63 nodes
    /// send to node 63 at `rate` flits/cycle with equal weights.
    pub fn hotspot(rate: f64) -> Scenario {
        Self::hotspot_weighted(rate, |_| 1.0, "hotspot")
    }

    /// Hotspot with per-source weights derived from the node id.
    fn hotspot_weighted(rate: f64, weight_of: impl Fn(NodeId) -> f64, name: &str) -> Scenario {
        let topo = Self::default_topology();
        let hotspot = NodeId::new(63);
        let mut flows = Vec::new();
        for src in topo.nodes() {
            if src == hotspot {
                continue;
            }
            flows.push(ScenarioFlow {
                src,
                dest: DestRule::Fixed(hotspot),
                process: InjectionProcess::Bernoulli { rate },
                weight: weight_of(src),
                share: None,
            });
        }
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("{name}(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    /// **Differentiated allocation #1** (Figure 10b): the mesh is
    /// divided into four 4×4 quadrants R1..R4 with weights 8:6:6:3;
    /// R4 (bottom-right) contains the hotspot.
    pub fn hotspot_differentiated4(rate: f64) -> Scenario {
        let weights = [8.0, 6.0, 6.0, 3.0];
        let topo = Self::default_topology();
        let quadrant = |n: NodeId| -> usize {
            let (x, y) = topo.coords(n);
            match (x < 4, y < 4) {
                (true, true) => 0,   // R1: top-left
                (true, false) => 1,  // R2: bottom-left
                (false, true) => 2,  // R3: top-right
                (false, false) => 3, // R4: bottom-right (hotspot)
            }
        };
        let mut s = Self::hotspot_weighted(rate, |n| weights[quadrant(n)], "hotspot-diff4");
        s.groups = (0..4)
            .map(|q| {
                let ids = s
                    .flows
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| quadrant(f.src) == q)
                    .map(|(i, _)| FlowId::new(i as u32))
                    .collect();
                (format!("R{}", q + 1), ids)
            })
            .collect();
        s
    }

    /// **Differentiated allocation #2** (Figure 10c): two halves with
    /// weights 9:3; R2 (bottom half) contains the hotspot.
    pub fn hotspot_differentiated2(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let half = |n: NodeId| -> usize { usize::from(topo.coords(n).1 >= 4) };
        let weights = [9.0, 3.0];
        let mut s = Self::hotspot_weighted(rate, |n| weights[half(n)], "hotspot-diff2");
        s.groups = (0..2)
            .map(|h| {
                let ids = s
                    .flows
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| half(f.src) == h)
                    .map(|(i, _)| FlowId::new(i as u32))
                    .collect();
                (format!("R{}", h + 1), ids)
            })
            .collect();
        s
    }

    /// **Case Study I** (Figure 12): denial-of-service. Nodes 0, 48,
    /// and 56 send to hotspot node 63; each flow is allocated 1/4 of
    /// the link bandwidth. Flow 0→63 is regulated at 0.2 flits/cycle;
    /// the two aggressors inject (Bernoulli) at `aggressor_rate`,
    /// possibly far beyond their allocation.
    ///
    /// Groups: `"victim"` (flow 0) and `"aggressors"` (flows 1, 2).
    pub fn case_study_1(aggressor_rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let hotspot = NodeId::new(63);
        let mk = |src: u32, process: InjectionProcess| ScenarioFlow {
            src: NodeId::new(src),
            dest: DestRule::Fixed(hotspot),
            process,
            weight: 1.0,
            share: Some(0.25),
        };
        let flows = vec![
            mk(0, InjectionProcess::Regulated { rate: 0.2 }),
            mk(
                48,
                InjectionProcess::Bernoulli {
                    rate: aggressor_rate,
                },
            ),
            mk(
                56,
                InjectionProcess::Bernoulli {
                    rate: aggressor_rate,
                },
            ),
        ];
        Scenario {
            name: format!("case-study-1(aggr={aggressor_rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![
                ("victim".to_string(), vec![FlowId::new(0)]),
                (
                    "aggressors".to_string(),
                    vec![FlowId::new(1), FlowId::new(2)],
                ),
            ],
        }
    }

    /// **Case Study II** (Figures 1 and 13): the pathological GSF
    /// scenario. The eight *grey* nodes of column 0 all send to the
    /// central hotspot (4,4); the *stripped* node (6,4) sends to its
    /// nearest neighbor (7,4). All flows inject at `rate` and — with
    /// no prior knowledge of the pattern — every flow gets the same
    /// equal share of 1/64 of a frame.
    ///
    /// Groups: `"grey"` and `"stripped"`.
    pub fn case_study_2(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let center = topo.node(4, 4);
        let mut flows = Vec::new();
        for y in 0..8 {
            flows.push(ScenarioFlow {
                src: topo.node(0, y),
                dest: DestRule::Fixed(center),
                process: InjectionProcess::Bernoulli { rate },
                weight: 1.0,
                share: Some(1.0 / 9.0),
            });
        }
        flows.push(ScenarioFlow {
            src: topo.node(6, 4),
            dest: DestRule::Fixed(topo.node(7, 4)),
            process: InjectionProcess::Bernoulli { rate },
            weight: 1.0,
            share: Some(1.0 / 9.0),
        });
        let grey: Vec<FlowId> = (0..8).map(FlowId::new).collect();
        Scenario {
            name: format!("case-study-2(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![
                ("grey".to_string(), grey),
                ("stripped".to_string(), vec![FlowId::new(8)]),
            ],
        }
    }

    /// **Bursty hotspot**: like [`Scenario::hotspot`], but sources
    /// inject with an on/off (two-state Markov) process — `rate_on`
    /// while bursting, with mean burst and idle lengths of
    /// `burst_len` and `idle_len` cycles. The frame window (`WF`)
    /// is what absorbs such bursts without breaking guarantees.
    pub fn bursty_hotspot(rate_on: f64, burst_len: f64, idle_len: f64) -> Scenario {
        let mut s = Self::hotspot_weighted(0.0, |_| 1.0, "bursty-hotspot");
        for f in s.flows.iter_mut() {
            f.process = InjectionProcess::OnOff {
                rate_on,
                p_on_to_off: 1.0 / burst_len,
                p_off_to_on: 1.0 / idle_len,
            };
        }
        s.name = format!("bursty-hotspot(on={rate_on},burst={burst_len},idle={idle_len})");
        s
    }

    /// **Low-duty bursty** traffic: the four mesh corners exchange
    /// packets diagonally with short bursts (mean 20 cycles at
    /// `rate_on`) separated by long idle periods (mean 10000 cycles).
    /// With only four flows at ~0.2% duty the *whole network* spends
    /// most of the run quiescent — the stress case for the engine's
    /// quiescence fast-forward, whereas the 63-flow
    /// [`Scenario::bursty_hotspot`] almost never goes globally idle.
    pub fn bursty_low_duty(rate_on: f64) -> Scenario {
        let topo = Self::default_topology();
        let process = InjectionProcess::OnOff {
            rate_on,
            p_on_to_off: 1.0 / 20.0,
            p_off_to_on: 1.0 / 10000.0,
        };
        let pairs = [
            ((0, 0), (7, 7)),
            ((7, 7), (0, 0)),
            ((0, 7), (7, 0)),
            ((7, 0), (0, 7)),
        ];
        let flows: Vec<ScenarioFlow> = pairs
            .iter()
            .map(|&((sx, sy), (dx, dy))| ScenarioFlow {
                src: topo.node(sx, sy),
                dest: DestRule::Fixed(topo.node(dx, dy)),
                process: process.clone(),
                weight: 1.0,
                share: None,
            })
            .collect();
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("bursty-low-duty(on={rate_on})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    /// **Sparse regulated** traffic: one flow per row, (0, y) → (7, y),
    /// each a deterministic [`InjectionProcess::Regulated`] stream at
    /// `rate` flits/cycle. All flows share the token-bucket phase, so
    /// the network sees synchronized packet waves every
    /// `packet_len / rate` cycles with a fully idle gap in between —
    /// a periodic, deterministic quiescence workload.
    pub fn regulated(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let flows: Vec<ScenarioFlow> = (0..8)
            .map(|y| ScenarioFlow {
                src: topo.node(0, y),
                dest: DestRule::Fixed(topo.node(7, y)),
                process: InjectionProcess::Regulated { rate },
                weight: 1.0,
                share: None,
            })
            .collect();
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("regulated(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    // ----- classic extra patterns -------------------------------------

    /// Transpose traffic: node (x, y) sends to (y, x). Nodes on the
    /// diagonal stay silent.
    pub fn transpose(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let mut flows = Vec::new();
        for src in topo.nodes() {
            let (x, y) = topo.coords(src);
            if x == y {
                continue;
            }
            flows.push(ScenarioFlow {
                src,
                dest: DestRule::Fixed(topo.node(y, x)),
                process: InjectionProcess::Bernoulli { rate },
                weight: 1.0,
                share: None,
            });
        }
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("transpose(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    /// Bit-complement traffic: node `i` sends to `!i & 63`.
    pub fn bit_complement(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let n = topo.num_nodes() as u32;
        let mut flows = Vec::new();
        for src in topo.nodes() {
            let dst = NodeId::new(!(src.index() as u32) & (n - 1));
            flows.push(ScenarioFlow {
                src,
                dest: DestRule::Fixed(dst),
                process: InjectionProcess::Bernoulli { rate },
                weight: 1.0,
                share: None,
            });
        }
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("bit-complement(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }

    /// Nearest-neighbor traffic: every node sends East (wrapping to
    /// the row start), the lightest-possible permutation.
    pub fn nearest_neighbor(rate: f64) -> Scenario {
        let topo = Self::default_topology();
        let mut flows = Vec::new();
        for src in topo.nodes() {
            let (x, y) = topo.coords(src);
            let dst = topo.node((x + 1) % 8, y);
            flows.push(ScenarioFlow {
                src,
                dest: DestRule::Fixed(dst),
                process: InjectionProcess::Bernoulli { rate },
                weight: 1.0,
                share: None,
            });
        }
        let all: Vec<FlowId> = (0..flows.len() as u32).map(FlowId::new).collect();
        Scenario {
            name: format!("nearest-neighbor(rate={rate})"),
            topo,
            routing: Routing::XY,
            packet_len: 4,
            flows,
            groups: vec![("all".to_string(), all)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_64_flows_equal_split() {
        let s = Scenario::uniform(0.1);
        assert_eq!(s.num_flows(), 64);
        let r = s.reservations(256).unwrap();
        assert!(r.iter().all(|&x| x == 4)); // 256 / 64
        assert!(s.flow_set().is_none());
    }

    #[test]
    fn hotspot_reservations_fill_ejection_link() {
        let s = Scenario::hotspot(0.02);
        let r = s.reservations(256).unwrap();
        assert_eq!(r.len(), 63);
        assert!(r.iter().all(|&x| x == 4)); // 256/63 floored
        let fs = s.flow_set().unwrap();
        fs.check_reservations(&r, 256).unwrap();
    }

    #[test]
    fn differentiated4_weights_ordered() {
        let s = Scenario::hotspot_differentiated4(0.05);
        assert_eq!(s.groups.len(), 4);
        let r = s.reservations(256).unwrap();
        let avg = |name: &str| {
            let g = s.group(name).unwrap();
            g.iter().map(|f| r[f.index()] as f64).sum::<f64>() / g.len() as f64
        };
        assert!(avg("R1") > avg("R2"));
        assert!((avg("R2") - avg("R3")).abs() < 1e-9);
        assert!(avg("R3") > avg("R4"));
        // R4 contains 15 senders (hotspot itself does not send).
        assert_eq!(s.group("R4").unwrap().len(), 15);
        assert_eq!(s.num_flows(), 63);
    }

    #[test]
    fn differentiated2_halves() {
        let s = Scenario::hotspot_differentiated2(0.05);
        assert_eq!(s.group("R1").unwrap().len(), 32);
        assert_eq!(s.group("R2").unwrap().len(), 31);
        let r = s.reservations(256).unwrap();
        let r1 = r[s.group("R1").unwrap()[0].index()];
        let r2 = r[s.group("R2").unwrap()[0].index()];
        assert!(r1 > 2 * r2, "r1={r1} r2={r2}");
    }

    #[test]
    fn case_study_1_shares() {
        let s = Scenario::case_study_1(0.8);
        assert_eq!(s.num_flows(), 3);
        let r = s.reservations(256).unwrap();
        assert_eq!(r, vec![64, 64, 64]); // 1/4 of the frame each
        assert_eq!(s.group("victim").unwrap().len(), 1);
        assert_eq!(s.group("aggressors").unwrap().len(), 2);
        // The victim is regulated, aggressors are Bernoulli.
        assert!(matches!(
            s.flows[0].process,
            InjectionProcess::Regulated { .. }
        ));
    }

    #[test]
    fn case_study_2_topology() {
        let s = Scenario::case_study_2(0.5);
        assert_eq!(s.num_flows(), 9);
        let r = s.reservations(256).unwrap();
        assert!(r.iter().all(|&x| x == 28)); // 1/9 of 256, floored
                                             // The stripped flow's path is disjoint from the grey paths.
        let fs = s.flow_set().unwrap();
        let stripped_links = fs.links(FlowId::new(8));
        for g in 0..8u32 {
            let grey_links = fs.links(FlowId::new(g));
            for l in &stripped_links {
                assert!(!grey_links.contains(l), "paths must be disjoint");
            }
        }
    }

    #[test]
    fn transpose_diagonal_silent() {
        let s = Scenario::transpose(0.1);
        assert_eq!(s.num_flows(), 56); // 64 - 8 diagonal nodes
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let s = Scenario::bit_complement(0.1);
        assert_eq!(s.num_flows(), 64);
        for f in &s.flows {
            if let DestRule::Fixed(d) = f.dest {
                assert_eq!(!(d.index() as u32) & 63, f.src.index() as u32);
            }
        }
    }

    #[test]
    fn workload_rate_matches_process() {
        use noc_sim::TrafficSource;
        let s = Scenario::hotspot(0.04);
        let mut w = s.workload(5);
        let mut out = Vec::new();
        for cycle in 0..50_000 {
            w.generate(cycle, &mut out);
        }
        // 63 flows * 0.04 flits/cycle / 4 flits/packet * 50_000 cycles
        let expect = 63.0 * 0.04 / 4.0 * 50_000.0;
        let got = out.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn reservation_share_out_of_range_rejected() {
        let mut s = Scenario::case_study_1(0.5);
        s.flows[0].share = Some(1.5);
        assert!(s.reservations(256).is_err());
    }

    #[test]
    fn bursty_hotspot_mean_rate() {
        let s = Scenario::bursty_hotspot(0.4, 100.0, 300.0);
        assert_eq!(s.num_flows(), 63);
        // Mean rate = rate_on × burst/(burst+idle) = 0.4 × 0.25 = 0.1.
        for f in &s.flows {
            assert!((f.process.mean_rate() - 0.1).abs() < 1e-9);
        }
        // Same reservations as the steady hotspot.
        let r = s.reservations(256).unwrap();
        assert!(r.iter().all(|&x| x == 4));
    }

    #[test]
    fn bursty_low_duty_is_sparse_and_feasible() {
        let s = Scenario::bursty_low_duty(0.6);
        assert_eq!(s.num_flows(), 4);
        // ~0.2% duty cycle: mean rate = 0.6 × 20/10020.
        for f in &s.flows {
            assert!((f.process.mean_rate() - 0.6 * 20.0 / 10020.0).abs() < 1e-9);
        }
        // Corner-to-corner XY paths are link-disjoint, so every flow
        // gets the whole frame.
        let r = s.reservations(64).unwrap();
        assert_eq!(r, vec![64; 4]);
    }

    #[test]
    fn regulated_rows_are_disjoint_and_in_phase() {
        use noc_sim::TrafficSource;
        let s = Scenario::regulated(0.05);
        assert_eq!(s.num_flows(), 8);
        let r = s.reservations(256).unwrap();
        assert_eq!(r, vec![256; 8]); // disjoint row paths
                                     // All flows fire on the same cycles: packets arrive in bursts
                                     // of 8 every packet_len/rate = 80 cycles.
        let mut w = s.workload(SEEDLESS);
        let mut out = Vec::new();
        let mut burst_cycles = Vec::new();
        for cycle in 0..400u64 {
            out.clear();
            w.generate(cycle, &mut out);
            if !out.is_empty() {
                assert_eq!(out.len(), 8, "cycle {cycle}");
                burst_cycles.push(cycle);
            }
        }
        assert_eq!(burst_cycles.len(), 4);
        for pair in burst_cycles.windows(2) {
            assert_eq!(pair[1] - pair[0], 80);
        }
    }

    /// Seed used by scenario tests that need a workload but whose
    /// processes are deterministic (seed-independent).
    const SEEDLESS: u64 = 7;

    #[test]
    fn nearest_neighbor_wraps_row() {
        let s = Scenario::nearest_neighbor(0.2);
        let f = &s.flows[7]; // node (7,0)
        assert_eq!(f.dest, DestRule::Fixed(NodeId::new(0)));
    }
}
