//! Packet injection processes.
//!
//! A process decides, cycle by cycle, whether a flow generates a new
//! packet. Rates are expressed in **flits/cycle** (the paper's unit),
//! so a flow of 4-flit packets at rate 0.2 generates a packet every
//! 20 cycles on average.

use noc_sim::rng::Xoshiro256;

/// How a flow injects packets over time.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionProcess {
    /// Memoryless injection: each cycle a packet is generated with
    /// probability `rate / packet_len`. This is the standard NoC
    /// load-sweep process.
    Bernoulli {
        /// Offered load in flits/cycle.
        rate: f64,
    },
    /// Deterministic, evenly spaced injection — the "regulated flow"
    /// of Case Study I, which never exceeds its allocated rate.
    Regulated {
        /// Offered load in flits/cycle.
        rate: f64,
    },
    /// Two-state Markov (bursty) injection: while *on*, packets are
    /// generated at `rate_on`; while *off*, none. State transitions
    /// occur each cycle with the given probabilities.
    OnOff {
        /// Offered load while in the on state, flits/cycle.
        rate_on: f64,
        /// Per-cycle probability of switching on → off.
        p_on_to_off: f64,
        /// Per-cycle probability of switching off → on.
        p_off_to_on: f64,
    },
}

impl InjectionProcess {
    /// Long-run average offered load in flits/cycle.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            InjectionProcess::Bernoulli { rate } | InjectionProcess::Regulated { rate } => rate,
            InjectionProcess::OnOff {
                rate_on,
                p_on_to_off,
                p_off_to_on,
            } => {
                let on_fraction = p_off_to_on / (p_off_to_on + p_on_to_off);
                rate_on * on_fraction
            }
        }
    }

    /// Creates the per-flow runtime state for this process.
    pub(crate) fn start(&self, packet_len: u16) -> ProcessState {
        match *self {
            InjectionProcess::Bernoulli { rate } => ProcessState::Bernoulli {
                p: rate / packet_len as f64,
            },
            InjectionProcess::Regulated { rate } => ProcessState::Regulated {
                credit: 0.0,
                per_cycle: rate / packet_len as f64,
            },
            InjectionProcess::OnOff {
                rate_on,
                p_on_to_off,
                p_off_to_on,
            } => ProcessState::OnOff {
                p: rate_on / packet_len as f64,
                p_on_to_off,
                p_off_to_on,
                on: true,
            },
        }
    }
}

/// Runtime state of a flow's injection process.
#[derive(Debug, Clone)]
pub(crate) enum ProcessState {
    Bernoulli {
        p: f64,
    },
    Regulated {
        credit: f64,
        per_cycle: f64,
    },
    OnOff {
        p: f64,
        p_on_to_off: f64,
        p_off_to_on: f64,
        on: bool,
    },
}

impl ProcessState {
    /// Returns how many packets to generate this cycle (0 or 1 for
    /// rates below one packet/cycle, which is all the paper uses).
    pub(crate) fn tick(&mut self, rng: &mut Xoshiro256) -> u32 {
        match self {
            ProcessState::Bernoulli { p } => u32::from(rng.bernoulli(*p)),
            ProcessState::Regulated { credit, per_cycle } => {
                *credit += *per_cycle;
                if *credit >= 1.0 {
                    *credit -= 1.0;
                    1
                } else {
                    0
                }
            }
            ProcessState::OnOff {
                p,
                p_on_to_off,
                p_off_to_on,
                on,
            } => {
                let fire = if *on { u32::from(rng.bernoulli(*p)) } else { 0 };
                // Transition after the emission decision.
                if *on {
                    if rng.bernoulli(*p_on_to_off) {
                        *on = false;
                    }
                } else if rng.bernoulli(*p_off_to_on) {
                    *on = true;
                }
                fire
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rate(process: InjectionProcess, cycles: u64, packet_len: u16) -> f64 {
        let mut st = process.start(packet_len);
        let mut rng = Xoshiro256::seed_from(99);
        let mut packets = 0u64;
        for _ in 0..cycles {
            packets += st.tick(&mut rng) as u64;
        }
        packets as f64 * packet_len as f64 / cycles as f64
    }

    #[test]
    fn bernoulli_hits_target_rate() {
        let r = run_rate(InjectionProcess::Bernoulli { rate: 0.2 }, 200_000, 4);
        assert!((r - 0.2).abs() < 0.01, "measured {r}");
    }

    #[test]
    fn regulated_is_exact_and_even() {
        let p = InjectionProcess::Regulated { rate: 0.2 };
        let mut st = p.start(4);
        let mut rng = Xoshiro256::seed_from(1);
        let mut gaps = Vec::new();
        let mut last = None;
        for cycle in 0..10_000u64 {
            if st.tick(&mut rng) > 0 {
                if let Some(l) = last {
                    gaps.push(cycle - l);
                }
                last = Some(cycle);
            }
        }
        // rate 0.2 flits/cycle, 4-flit packets => one packet / 20 cycles.
        assert!(gaps.iter().all(|&g| g == 20), "gaps {gaps:?}");
    }

    #[test]
    fn on_off_mean_rate_formula() {
        let p = InjectionProcess::OnOff {
            rate_on: 0.8,
            p_on_to_off: 0.01,
            p_off_to_on: 0.03,
        };
        assert!((p.mean_rate() - 0.6).abs() < 1e-12);
        let measured = run_rate(p, 2_000_000, 4);
        assert!((measured - 0.6).abs() < 0.03, "measured {measured}");
    }

    #[test]
    fn zero_rate_emits_nothing() {
        assert_eq!(
            run_rate(InjectionProcess::Bernoulli { rate: 0.0 }, 10_000, 4),
            0.0
        );
        assert_eq!(
            run_rate(InjectionProcess::Regulated { rate: 0.0 }, 10_000, 4),
            0.0
        );
    }

    #[test]
    fn full_rate_saturates_one_packet_per_packet_time() {
        let r = run_rate(InjectionProcess::Regulated { rate: 1.0 }, 10_000, 4);
        assert!((r - 1.0).abs() < 1e-3, "measured {r}");
    }
}
