//! The [`Workload`] traffic source.
//!
//! A workload is a set of flows; each flow has a source node, a
//! destination rule, and an injection process. `Workload` implements
//! [`noc_sim::TrafficSource`] so it can drive any network model.

use crate::process::{InjectionProcess, ProcessState};
use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::rng::Xoshiro256;
use noc_sim::TrafficSource;

/// How a flow picks the destination of each packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DestRule {
    /// Every packet goes to the same node (all paper experiments
    /// except uniform traffic).
    Fixed(NodeId),
    /// Each packet picks a destination uniformly at random among all
    /// nodes except the source (the paper's *uniform* pattern, where
    /// "each source is treated as a separate flow").
    UniformRandom {
        /// Total number of nodes to draw from.
        num_nodes: u32,
    },
}

#[derive(Debug, Clone)]
struct FlowState {
    src: NodeId,
    dest: DestRule,
    process: ProcessState,
    rng: Xoshiro256,
    seq: u64,
    /// Cycles `< ticked_until` have already had their injection draw
    /// consumed (either by [`Workload::generate`] or by an idle scan
    /// in [`Workload::next_active_cycle`]).
    ticked_until: u64,
    /// A positive injection decision `(cycle, packets)` consumed by
    /// the idle scan but not yet emitted; `generate` replays it when
    /// the engine reaches that cycle. At most one can exist because
    /// the scan stops at the first firing cycle.
    pending: Option<(u64, u32)>,
}

/// A complete workload: flows with processes, implementing
/// [`TrafficSource`].
///
/// # Example
///
/// ```
/// use noc_traffic::{Workload, DestRule, InjectionProcess};
/// use noc_sim::{NodeId, TrafficSource};
///
/// let mut w = Workload::new(4, 42);
/// w.add_flow(
///     NodeId::new(0),
///     DestRule::Fixed(NodeId::new(3)),
///     InjectionProcess::Regulated { rate: 0.5 },
/// );
/// let mut out = Vec::new();
/// for cycle in 0..80 {
///     w.generate(cycle, &mut out);
/// }
/// assert_eq!(out.len(), 10); // 0.5 flits/cycle / 4-flit packets
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    packet_len: u16,
    seed: u64,
    flows: Vec<FlowState>,
}

impl Workload {
    /// Creates an empty workload generating `packet_len`-flit packets,
    /// seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero.
    pub fn new(packet_len: u16, seed: u64) -> Self {
        assert!(packet_len > 0, "packets must contain at least one flit");
        Workload {
            packet_len,
            seed,
            flows: Vec::new(),
        }
    }

    /// Adds a flow; returns its id (dense, in insertion order).
    pub fn add_flow(&mut self, src: NodeId, dest: DestRule, process: InjectionProcess) -> FlowId {
        let id = FlowId::new(self.flows.len() as u32);
        self.flows.push(FlowState {
            src,
            dest,
            process: process.start(self.packet_len),
            rng: Xoshiro256::for_stream(self.seed, id.index() as u64),
            seq: 0,
            ticked_until: 0,
            pending: None,
        });
        id
    }

    /// Packet length in flits.
    pub fn packet_len(&self) -> u16 {
        self.packet_len
    }

    /// Source node of flow `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flow_src(&self, id: FlowId) -> NodeId {
        self.flows[id.index()].src
    }
}

impl TrafficSource for Workload {
    fn num_flows(&self) -> usize {
        self.flows.len()
    }

    fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        for (idx, flow) in self.flows.iter_mut().enumerate() {
            let n = if cycle < flow.ticked_until {
                // This cycle's draw was already consumed by an idle
                // scan (`next_active_cycle`); replay its decision. The
                // destination/sequence draws below still happen here,
                // in the same per-flow RNG order as a plain run (tick
                // first, then destination).
                match flow.pending {
                    Some((at, count)) if at == cycle => {
                        flow.pending = None;
                        count
                    }
                    _ => 0,
                }
            } else {
                flow.ticked_until = cycle + 1;
                flow.process.tick(&mut flow.rng)
            };
            for _ in 0..n {
                let dst = match flow.dest {
                    DestRule::Fixed(d) => d,
                    DestRule::UniformRandom { num_nodes } => {
                        // Draw among the other nodes.
                        let r = flow.rng.next_below(num_nodes as u64 - 1) as u32;
                        let src = flow.src.index() as u32;
                        NodeId::new(if r >= src { r + 1 } else { r })
                    }
                };
                out.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(idx as u32),
                        seq: flow.seq,
                    },
                    flow.src,
                    dst,
                    self.packet_len,
                    cycle,
                ));
                flow.seq += 1;
            }
        }
    }

    fn next_active_cycle(&mut self, from: u64, limit: u64) -> u64 {
        // Per-flow RNG streams are independent (`Xoshiro256::
        // for_stream`), so each flow's injection draws can be
        // consumed ahead of the clock without perturbing any other
        // flow. The scan runs every flow's process cycle by cycle —
        // exactly the draws `generate` would have made — and stops at
        // the earliest firing cycle found so far, so no draw beyond
        // the returned cycle is consumed for flows scanned later.
        let mut earliest = limit;
        for flow in &mut self.flows {
            if let Some((at, _)) = flow.pending {
                debug_assert!(at >= from, "pending injection in the past");
                earliest = earliest.min(at);
                continue;
            }
            let mut cycle = from.max(flow.ticked_until);
            while cycle < earliest {
                let n = flow.process.tick(&mut flow.rng);
                flow.ticked_until = cycle + 1;
                if n > 0 {
                    flow.pending = Some((cycle, n));
                    earliest = cycle;
                    break;
                }
                cycle += 1;
            }
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_never_targets_self() {
        let mut w = Workload::new(4, 7);
        w.add_flow(
            NodeId::new(5),
            DestRule::UniformRandom { num_nodes: 16 },
            InjectionProcess::Regulated { rate: 4.0 },
        );
        let mut out = Vec::new();
        for cycle in 0..1_000 {
            w.generate(cycle, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| p.dst != p.src));
        assert!(out.iter().all(|p| p.dst.index() < 16));
    }

    #[test]
    fn uniform_random_covers_all_destinations() {
        let mut w = Workload::new(4, 3);
        w.add_flow(
            NodeId::new(0),
            DestRule::UniformRandom { num_nodes: 8 },
            InjectionProcess::Regulated { rate: 4.0 },
        );
        let mut out = Vec::new();
        for cycle in 0..2_000 {
            w.generate(cycle, &mut out);
        }
        let mut seen = [false; 8];
        for p in &out {
            seen[p.dst.index()] = true;
        }
        assert!(!seen[0]); // never self
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn sequence_numbers_are_dense_per_flow() {
        let mut w = Workload::new(4, 1);
        w.add_flow(
            NodeId::new(0),
            DestRule::Fixed(NodeId::new(1)),
            InjectionProcess::Regulated { rate: 1.0 },
        );
        w.add_flow(
            NodeId::new(2),
            DestRule::Fixed(NodeId::new(3)),
            InjectionProcess::Regulated { rate: 0.5 },
        );
        let mut out = Vec::new();
        for cycle in 0..100 {
            w.generate(cycle, &mut out);
        }
        for fid in 0..2u32 {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|p| p.id.flow == FlowId::new(fid))
                .map(|p| p.id.seq)
                .collect();
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, expect);
        }
    }

    #[test]
    fn workloads_are_reproducible() {
        let build = || {
            let mut w = Workload::new(4, 11);
            w.add_flow(
                NodeId::new(0),
                DestRule::UniformRandom { num_nodes: 64 },
                InjectionProcess::Bernoulli { rate: 0.3 },
            );
            w
        };
        let (mut a, mut b) = (build(), build());
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for cycle in 0..5_000 {
            a.generate(cycle, &mut oa);
            b.generate(cycle, &mut ob);
        }
        assert_eq!(oa, ob);
    }

    /// Driving a workload through `next_active_cycle` (skipping the
    /// idle cycles it reports) must produce the exact packet stream of
    /// plain cycle-by-cycle generation — same cycles, destinations,
    /// and sequence numbers, for every process kind.
    #[test]
    fn idle_scan_preserves_generation_exactly() {
        let build = || {
            let mut w = Workload::new(4, 21);
            w.add_flow(
                NodeId::new(0),
                DestRule::UniformRandom { num_nodes: 16 },
                InjectionProcess::Bernoulli { rate: 0.02 },
            );
            w.add_flow(
                NodeId::new(3),
                DestRule::Fixed(NodeId::new(9)),
                InjectionProcess::Regulated { rate: 0.05 },
            );
            w.add_flow(
                NodeId::new(7),
                DestRule::UniformRandom { num_nodes: 16 },
                InjectionProcess::OnOff {
                    rate_on: 0.5,
                    p_on_to_off: 0.2,
                    p_off_to_on: 0.01,
                },
            );
            w
        };
        const END: u64 = 5_000;
        let mut plain = build();
        let mut plain_out = Vec::new();
        for cycle in 0..END {
            plain.generate(cycle, &mut plain_out);
        }

        let mut scanned = build();
        let mut scanned_out = Vec::new();
        let mut cycle = 0;
        while cycle < END {
            let next = scanned.next_active_cycle(cycle, END);
            assert!(next >= cycle && next <= END);
            cycle = next;
            if cycle < END {
                // Emit at the active cycle, then step a few "busy"
                // cycles of plain generation like the engine would
                // while packets are in flight.
                for _ in 0..3 {
                    if cycle < END {
                        scanned.generate(cycle, &mut scanned_out);
                        cycle += 1;
                    }
                }
            }
        }
        assert!(!plain_out.is_empty());
        assert_eq!(plain_out, scanned_out);
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = Workload::new(4, 1);
        let mut b = Workload::new(4, 2);
        for w in [&mut a, &mut b] {
            w.add_flow(
                NodeId::new(0),
                DestRule::Fixed(NodeId::new(1)),
                InjectionProcess::Bernoulli { rate: 0.5 },
            );
        }
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for cycle in 0..2_000 {
            a.generate(cycle, &mut oa);
            b.generate(cycle, &mut ob);
        }
        assert_ne!(
            oa.iter().map(|p| p.created_at).collect::<Vec<_>>(),
            ob.iter().map(|p| p.created_at).collect::<Vec<_>>()
        );
    }
}
