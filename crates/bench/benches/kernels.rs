//! Microbenchmarks of the simulator's hot kernels: the LSF scheduler
//! (Algorithms 1–3), per-cycle network stepping, and routing.
//!
//! Runs with `cargo bench -p loft-bench --bench kernels`. Timing uses
//! the std-only harness in `loft_bench` (the workspace builds
//! offline, so no external benchmarking framework is used).

use loft::lsf::{LinkScheduler, LsfParams, PendingQuantum};
use loft::{LoftConfig, LoftNetwork};
use loft_bench::bench_report;
use noc_sim::flit::FlowId;
use noc_sim::TrafficSource;
use noc_sim::{Network, NodeId, Routing, Topology};
use noc_traffic::Scenario;

fn lsf_schedule() {
    let params = LsfParams {
        frame_quanta: 128,
        frame_window: 2,
        flits_per_quantum: 2,
        buffer_quanta: 128,
        sink: false,
    };
    let reservations = vec![4u32; 64];
    bench_report("lsf/schedule_until_exhausted", 200, || {
        let mut s = LinkScheduler::new(params, &reservations);
        let mut booked = 0u32;
        let mut qid = 0;
        'outer: for f in 0..64u32 {
            let flow = FlowId::new(f);
            loop {
                let entry = PendingQuantum {
                    flow,
                    qid,
                    in_port: 0,
                    res_idx: 0,
                };
                match s.schedule(flow, 1, entry) {
                    Some(_) => {
                        booked += 1;
                        qid += 1;
                    }
                    None => continue 'outer,
                }
            }
        }
        booked
    });
    bench_report("lsf/advance_slot_x1024", 200, || {
        let mut s = LinkScheduler::new(params, &reservations);
        for _ in 0..1024 {
            s.advance_slot();
        }
        s.current_slot()
    });
}

fn network_step() {
    bench_report("network_step/loft_64node_1k_cycles_uniform_0.3", 20, || {
        let s = Scenario::uniform(0.3);
        let cfg = LoftConfig::default();
        let r = s.reservations(cfg.frame_size).expect("fits");
        let mut net = LoftNetwork::new(cfg, &r);
        let mut traffic = s.workload(1);
        let mut fresh = Vec::new();
        let mut out = Vec::new();
        for cycle in 0..1_000 {
            fresh.clear();
            traffic.generate(cycle, &mut fresh);
            for p in fresh.drain(..) {
                net.enqueue(p);
            }
            net.step(&mut out);
        }
        out.len()
    });
}

fn routing() {
    let topo = Topology::mesh(8, 8);
    bench_report("routing_all_pairs_xy", 100, || {
        let mut hops = 0usize;
        for a in 0..64u32 {
            for d in 0..64u32 {
                if a != d {
                    hops += Routing::XY
                        .port_path(&topo, NodeId::new(a), NodeId::new(d))
                        .len();
                }
            }
        }
        hops
    });
}

fn main() {
    lsf_schedule();
    network_step();
    routing();
}
