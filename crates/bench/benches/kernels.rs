//! Microbenchmarks of the simulator's hot kernels: the LSF scheduler
//! (Algorithms 1–3), per-cycle network stepping, and routing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use loft::lsf::{LinkScheduler, LsfParams, PendingQuantum};
use loft::{LoftConfig, LoftNetwork};
use noc_sim::flit::FlowId;
use noc_sim::{Network, NodeId, Routing, Topology};
use noc_traffic::Scenario;
use noc_sim::TrafficSource;

fn lsf_schedule(c: &mut Criterion) {
    let params = LsfParams {
        frame_quanta: 128,
        frame_window: 2,
        flits_per_quantum: 2,
        buffer_quanta: 128,
        sink: false,
    };
    let reservations = vec![4u32; 64];
    let mut g = c.benchmark_group("lsf");
    g.bench_function("schedule_until_exhausted", |b| {
        b.iter_batched(
            || LinkScheduler::new(params, &reservations),
            |mut s| {
                let mut booked = 0u32;
                let mut qid = 0;
                'outer: for f in 0..64u32 {
                    let flow = FlowId::new(f);
                    loop {
                        let entry = PendingQuantum { flow, qid, in_port: 0 };
                        match s.schedule(flow, 1, entry) {
                            Some(_) => {
                                booked += 1;
                                qid += 1;
                            }
                            None => continue 'outer,
                        }
                    }
                }
                booked
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("advance_slot_x1024", |b| {
        b.iter_batched(
            || LinkScheduler::new(params, &reservations),
            |mut s| {
                for _ in 0..1024 {
                    s.advance_slot();
                }
                s.current_slot()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn network_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    g.sample_size(20);
    g.bench_function("loft_64node_1k_cycles_uniform_0.3", |b| {
        b.iter_batched(
            || {
                let s = Scenario::uniform(0.3);
                let cfg = LoftConfig::default();
                let r = s.reservations(cfg.frame_size).expect("fits");
                (LoftNetwork::new(cfg, &r), s.workload(1))
            },
            |(mut net, mut traffic)| {
                let mut fresh = Vec::new();
                let mut out = Vec::new();
                for cycle in 0..1_000 {
                    fresh.clear();
                    traffic.generate(cycle, &mut fresh);
                    for p in fresh.drain(..) {
                        net.enqueue(p);
                    }
                    net.step(&mut out);
                }
                out.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn routing(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    c.bench_function("routing_all_pairs_xy", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64u32 {
                for d in 0..64u32 {
                    if a != d {
                        hops += Routing::XY
                            .port_path(&topo, NodeId::new(a), NodeId::new(d))
                            .len();
                    }
                }
            }
            hops
        })
    });
}

criterion_group!(benches, lsf_schedule, network_step, routing);
criterion_main!(benches);
