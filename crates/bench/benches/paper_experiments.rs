//! Criterion benches: one group per table/figure of the paper, at a
//! reduced cycle count so `cargo bench` completes quickly. These time
//! the simulator while exercising exactly the code paths the
//! full-scale harness binaries (`src/bin/fig*.rs`) use; the binaries
//! are what regenerate the paper's numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use loft::LoftConfig;
use loft_bench::{run_gsf, run_loft, run_wormhole, SEED};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

fn tiny() -> RunConfig {
    RunConfig {
        warmup: 500,
        measure: 2_000,
        drain: 1_000,
    }
}

/// Figure 10: fairness under hotspot traffic (equal allocation).
fn fig10_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_fairness");
    g.sample_size(10);
    g.bench_function("loft_hotspot_equal", |b| {
        b.iter(|| run_loft(&Scenario::hotspot(0.05), LoftConfig::default(), tiny(), SEED))
    });
    g.bench_function("loft_hotspot_diff4", |b| {
        b.iter(|| {
            run_loft(
                &Scenario::hotspot_differentiated4(0.05),
                LoftConfig::default(),
                tiny(),
                SEED,
            )
        })
    });
    g.finish();
}

/// Figure 11: uniform and hotspot load points for each network.
fn fig11_performance(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_performance");
    g.sample_size(10);
    g.bench_function("loft_uniform_0.2", |b| {
        b.iter(|| run_loft(&Scenario::uniform(0.2), LoftConfig::default(), tiny(), SEED))
    });
    g.bench_function("gsf_uniform_0.2", |b| {
        b.iter(|| run_gsf(&Scenario::uniform(0.2), GsfConfig::default(), tiny(), SEED))
    });
    g.bench_function("wormhole_uniform_0.2", |b| {
        b.iter(|| {
            run_wormhole(
                &Scenario::uniform(0.2),
                WormholeConfig::default(),
                tiny(),
                SEED,
            )
        })
    });
    g.bench_function("loft_hotspot_0.01", |b| {
        b.iter(|| run_loft(&Scenario::hotspot(0.01), LoftConfig::default(), tiny(), SEED))
    });
    g.bench_function("gsf_hotspot_0.01", |b| {
        b.iter(|| run_gsf(&Scenario::hotspot(0.01), GsfConfig::default(), tiny(), SEED))
    });
    g.finish();
}

/// Figure 12: the DoS case study (one aggressor rate).
fn fig12_case1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_case1");
    g.sample_size(10);
    g.bench_function("loft", |b| {
        b.iter(|| run_loft(&Scenario::case_study_1(0.8), LoftConfig::default(), tiny(), SEED))
    });
    g.bench_function("gsf", |b| {
        b.iter(|| run_gsf(&Scenario::case_study_1(0.8), GsfConfig::default(), tiny(), SEED))
    });
    g.finish();
}

/// Figure 13: the pathological case study (one rate).
fn fig13_case2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_case2");
    g.sample_size(10);
    g.bench_function("loft", |b| {
        b.iter(|| run_loft(&Scenario::case_study_2(0.64), LoftConfig::default(), tiny(), SEED))
    });
    g.bench_function("gsf", |b| {
        b.iter(|| run_gsf(&Scenario::case_study_2(0.64), GsfConfig::default(), tiny(), SEED))
    });
    g.finish();
}

/// Table 2 + §5.3.1: the analytic models (cheap, but benched so the
/// whole paper surface is covered).
fn table2_and_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_delay_bounds");
    g.bench_function("storage_model", |b| {
        b.iter(|| {
            let gsf = noc_model::storage::gsf_router_bits(&GsfConfig::default());
            let loft = noc_model::storage::loft_router_bits(&LoftConfig::default());
            (gsf.total(), loft.total())
        })
    });
    g.bench_function("delay_bounds_all_pairs", |b| {
        let cfg = LoftConfig::default();
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..64u32 {
                for d in 0..64u32 {
                    if a != d {
                        acc += noc_model::delay::loft_worst_case_for(
                            &cfg,
                            noc_sim::NodeId::new(a),
                            noc_sim::NodeId::new(d),
                        );
                    }
                }
            }
            acc
        })
    });
    g.finish();
}

/// Figure 6: back-to-back stream on a two-node link.
fn fig6_flowcontrol(c: &mut Criterion) {
    use loft::LoftNetwork;
    use noc_gsf::GsfNetwork;
    use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
    use noc_sim::{Network, Topology};

    fn stream<N: Network>(mut net: N) -> u64 {
        for seq in 0..32 {
            net.enqueue(Packet::new(
                PacketId { flow: FlowId::new(0), seq },
                NodeId::new(0),
                NodeId::new(1),
                4,
                0,
            ));
        }
        let mut out = Vec::new();
        while net.in_flight() > 0 {
            net.step(&mut out);
        }
        out.len() as u64
    }

    let topo = Topology::mesh(2, 1);
    let mut g = c.benchmark_group("fig6_flowcontrol");
    g.bench_function("frs_stream", |b| {
        b.iter_batched(
            || {
                LoftNetwork::new(
                    LoftConfig {
                        topo,
                        frame_size: 64,
                        nonspec_buffer: 64,
                        ..LoftConfig::default()
                    },
                    &[64],
                )
            },
            stream,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("gsf_stream", |b| {
        b.iter_batched(
            || {
                GsfNetwork::new(
                    GsfConfig {
                        topo,
                        num_vcs: 1,
                        vc_capacity: 3,
                        ..GsfConfig::default()
                    },
                    &[2000],
                )
            },
            stream,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    fig10_fairness,
    fig11_performance,
    fig12_case1,
    fig13_case2,
    table2_and_bounds,
    fig6_flowcontrol
);
criterion_main!(benches);
