//! Reduced-cycle benches: one group per table/figure of the paper, so
//! `cargo bench` completes quickly. These time the simulator while
//! exercising exactly the code paths the full-scale harness binaries
//! (`src/bin/fig*.rs`) use; the binaries are what regenerate the
//! paper's numbers. Timing uses the std-only harness in `loft_bench`.

use loft::LoftConfig;
use loft_bench::{bench_report, run_gsf, run_loft, run_wormhole, SEED};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

fn tiny() -> RunConfig {
    RunConfig {
        warmup: 500,
        measure: 2_000,
        drain: 1_000,
    }
}

/// Figure 10: fairness under hotspot traffic (equal allocation).
fn fig10_fairness() {
    bench_report("fig10_fairness/loft_hotspot_equal", 10, || {
        run_loft(
            &Scenario::hotspot(0.05),
            LoftConfig::default(),
            tiny(),
            SEED,
        )
    });
    bench_report("fig10_fairness/loft_hotspot_diff4", 10, || {
        run_loft(
            &Scenario::hotspot_differentiated4(0.05),
            LoftConfig::default(),
            tiny(),
            SEED,
        )
    });
}

/// Figure 11: uniform and hotspot load points for each network.
fn fig11_performance() {
    bench_report("fig11_performance/loft_uniform_0.2", 10, || {
        run_loft(&Scenario::uniform(0.2), LoftConfig::default(), tiny(), SEED)
    });
    bench_report("fig11_performance/gsf_uniform_0.2", 10, || {
        run_gsf(&Scenario::uniform(0.2), GsfConfig::default(), tiny(), SEED)
    });
    bench_report("fig11_performance/wormhole_uniform_0.2", 10, || {
        run_wormhole(
            &Scenario::uniform(0.2),
            WormholeConfig::default(),
            tiny(),
            SEED,
        )
    });
    bench_report("fig11_performance/loft_hotspot_0.01", 10, || {
        run_loft(
            &Scenario::hotspot(0.01),
            LoftConfig::default(),
            tiny(),
            SEED,
        )
    });
    bench_report("fig11_performance/gsf_hotspot_0.01", 10, || {
        run_gsf(&Scenario::hotspot(0.01), GsfConfig::default(), tiny(), SEED)
    });
}

/// Figure 12: the DoS case study (one aggressor rate).
fn fig12_case1() {
    bench_report("fig12_case1/loft", 10, || {
        run_loft(
            &Scenario::case_study_1(0.8),
            LoftConfig::default(),
            tiny(),
            SEED,
        )
    });
    bench_report("fig12_case1/gsf", 10, || {
        run_gsf(
            &Scenario::case_study_1(0.8),
            GsfConfig::default(),
            tiny(),
            SEED,
        )
    });
}

/// Figure 13: the pathological case study (one rate).
fn fig13_case2() {
    bench_report("fig13_case2/loft", 10, || {
        run_loft(
            &Scenario::case_study_2(0.64),
            LoftConfig::default(),
            tiny(),
            SEED,
        )
    });
    bench_report("fig13_case2/gsf", 10, || {
        run_gsf(
            &Scenario::case_study_2(0.64),
            GsfConfig::default(),
            tiny(),
            SEED,
        )
    });
}

/// Table 2 + §5.3.1: the analytic models (cheap, but benched so the
/// whole paper surface is covered).
fn table2_and_bounds() {
    bench_report("table2_delay_bounds/storage_model", 1000, || {
        let gsf = noc_model::storage::gsf_router_bits(&GsfConfig::default());
        let loft = noc_model::storage::loft_router_bits(&LoftConfig::default());
        (gsf.total(), loft.total())
    });
    let cfg = LoftConfig::default();
    bench_report("table2_delay_bounds/delay_bounds_all_pairs", 100, || {
        let mut acc = 0u64;
        for a in 0..64u32 {
            for d in 0..64u32 {
                if a != d {
                    acc += noc_model::delay::loft_worst_case_for(
                        &cfg,
                        noc_sim::NodeId::new(a),
                        noc_sim::NodeId::new(d),
                    );
                }
            }
        }
        acc
    });
}

/// Figure 6: back-to-back stream on a two-node link.
fn fig6_flowcontrol() {
    use loft::LoftNetwork;
    use noc_gsf::GsfNetwork;
    use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
    use noc_sim::{Network, Topology};

    fn stream<N: Network>(mut net: N) -> u64 {
        for seq in 0..32 {
            net.enqueue(Packet::new(
                PacketId {
                    flow: FlowId::new(0),
                    seq,
                },
                NodeId::new(0),
                NodeId::new(1),
                4,
                0,
            ));
        }
        let mut out = Vec::new();
        while net.in_flight() > 0 {
            net.step(&mut out);
        }
        out.len() as u64
    }

    let topo = Topology::mesh(2, 1);
    bench_report("fig6_flowcontrol/frs_stream", 50, || {
        stream(LoftNetwork::new(
            LoftConfig {
                topo,
                frame_size: 64,
                nonspec_buffer: 64,
                ..LoftConfig::default()
            },
            &[64],
        ))
    });
    bench_report("fig6_flowcontrol/gsf_stream", 50, || {
        stream(GsfNetwork::new(
            GsfConfig {
                topo,
                num_vcs: 1,
                vc_capacity: 3,
                ..GsfConfig::default()
            },
            &[2000],
        ))
    });
}

fn main() {
    fig10_fairness();
    fig11_performance();
    fig12_case1();
    fig13_case2();
    table2_and_bounds();
    fig6_flowcontrol();
}
