//! Ablation study of LOFT's two Section 4.3 optimizations —
//! speculative flit switching and local status reset — separately and
//! together, on the three workloads where the paper motivates them.
//!
//! The paper states (Section 4.3.2) that speculative switching "only
//! saves latency but not improves throughput", while local status
//! reset is the throughput mechanism; this harness verifies exactly
//! that decomposition on our implementation.

use loft::{LoftConfig, LoftNetwork};
use loft_bench::{parallel_map, print_table, SEED};
use noc_sim::{FlowId, RunConfig, SimReport, Simulation};
use noc_traffic::Scenario;

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    speculative: bool,
    reset: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        name: "baseline (none)",
        speculative: false,
        reset: false,
    },
    Variant {
        name: "+speculative",
        speculative: true,
        reset: false,
    },
    Variant {
        name: "+local reset",
        speculative: false,
        reset: true,
    },
    Variant {
        name: "+both (LOFT)",
        speculative: true,
        reset: true,
    },
];

fn run_variant(v: Variant, scenario: &Scenario) -> SimReport {
    let cfg = LoftConfig {
        speculative_switching: v.speculative,
        local_status_reset: v.reset,
        ..LoftConfig::default()
    };
    let reservations = scenario.reservations(cfg.frame_size).expect("fits");
    Simulation::new(
        LoftNetwork::new(cfg, &reservations),
        scenario.workload(SEED),
        RunConfig {
            warmup: 5_000,
            measure: 25_000,
            drain: 15_000,
        },
    )
    .run()
}

fn main() {
    // Workload 1: uniform *below* every flow's guaranteed rate
    // (0.01 < R/F = 0.0156), so no bandwidth reclamation is needed
    // and the latency difference is the pure speculative-switching
    // effect. Workload 2: uniform at moderate load — throughput needs
    // reclamation. Workload 3: Case Study II — the stripped node
    // needs its idle path recycled.
    let reports = parallel_map(VARIANTS.to_vec(), move |v| {
        (
            run_variant(v, &Scenario::uniform(0.01)),
            run_variant(v, &Scenario::uniform(0.3)),
            run_variant(v, &Scenario::case_study_2(0.64)),
        )
    });

    let rows: Vec<Vec<String>> = VARIANTS
        .iter()
        .zip(&reports)
        .map(|(v, (l, u, c2))| {
            vec![
                v.name.to_string(),
                format!("{:.1}", l.network_latency.mean()),
                format!("{:.4}", u.throughput_per_node()),
                format!("{:.4}", c2.flow_throughput(FlowId::new(8))),
            ]
        })
        .collect();
    print_table(
        "Ablation of Section 4.3 optimizations",
        &[
            "variant",
            "light-load latency (cyc)",
            "uniform@0.3 tput/node",
            "stripped-node tput",
        ],
        &rows,
    );
    println!(
        "\nSpeculative switching cuts latency whenever data could move before \
         its booked slot; local status reset recycles idle links' windows. The \
         two are synergistic: without speculative switching, unforwarded \
         future bookings keep the reservation table busy and block the reset \
         conditions, so the throughput reclaim only materializes with both \
         enabled — which is why the paper ties both to the speculative buffer \
         (spec = 0 disables everything)."
    );
}
