//! Sensitivity study: how LOFT's guarantees and performance respond
//! to the frame size `F` and frame window `WF` — the two parameters
//! that trade delay bounds (`F × WF` per hop) against scheduling
//! granularity. Complements the paper's fixed Table 1 choice.

use loft::{LoftConfig, LoftNetwork};
use loft_bench::{parallel_map, print_table, SEED};
use noc_model::delay;
use noc_sim::{RunConfig, Simulation};
use noc_traffic::Scenario;

fn run(frame_size: u32, frame_window: u32) -> (f64, f64, f64, u64) {
    let cfg = LoftConfig {
        frame_size,
        frame_window,
        nonspec_buffer: frame_size,
        ..LoftConfig::default()
    };
    let scenario = Scenario::hotspot(0.02);
    let reservations = scenario.reservations(cfg.frame_size).expect("fits");
    let report = Simulation::new(
        LoftNetwork::new(cfg, &reservations),
        scenario.workload(SEED),
        RunConfig {
            warmup: 5_000,
            measure: 25_000,
            drain: 15_000,
        },
    )
    .run();
    let fair = report.group_throughput(scenario.group("all").expect("group"));
    (
        report.throughput_per_node(),
        fair.cv(),
        report.network_latency.mean(),
        delay::loft_per_hop(&cfg),
    )
}

fn main() {
    let points: Vec<(u32, u32)> = vec![
        (64, 2),
        (128, 2),
        (256, 2), // Table 1
        (512, 2),
        (256, 1),
        (256, 4),
    ];
    let results = parallel_map(points.clone(), |(f, w)| run(f, w));
    let rows: Vec<Vec<String>> = points
        .iter()
        .zip(&results)
        .map(|(&(f, w), &(tput, cv, lat, bound))| {
            vec![
                format!(
                    "F={f} WF={w}{}",
                    if (f, w) == (256, 2) { " (paper)" } else { "" }
                ),
                format!("{tput:.4}"),
                format!("{:.1}%", 100.0 * cv),
                format!("{lat:.1}"),
                bound.to_string(),
            ]
        })
        .collect();
    print_table(
        "Frame-size / window sensitivity (saturating hotspot)",
        &[
            "config",
            "tput/node",
            "fairness CV",
            "net latency (cyc)",
            "bound/hop (cyc)",
        ],
        &rows,
    );
    println!(
        "\nSmaller frames tighten the delay bound but coarsen reservations \
         (fewer slots per flow); larger windows add burst tolerance at the \
         cost of a proportionally looser bound."
    );
}
