//! Regenerates the **Section 5.3.1 delay-bound** comparison: GSF's
//! path-independent `k × WF × F` worst case versus LOFT's
//! path-proportional `F × WF × hops` (RCQ) bound, plus a simulated
//! check that observed worst-case latencies respect the LOFT bound.

use loft::LoftConfig;
use loft_bench::{print_table, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_model::delay;
use noc_sim::{NodeId, RunConfig};
use noc_traffic::Scenario;

fn main() {
    let loft_cfg = LoftConfig::default();
    let gsf_cfg = GsfConfig::default();

    println!(
        "GSF worst-case bound: {} cycles (path-independent; paper: 24000)",
        delay::gsf_worst_case(&gsf_cfg)
    );
    println!(
        "LOFT per-hop bound:   {} cycles/hop (paper: 512)",
        delay::loft_per_hop(&loft_cfg)
    );

    let pairs = [
        (0u32, 1u32, "neighbor"),
        (0, 7, "one row"),
        (0, 63, "corner to corner"),
        (27, 36, "center diagonal"),
    ];
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|&(a, b, name)| {
            let bound = delay::loft_worst_case_for(&loft_cfg, NodeId::new(a), NodeId::new(b));
            let hops = delay::bound_hops(
                &loft_cfg.topo,
                loft_cfg.routing,
                NodeId::new(a),
                NodeId::new(b),
            );
            vec![
                format!("{name} ({a}→{b})"),
                hops.to_string(),
                bound.to_string(),
                delay::gsf_worst_case(&gsf_cfg).to_string(),
            ]
        })
        .collect();
    print_table(
        "LOFT worst-case latency by path (vs the single GSF bound)",
        &["path", "hops", "LOFT bound", "GSF bound"],
        &rows,
    );

    // Empirical check: even under a saturating hotspot, the observed
    // maximum network latency stays within the analytic bound for the
    // longest path in use.
    let scenario = Scenario::hotspot(0.017);
    let run = RunConfig {
        warmup: 5_000,
        measure: 30_000,
        drain: 30_000,
    };
    let report = run_loft(&scenario, loft_cfg, run, SEED);
    let worst_path_bound = delay::loft_worst_case_for(&loft_cfg, NodeId::new(0), NodeId::new(63));
    println!(
        "\nSimulated hotspot (saturating): max network latency {} cycles; \
         analytic bound for the longest path {} cycles; bound holds: {}",
        report.network_latency.max() as u64,
        worst_path_bound,
        (report.network_latency.max() as u64) <= worst_path_bound
    );
}
