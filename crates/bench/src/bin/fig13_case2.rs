//! Regenerates **Figure 13** (Case Study II): the pathological
//! scenario of Figure 1. The eight *grey* nodes of column 0 send to
//! the central hotspot (4,4) while the *stripped* node (6,4) sends to
//! its nearest neighbor over a completely disjoint path; every flow
//! holds the same equal reservation. In GSF the globally synchronized
//! frame recycling throttles the stripped node along with the grey
//! ones; LOFT's local status reset lets it use its idle links at full
//! speed.

use loft::LoftConfig;
use loft_bench::{parallel_map, print_table, run_gsf, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{RunConfig, SimReport};
use noc_traffic::Scenario;

const RATES: [f64; 7] = [0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.95];

fn table(net: &str, reports: &[SimReport]) {
    let scenario = Scenario::case_study_2(0.1); // groups only
    let rows: Vec<Vec<String>> = RATES
        .iter()
        .zip(reports)
        .map(|(rate, r)| {
            let grey = r.group_throughput(scenario.group("grey").expect("group exists"));
            let stripped = r.group_throughput(scenario.group("stripped").expect("group exists"));
            vec![
                format!("{rate:.2}"),
                format!("{:.4}", grey.mean()),
                format!("{:.4}", stripped.mean()),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 13 ({net}) — accepted throughput (flits/cycle/node) vs injection rate"),
        &["inj rate", "grey avg", "stripped"],
        &rows,
    );
}

fn main() {
    let run = RunConfig {
        warmup: 10_000,
        measure: 40_000,
        drain: 30_000,
    };
    let gsf = parallel_map(RATES.to_vec(), move |rate| {
        run_gsf(
            &Scenario::case_study_2(rate),
            GsfConfig::default(),
            run,
            SEED,
        )
    });
    let loft = parallel_map(RATES.to_vec(), move |rate| {
        run_loft(
            &Scenario::case_study_2(rate),
            LoftConfig::default(),
            run,
            SEED,
        )
    });
    table("GSF", &gsf);
    table("LOFT", &loft);
    println!(
        "\nExpected shape (paper): GSF throttles the stripped node to the grey \
         nodes' rate despite its disjoint, idle path; LOFT lets it track its \
         offered rate while the grey nodes saturate at their hotspot share."
    );
}
