//! Link-utilization heatmap: renders per-link utilization of the data
//! network as ASCII grids, making the Figure 1 story visible — under
//! Case Study II, GSF leaves the stripped node's region idle while
//! LOFT drives it at full speed.
//!
//! Usage: `utilization [uniform|hotspot|case2] [rate]` (default:
//! case2 at 0.64).

use loft::{LoftConfig, LoftNetwork};
use loft_bench::SEED;
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::routing::Direction;
use noc_sim::{Network, NodeId, TrafficSource};
use noc_traffic::Scenario;

const CYCLES: u64 = 30_000;

fn drive<N: Network>(net: &mut N, scenario: &Scenario) {
    let mut traffic = scenario.workload(SEED);
    let mut fresh = Vec::new();
    let mut out = Vec::new();
    for cycle in 0..CYCLES {
        fresh.clear();
        traffic.generate(cycle, &mut fresh);
        for p in fresh.drain(..) {
            net.enqueue(p);
        }
        out.clear();
        net.step(&mut out);
    }
}

/// Renders one 8×8 grid; each cell shows the busiest outgoing link of
/// that router as a utilization percentage.
fn render(name: &str, flits: impl Fn(NodeId, Direction) -> u64) {
    println!("\n{name}: peak outgoing link utilization per router (%)");
    for y in 0..8u16 {
        let row: Vec<String> = (0..8u16)
            .map(|x| {
                let node = NodeId::new((x + y * 8) as u32);
                let peak = Direction::ALL
                    .iter()
                    .map(|&d| flits(node, d))
                    .max()
                    .unwrap_or(0);
                format!("{:3.0}", 100.0 * peak as f64 / CYCLES as f64)
            })
            .collect();
        println!("  {}", row.join(" "));
    }
}

fn main() {
    let pattern = std::env::args().nth(1).unwrap_or_else(|| "case2".into());
    let rate: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.64);
    let scenario = match pattern.as_str() {
        "uniform" => Scenario::uniform(rate),
        "hotspot" => Scenario::hotspot(rate),
        "case2" => Scenario::case_study_2(rate),
        other => panic!("unknown pattern {other:?} (use uniform|hotspot|case2)"),
    };
    println!("workload: {}", scenario.name);

    let cfg = LoftConfig::default();
    let mut loft = LoftNetwork::new(cfg, &scenario.reservations(cfg.frame_size).expect("fits"));
    drive(&mut loft, &scenario);
    render("LOFT", |n, d| loft.link_flits(n, d));

    let gcfg = GsfConfig::default();
    let mut gsf = GsfNetwork::new(gcfg, &scenario.reservations(gcfg.frame_size).expect("fits"));
    drive(&mut gsf, &scenario);
    render("GSF", |n, d| gsf.link_flits(n, d));
}
