//! Link-utilization heatmap: renders per-link utilization of the data
//! network as ASCII grids, making the Figure 1 story visible — under
//! Case Study II, GSF leaves the stripped node's region idle while
//! LOFT drives it at full speed.
//!
//! A thin consumer of the unified telemetry layer: each network runs
//! with a live probe attached (`noc_sim::telemetry`) and the grid is
//! read straight out of the resulting [`TelemetryReport`] — no
//! network-specific counters.
//!
//! Usage: `utilization [uniform|hotspot|case2] [rate]` (default:
//! case2 at 0.64).

use loft::LoftConfig;
use loft_bench::{run_gsf_telemetry, run_loft_telemetry, SEED};
use noc_gsf::GsfConfig;
use noc_sim::routing::Direction;
use noc_sim::telemetry::TelemetryReport;
use noc_sim::RunConfig;
use noc_traffic::Scenario;

/// Matches the pre-telemetry harness: 30k cycles of continuous
/// generation, utilization measured over the whole run.
const RUN: RunConfig = RunConfig {
    warmup: 0,
    measure: 30_000,
    drain: 0,
};

/// Renders one 8×8 grid; each cell shows the busiest outgoing link of
/// that router as a utilization percentage.
fn render(name: &str, report: &TelemetryReport) {
    println!("\n{name}: peak outgoing link utilization per router (%)");
    for y in 0..8usize {
        let row: Vec<String> = (0..8usize)
            .map(|x| {
                let node = x + y * 8;
                let peak = Direction::ALL
                    .iter()
                    .map(|d| report.link_utilization(node * report.ports + d.index()))
                    .fold(0.0f64, f64::max);
                format!("{:3.0}", 100.0 * peak)
            })
            .collect();
        println!("  {}", row.join(" "));
    }
}

fn main() {
    let pattern = std::env::args().nth(1).unwrap_or_else(|| "case2".into());
    let rate: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.64);
    let scenario = match pattern.as_str() {
        "uniform" => Scenario::uniform(rate),
        "hotspot" => Scenario::hotspot(rate),
        "case2" => Scenario::case_study_2(rate),
        other => panic!("unknown pattern {other:?} (use uniform|hotspot|case2)"),
    };
    println!("workload: {}", scenario.name);

    let (_, loft) = run_loft_telemetry(&scenario, LoftConfig::default(), RUN, SEED, || {});
    render("LOFT", &loft);

    let (_, gsf) = run_gsf_telemetry(&scenario, GsfConfig::default(), RUN, SEED, || {});
    render("GSF", &gsf);
}
