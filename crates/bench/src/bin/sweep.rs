//! Parallel experiment-matrix sweep runner.
//!
//! Enumerates `{loft, gsf, wormhole} × {mesh, torus, ring} × traffic
//! × load × ff-legs`, runs warmup once per base point and forks it
//! per leg (see `noc_sim::checkpoint`), schedules whole simulations
//! across a work-stealing pool, and streams one versioned JSON row
//! per cell to stdout. Usage:
//!
//! ```text
//! sweep [--jobs N] [--threads N] [--seed N]
//!       [--smoke] [--no-fork] [--no-adaptive] [--selfcheck]
//! ```
//!
//! * `--jobs N` — concurrent simulations (clamped so `jobs × threads`
//!   never oversubscribes the machine).
//! * `--threads N` — shards per simulation.
//! * `--smoke` — the CI 2×2 sub-matrix with tiny phase windows.
//! * `--no-fork` — re-warm every leg from scratch (the baseline the
//!   forked path is measured against).
//! * `--no-adaptive` — disable saturation horizon doubling.
//! * `--selfcheck` — run the matrix both forked and re-warmed and
//!   fail unless every row pair is bit-identical (modulo wall clock
//!   and warmup-skip accounting).

use std::time::Instant;

use loft_bench::sweep::{clamp_jobs, full_matrix, run_sweep, smoke_matrix, SweepOptions, SweepRow};
use loft_bench::SEED;

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_value<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_rows(rows: &[SweepRow], jobs: usize) {
    for row in rows {
        println!("{}", row.to_json(jobs));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = parse_flag(&args, "--smoke");
    let selfcheck = parse_flag(&args, "--selfcheck");
    let threads = parse_value(&args, "--threads", 1_usize).max(1);
    let seed = parse_value(&args, "--seed", SEED);
    let jobs = clamp_jobs(parse_value(&args, "--jobs", 1_usize), threads);
    let opts = SweepOptions {
        jobs,
        fork_warmup: !parse_flag(&args, "--no-fork"),
        adaptive: !parse_flag(&args, "--no-adaptive"),
        ..SweepOptions::default()
    };

    let matrix = if smoke {
        smoke_matrix(threads, seed)
    } else {
        full_matrix(threads, seed)
    };
    let cells: usize = matrix.iter().map(|g| g.ff_legs.len()).sum();
    eprintln!(
        "sweep: {} groups / {} cells, jobs={jobs}, threads={threads}, \
         forked_warmup={}, smoke={smoke}",
        matrix.len(),
        cells,
        opts.fork_warmup,
    );

    let t0 = Instant::now();
    let rows = run_sweep(matrix.clone(), &opts);
    let wall = t0.elapsed().as_secs_f64();
    print_rows(&rows, jobs);
    eprintln!("sweep: {} rows in {wall:.2}s", rows.len());

    if selfcheck {
        // Re-run the whole matrix the other way (forked ↔ re-warm)
        // and demand bit-identical results for every cell.
        let flipped = SweepOptions {
            fork_warmup: !opts.fork_warmup,
            ..opts.clone()
        };
        let t1 = Instant::now();
        let other = run_sweep(matrix, &flipped);
        eprintln!(
            "sweep: selfcheck leg ({}) took {:.2}s",
            if flipped.fork_warmup {
                "forked"
            } else {
                "re-warm"
            },
            t1.elapsed().as_secs_f64()
        );
        assert_eq!(rows.len(), other.len(), "selfcheck lost rows");
        let mut mismatches = 0;
        for (a, b) in rows.iter().zip(&other) {
            if a.equivalence_key() != b.equivalence_key() {
                mismatches += 1;
                eprintln!(
                    "sweep: MISMATCH\n  {}\n  {}",
                    a.equivalence_key(),
                    b.equivalence_key()
                );
            }
        }
        if mismatches > 0 {
            eprintln!("sweep: selfcheck FAILED ({mismatches} mismatched cells)");
            std::process::exit(1);
        }
        eprintln!("sweep: selfcheck OK ({} cells bit-identical)", rows.len());
    }
}
