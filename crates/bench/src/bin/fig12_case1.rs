//! Regenerates **Figure 12** (Case Study I): the denial-of-service
//! experiment. Flows 0→63 (regulated at 0.2 flits/cycle), 48→63 and
//! 56→63 (aggressors) each hold a 1/4 link-bandwidth allocation; the
//! aggressors' injection rate sweeps far beyond it. For GSF and LOFT
//! the tables report each flow's average packet latency and accepted
//! throughput versus the aggressor rate, plus the aggregate ejection
//! utilization the paper quotes (<60% for GSF, >90% for LOFT).

use loft::LoftConfig;
use loft_bench::{parallel_map, print_table, run_gsf, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{FlowId, RunConfig, SimReport};
use noc_traffic::Scenario;

const RATES: [f64; 5] = [0.1, 0.2, 0.4, 0.6, 0.8];

fn tables(net: &str, reports: &[SimReport]) {
    let lat_rows: Vec<Vec<String>> = RATES
        .iter()
        .zip(reports)
        .map(|(rate, r)| {
            vec![
                format!("{rate:.1}"),
                format!("{:.1}", r.flows[0].total_latency.mean()),
                format!("{:.1}", r.flows[1].total_latency.mean()),
                format!("{:.1}", r.flows[2].total_latency.mean()),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 12 ({net}) — per-flow packet latency (cycles) vs aggressor rate"),
        &["aggr rate", "victim 0→63", "aggr 48→63", "aggr 56→63"],
        &lat_rows,
    );

    let tput_rows: Vec<Vec<String>> = RATES
        .iter()
        .zip(reports)
        .map(|(rate, r)| {
            let f = |i: u32| r.flow_throughput(FlowId::new(i));
            vec![
                format!("{rate:.1}"),
                format!("{:.4}", f(0)),
                format!("{:.4}", f(1)),
                format!("{:.4}", f(2)),
                format!("{:.1}%", 100.0 * (f(0) + f(1) + f(2))),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 12 ({net}) — per-flow accepted throughput (flits/cycle) vs aggressor rate"
        ),
        &[
            "aggr rate",
            "victim 0→63",
            "aggr 48→63",
            "aggr 56→63",
            "link util",
        ],
        &tput_rows,
    );
}

fn main() {
    let run = RunConfig {
        warmup: 10_000,
        measure: 40_000,
        drain: 30_000,
    };
    let gsf = parallel_map(RATES.to_vec(), move |rate| {
        run_gsf(
            &Scenario::case_study_1(rate),
            GsfConfig::default(),
            run,
            SEED,
        )
    });
    let loft = parallel_map(RATES.to_vec(), move |rate| {
        run_loft(
            &Scenario::case_study_1(rate),
            LoftConfig::default(),
            run,
            SEED,
        )
    });
    tables("GSF", &gsf);
    tables("LOFT", &loft);
}
