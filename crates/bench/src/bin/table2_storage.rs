//! Regenerates **Table 2** of the paper: per-router storage
//! requirements (bits) for GSF and LOFT, plus the McPAT-style
//! area/power estimate for the 64-node LOFT NoC.

use loft::LoftConfig;
use loft_bench::{f1, print_table};
use noc_gsf::GsfConfig;
use noc_model::{power, storage};

fn main() {
    let gsf_cfg = GsfConfig::default();
    let loft_cfg = LoftConfig::default();
    let g = storage::gsf_router_bits(&gsf_cfg);
    let l = storage::loft_router_bits(&loft_cfg);

    print_table(
        "Table 2 — GSF per-router storage (bits)",
        &["component", "measured", "paper"],
        &[
            vec![
                "Source queue".into(),
                g.source_queue.to_string(),
                "256000".into(),
            ],
            vec![
                "Virtual channels".into(),
                g.vc_buffers.to_string(),
                "15360".into(),
            ],
            vec!["Bookkeeping".into(), g.bookkeeping.to_string(), "—".into()],
            vec!["Total".into(), g.total().to_string(), "271379".into()],
        ],
    );

    print_table(
        "Table 2 — LOFT per-router storage (bits)",
        &["component", "measured", "paper"],
        &[
            vec![
                "Input buffers".into(),
                l.input_buffers.to_string(),
                "139264".into(),
            ],
            vec![
                "Reservation tables".into(),
                l.reservation_tables.to_string(),
                "40960".into(),
            ],
            vec!["Flow state".into(), l.flow_state.to_string(), "2308".into()],
            vec![
                "Look-ahead network".into(),
                l.lookahead.to_string(),
                "1536".into(),
            ],
            vec!["Total".into(), l.total().to_string(), "184203".into()],
        ],
    );

    let saving = 100.0 * (1.0 - l.total() as f64 / g.total() as f64);
    println!("\nLOFT uses {saving:.1}% less storage than GSF (paper: 32%).");

    let pe = power::loft_estimate(&loft_cfg);
    let ge = power::gsf_estimate(&gsf_cfg);
    print_table(
        "Area/power estimate for the 64-node NoC (first-order model; paper's McPAT: 32 mm², 50 W for LOFT)",
        &["network", "area mm^2", "power W"],
        &[
            vec!["LOFT".into(), f1(pe.area_mm2), f1(pe.power_w)],
            vec!["GSF".into(), f1(ge.area_mm2), f1(ge.power_w)],
        ],
    );
}
