//! Regenerates **Figure 6**: the flow-control efficiency comparison.
//!
//! The paper's figure shows the back-to-back transfer of 4-flit
//! packets between two routers with a nearly full input buffer, under
//! three flow-control mechanisms: wormhole (credit turn-around gaps),
//! GSF (worse — a VC is only reusable after it fully drains), and FRS
//! (zero turn-around thanks to pre-scheduled slots).
//!
//! We reproduce it as a makespan measurement: a single flow streams
//! `N` back-to-back packets across one link; the table reports total
//! cycles and cycles/packet for each mechanism. Buffers are kept
//! small (the figure's "input buffer close to full" premise) so the
//! flow-control overhead, not buffering, dominates.

use loft::{LoftConfig, LoftNetwork};
use loft_bench::print_table;
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::{Network, Topology};
use noc_wormhole::{WormholeConfig, WormholeNetwork};

const PACKETS: u64 = 64;

fn drive<N: Network>(mut net: N) -> (u64, u64) {
    for seq in 0..PACKETS {
        net.enqueue(Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq,
            },
            NodeId::new(0),
            NodeId::new(1),
            4,
            0,
        ));
    }
    let mut out = Vec::new();
    let mut guard = 0u64;

    loop {
        net.step(&mut out);
        guard += 1;
        assert!(guard < 100_000, "stream did not finish");
        if !out.is_empty() && out.len() as u64 == PACKETS {
            break;
        }
    }
    let first = out.iter().map(|p| p.ejected_at.unwrap()).min().unwrap();
    let last = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
    (last, last - first)
}

fn main() {
    let topo = Topology::mesh(2, 1);

    // Wormhole: one VC with a buffer smaller than the credit
    // round-trip, so the turn-around is exposed on every flit (the
    // figure's "input buffer close to full" premise).
    let wh = WormholeNetwork::new(WormholeConfig {
        topo,
        num_vcs: 1,
        vc_capacity: 3,
        credit_delay: 2,
        ..WormholeConfig::default()
    });
    let (wh_total, wh_stream) = drive(wh);

    // GSF: the same buffers, plus the one-packet-per-VC rule — a VC
    // is reallocated only after it fully drains.
    let gsf = GsfNetwork::new(
        GsfConfig {
            topo,
            num_vcs: 1,
            vc_capacity: 3,
            credit_delay: 2,
            frame_size: 2000,
            ..GsfConfig::default()
        },
        &[2000],
    );
    let (gsf_total, gsf_stream) = drive(gsf);

    // FRS (LOFT): slots are pre-booked by look-ahead flits; data
    // streams with zero turn-around.
    let loft = LoftNetwork::new(
        LoftConfig {
            topo,
            frame_size: 64,
            nonspec_buffer: 64,
            ..LoftConfig::default()
        },
        &[64],
    );
    let (loft_total, loft_stream) = drive(loft);

    let flits = PACKETS * 4;
    let rows = [
        ("wormhole", wh_total, wh_stream),
        ("GSF", gsf_total, gsf_stream),
        ("FRS (LOFT)", loft_total, loft_stream),
    ]
    .iter()
    .map(|&(name, total, stream)| {
        vec![
            name.to_string(),
            total.to_string(),
            format!("{:.2}", stream as f64 / (PACKETS - 1) as f64),
            format!("{:.2}", flits as f64 / (stream + 4) as f64),
        ]
    })
    .collect::<Vec<_>>();
    print_table(
        &format!("Figure 6 — {PACKETS} back-to-back 4-flit packets across one link"),
        &[
            "mechanism",
            "makespan (cycles)",
            "cycles/packet",
            "link efficiency",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): GSF worst (VC drain restriction), wormhole \
         in between (credit turn-around), FRS best (zero turn-around)."
    );
}
