//! Quick behavioural smoke-check used during development: prints a
//! handful of headline numbers from scaled-down versions of the
//! paper's experiments. Not part of the figure regeneration set.

use loft::LoftConfig;
use loft_bench::{f4, print_table, run_gsf, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;

fn main() {
    let run = RunConfig {
        warmup: 5_000,
        measure: 20_000,
        drain: 10_000,
    };
    let t0 = std::time::Instant::now();

    // Fairness: hotspot, equal allocation.
    let s = Scenario::hotspot(0.05);
    let loft = run_loft(&s, LoftConfig::default(), run, SEED);
    let g = loft.group_throughput(s.group("all").unwrap());
    print_table(
        "LOFT hotspot fairness (rate 0.05)",
        &["max", "min", "avg", "cv%", "lat"],
        &[vec![
            f4(g.max()),
            f4(g.min()),
            f4(g.mean()),
            format!("{:.1}", g.cv() * 100.0),
            f4(loft.avg_latency()),
        ]],
    );

    // Case study 2 shape at high rate.
    let s2 = Scenario::case_study_2(0.64);
    let l2 = run_loft(&s2, LoftConfig::default(), run, SEED);
    let g2 = run_gsf(&s2, GsfConfig::default(), run, SEED);
    let row = |name: &str, r: &noc_sim::SimReport| {
        let grey = r.group_throughput(s2.group("grey").unwrap());
        let strip = r.group_throughput(s2.group("stripped").unwrap());
        vec![name.to_string(), f4(grey.mean()), f4(strip.mean())]
    };
    print_table(
        "Case Study II @0.64 (grey vs stripped throughput)",
        &["net", "grey", "stripped"],
        &[row("GSF", &g2), row("LOFT", &l2)],
    );

    // Uniform latency/throughput at medium load.
    let s3 = Scenario::uniform(0.3);
    let l3 = run_loft(&s3, LoftConfig::default(), run, SEED);
    let g3 = run_gsf(&s3, GsfConfig::default(), run, SEED);
    print_table(
        "Uniform @0.3 (latency, accepted throughput/node)",
        &["net", "lat", "tput"],
        &[
            vec![
                "GSF".into(),
                f4(g3.avg_latency()),
                f4(g3.throughput_per_node()),
            ],
            vec![
                "LOFT".into(),
                f4(l3.avg_latency()),
                f4(l3.throughput_per_node()),
            ],
        ],
    );

    println!("\nelapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
