//! Regenerates **Table 1** of the paper: the simulation setup for
//! LOFT and GSF, read back from the configuration types so the table
//! always reflects what the simulator actually runs.

use loft::LoftConfig;
use loft_bench::print_table;
use noc_gsf::GsfConfig;

fn main() {
    let l = LoftConfig::default();
    let g = GsfConfig::default();

    print_table(
        "Table 1 — Common specification",
        &["parameter", "value"],
        &[
            vec![
                "Size & topology".into(),
                format!("{}-node 2D mesh", l.topo.num_nodes()),
            ],
            vec![
                "Routing algorithm".into(),
                format!("{:?} dimension-order", l.routing),
            ],
            vec!["Maximum flows".into(), "64".into()],
            vec!["Packet size".into(), "4 flits".into()],
        ],
    );

    print_table(
        "Table 1 — LOFT",
        &["parameter", "value"],
        &[
            vec!["Frame size".into(), format!("{} flits", l.frame_size)],
            vec!["Frame window size".into(), l.frame_window.to_string()],
            vec!["Flits per quantum".into(), l.flits_per_quantum.to_string()],
            vec![
                "Reservation table size".into(),
                format!("{} quantum slots", l.window_quanta()),
            ],
            vec![
                "Depth of central buffer".into(),
                format!("{} flits", l.nonspec_buffer),
            ],
            vec![
                "Depth of spec. buffer".into(),
                format!("0–16 flits (default {})", l.spec_buffer),
            ],
            vec!["No. of router stages".into(), l.hop_latency.to_string()],
            vec![
                "Look-ahead router stages".into(),
                l.la_hop_latency.to_string(),
            ],
            vec![
                "Look-ahead queue capacity".into(),
                format!("{} flits (3 VCs × 4)", l.la_queue_capacity),
            ],
        ],
    );

    print_table(
        "Table 1 — GSF",
        &["parameter", "value"],
        &[
            vec!["No. of virtual channels".into(), g.num_vcs.to_string()],
            vec![
                "Buffer size of each channel".into(),
                format!("{} flits", g.vc_capacity),
            ],
            vec!["Frame size".into(), format!("{} flits", g.frame_size)],
            vec!["Frame window size".into(), g.frame_window.to_string()],
            vec![
                "Barrier network delay".into(),
                format!("{} cycles", g.barrier_delay),
            ],
            vec![
                "Source queue".into(),
                format!("{} flits", g.source_queue_flits),
            ],
        ],
    );
}
