//! Regenerates **Figure 10**: fairness of throughput allocation for
//! hotspot traffic, in the paper's three allocations:
//!
//! * `equal` (Fig. 10a) — every flow gets the same reservation,
//! * `diff4` (Fig. 10b) — four quadrant partitions with weights 8:6:6:3,
//! * `diff2` (Fig. 10c) — two halves with weights 9:3.
//!
//! For each group of flows the table prints MAX/MIN/AVG/STDEV of the
//! accepted per-flow throughput, exactly like the paper's inset
//! tables. Run with an argument (`equal`, `diff4`, `diff2`) for one
//! case or no argument for all three.

use loft::LoftConfig;
use loft_bench::{print_table, run_gsf, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;

fn run_case(name: &str) {
    // All sources inject far beyond the hotspot's capacity so the
    // allocation, not the offered load, determines throughput.
    let scenario = match name {
        "equal" => Scenario::hotspot(0.05),
        "diff4" => Scenario::hotspot_differentiated4(0.05),
        "diff2" => Scenario::hotspot_differentiated2(0.05),
        other => panic!("unknown fairness case {other:?} (use equal|diff4|diff2)"),
    };
    let run = RunConfig {
        warmup: 10_000,
        measure: 50_000,
        drain: 20_000,
    };
    let loft = run_loft(&scenario, LoftConfig::default(), run, SEED);
    let gsf = run_gsf(&scenario, GsfConfig::default(), run, SEED);

    for (net, report) in [("LOFT", &loft), ("GSF", &gsf)] {
        let rows: Vec<Vec<String>> = scenario
            .groups
            .iter()
            .map(|(gname, flows)| {
                let s = report.group_throughput(flows);
                vec![
                    gname.clone(),
                    format!("{:.4}", s.max()),
                    format!("{:.4}", s.min()),
                    format!("{:.4}", s.mean()),
                    format!("{:.1}%", 100.0 * s.cv()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 ({name}) — {net} throughput per flow (flits/cycle)"),
            &["group", "MAX", "MIN", "AVG", "STDEV/AVG"],
            &rows,
        );
    }
}

fn main() {
    match std::env::args().nth(1) {
        Some(case) => run_case(&case),
        None => {
            for case in ["equal", "diff4", "diff2"] {
                run_case(case);
            }
        }
    }
}
