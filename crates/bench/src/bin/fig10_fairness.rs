//! Regenerates **Figure 10**: fairness of throughput allocation for
//! hotspot traffic, in the paper's three allocations:
//!
//! * `equal` (Fig. 10a) — every flow gets the same reservation,
//! * `diff4` (Fig. 10b) — four quadrant partitions with weights 8:6:6:3,
//! * `diff2` (Fig. 10c) — two halves with weights 9:3.
//!
//! For each group of flows the table prints MAX/MIN/AVG/STDEV of the
//! accepted per-flow throughput, exactly like the paper's inset
//! tables, plus the group's Jain fairness index and worst windowed
//! service rate — both read straight out of the unified telemetry
//! layer (`noc_sim::telemetry`), which also supplies the per-flow
//! rates themselves. Run with an argument (`equal`, `diff4`, `diff2`)
//! for one case or no argument for all three.

use loft::LoftConfig;
use loft_bench::{print_table, run_gsf_telemetry, run_loft_telemetry, SEED};
use noc_gsf::GsfConfig;
use noc_sim::stats::RunningStats;
use noc_sim::telemetry::jain_index;
use noc_sim::RunConfig;
use noc_traffic::Scenario;

fn run_case(name: &str) {
    // All sources inject far beyond the hotspot's capacity so the
    // allocation, not the offered load, determines throughput.
    let scenario = match name {
        "equal" => Scenario::hotspot(0.05),
        "diff4" => Scenario::hotspot_differentiated4(0.05),
        "diff2" => Scenario::hotspot_differentiated2(0.05),
        other => panic!("unknown fairness case {other:?} (use equal|diff4|diff2)"),
    };
    let run = RunConfig {
        warmup: 10_000,
        measure: 50_000,
        drain: 20_000,
    };
    let (_, loft) = run_loft_telemetry(&scenario, LoftConfig::default(), run, SEED, || {});
    let (_, gsf) = run_gsf_telemetry(&scenario, GsfConfig::default(), run, SEED, || {});

    for (net, telemetry) in [("LOFT", &loft), ("GSF", &gsf)] {
        let rows: Vec<Vec<String>> = scenario
            .groups
            .iter()
            .map(|(gname, flows)| {
                // Whole-run accepted throughput per flow, from the
                // telemetry document's per-flow summaries.
                let rates: Vec<f64> = flows
                    .iter()
                    .map(|f| telemetry.flows[f.index()].throughput)
                    .collect();
                let mut s = RunningStats::new();
                let mut worst_window = f64::INFINITY;
                for (f, &rate) in flows.iter().zip(&rates) {
                    s.push(rate);
                    worst_window = worst_window.min(telemetry.flows[f.index()].min_service_rate);
                }
                vec![
                    gname.clone(),
                    format!("{:.4}", s.max()),
                    format!("{:.4}", s.min()),
                    format!("{:.4}", s.mean()),
                    format!("{:.1}%", 100.0 * s.cv()),
                    format!("{:.4}", jain_index(&rates)),
                    format!("{worst_window:.4}"),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 ({name}) — {net} throughput per flow (flits/cycle)"),
            &[
                "group",
                "MAX",
                "MIN",
                "AVG",
                "STDEV/AVG",
                "JAIN",
                "MIN RATE",
            ],
            &rows,
        );
        println!("  overall Jain index ({net}): {:.4}", telemetry.jain);
    }
}

fn main() {
    match std::env::args().nth(1) {
        Some(case) => run_case(&case),
        None => {
            for case in ["equal", "diff4", "diff2"] {
                run_case(case);
            }
        }
    }
}
