//! Hot-loop throughput benchmark: simulated cycles/second and
//! delivered packets/second for each network architecture, at a low
//! load point and near saturation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p loft-bench --bin perf
//! ```
//!
//! Each measurement prints one machine-readable JSON line:
//!
//! ```text
//! {"net":"loft","scenario":"uniform","load":0.05,"sim_cycles":24000,
//!  "wall_secs":0.0123,"cycles_per_sec":1951219.5,
//!  "packets_delivered":730,"packets_per_sec":59349.6,
//!  "flits_delivered":2920,"avg_latency":27.41}
//! ```
//!
//! `cycles_per_sec` is the headline number for hot-path optimization
//! work: compare it across commits at the same load point (the
//! simulations are fully deterministic, so the simulated work is
//! identical and only the wall clock moves).
//!
//! `--smoke` runs a single tiny low-load point per network with one
//! timed iteration — a seconds-long CI check that the harness and all
//! three hot loops still run end to end (the numbers it prints are
//! not comparable across machines).

use loft::LoftConfig;
use loft_bench::{run_gsf, run_loft, run_wormhole, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{RunConfig, SimReport};
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// Measurement-window sizing: long enough that per-run overhead
/// (network construction, warmup) is amortized, short enough that the
/// whole matrix finishes in seconds. `--smoke` shrinks the window to
/// a functional check.
fn run(smoke: bool) -> RunConfig {
    if smoke {
        RunConfig {
            warmup: 200,
            measure: 2_000,
            drain: 1_000,
        }
    } else {
        RunConfig {
            warmup: 1_000,
            measure: 20_000,
            drain: 3_000,
        }
    }
}

fn measure(
    net: &str,
    scenario: &str,
    load: f64,
    iters: u32,
    cfg: RunConfig,
    f: impl Fn() -> SimReport,
) {
    // One untimed warmup run, then the mean of `iters` timed runs.
    let report = f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(iters);

    let sim_cycles = cfg.warmup + cfg.measure + cfg.drain;
    let packets = report.total_latency.count();
    println!(
        "{{\"net\":\"{net}\",\"scenario\":\"{scenario}\",\"load\":{load},\
         \"sim_cycles\":{sim_cycles},\"wall_secs\":{wall:.6},\
         \"cycles_per_sec\":{:.1},\"packets_delivered\":{packets},\
         \"packets_per_sec\":{:.1},\"flits_delivered\":{},\
         \"avg_latency\":{:.4}}}",
        sim_cycles as f64 / wall,
        packets as f64 / wall,
        report.flits_delivered,
        report.avg_latency(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = run(smoke);
    let iters = if smoke { 1 } else { 5 };
    // Low load: the hot loop is dominated by per-cycle scans over
    // mostly-idle state — exactly what active-set worklists target.
    // Near saturation: dominated by real queue/allocator work.
    let points: &[f64] = if smoke { &[0.05] } else { &[0.05, 0.60] };
    for &load in points {
        measure("loft", "uniform", load, iters, cfg, || {
            run_loft(&Scenario::uniform(load), LoftConfig::default(), cfg, SEED)
        });
        measure("gsf", "uniform", load, iters, cfg, || {
            run_gsf(&Scenario::uniform(load), GsfConfig::default(), cfg, SEED)
        });
        measure("wormhole", "uniform", load, iters, cfg, || {
            run_wormhole(
                &Scenario::uniform(load),
                WormholeConfig::default(),
                cfg,
                SEED,
            )
        });
    }
}
