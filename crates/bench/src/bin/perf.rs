//! Hot-loop throughput benchmark: simulated cycles/second and
//! delivered packets/second for each network architecture, at a low
//! load point, near saturation, and under hotspot traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p loft-bench --bin perf
//! ```
//!
//! Each measurement prints one machine-readable JSON line:
//!
//! ```text
//! {"net":"loft","scenario":"uniform","load":0.05,"threads":1,
//!  "jobs":1,"forked_warmup":true,
//!  "sim_cycles":23000,"skipped_cycles":0,"wall_secs":0.0123,
//!  "cycles_per_sec":1951219.5,
//!  "packets_delivered":730,"packets_per_sec":59349.6,
//!  "flits_delivered":2920,"avg_latency":27.41,"p50":31,"p95":63,
//!  "p99":63,"saturated":false,"allocs_per_cycle":null}
//! ```
//!
//! `cycles_per_sec` is the headline number for hot-path optimization
//! work: compare it across commits at the same load point (the
//! simulations are fully deterministic, so the simulated work is
//! identical and only the wall clock moves).
//!
//! **Forked warmup** (default; `--no-fork-warmup` restores the old
//! behavior): each point runs its warmup once into a
//! `noc_sim::checkpoint::Checkpoint` and every timed iteration forks
//! that checkpoint instead of re-running construction + warmup. The
//! forked iterations are bit-identical to from-scratch runs, so the
//! reports don't move — but the timed span now covers only the
//! measurement + drain phases, and `sim_cycles`/`cycles_per_sec` are
//! computed over that span. `forked_warmup` in the row records which
//! basis applies, so rows are never silently compared across bases.
//! Telemetry rows (`--telemetry`) always run full warmups and report
//! `forked_warmup: false`.
//!
//! `--jobs N` measures up to `N` points concurrently on a
//! work-stealing pool (whole simulations, unchanged results — rows
//! still print in matrix order). Jobs are clamped so `jobs × threads`
//! never oversubscribes the machine, and `--jobs` > 1 refuses to
//! combine with `--alloc-budget`: the allocation counter is
//! process-global, so concurrent points would pollute each other's
//! rates. Wall-clock rates from concurrent rows reflect a shared
//! machine; use `--jobs 1` (the default) for comparable
//! `cycles_per_sec` numbers.
//!
//! `packets_delivered` counts packets *ejected during the measurement
//! window* (the windowed throughput convention), so a saturated
//! network still reports its real delivery rate. `avg_latency` is the
//! mean over packets *created* in the window; past saturation none of
//! those complete, so the latency prints `null` and `saturated` is
//! `true` — offered load beyond capacity has unbounded latency, not
//! zero.
//!
//! `p50`/`p95`/`p99` are power-of-two upper bounds on total latency
//! from the measurement window's histogram
//! (`Histogram::quantile_upper_bound`); like `avg_latency` they print
//! `null` when the window produced no completed packets.
//!
//! `--telemetry PATH` attaches a live probe (`noc_sim::telemetry`) to
//! every run — including the timed iterations, so the printed
//! `cycles_per_sec` genuinely measures the telemetry-on hot loop —
//! and writes a JSON array to `PATH` with one entry per measured
//! point: `{"net","scenario","load","telemetry":<versioned telemetry
//! document>}`. Combine with `--min-cps` floors at ~0.9× of the
//! telemetry-off floors to gate the probe's overhead in CI.
//!
//! `allocs_per_cycle` is the steady-state allocation rate: heap
//! allocations between the warmup/measurement boundary and the end of
//! the run, divided by the measurement window. Under forked warmup
//! the counted span starts after the fork completes (the deep copy is
//! setup, not steady state) — the span covers exactly the same
//! simulated phases as the full-run measurement. It requires the
//! `alloc-count` feature (which installs a counting global allocator)
//! and prints `null` without it. With `--alloc-budget X` the process
//! exits nonzero if any measured point exceeds `X` — the CI gate that
//! keeps the steady state allocation-free.
//!
//! `--smoke` runs tiny windows with one timed iteration — a
//! seconds-long CI check that the harness and all three hot loops
//! still run end to end (the numbers it prints are not comparable
//! across machines, but `allocs_per_cycle` is machine-independent and
//! gateable even in smoke mode).
//!
//! `--min-cps net=floor[,net=floor...]` (e.g.
//! `--min-cps loft=200000,gsf=100000`) fails the process if any
//! measured point of a named network falls below its floor in
//! simulated cycles/second. Floors for CI must sit far below typical
//! hardware (they catch order-of-magnitude hot-loop regressions, not
//! percent-level drift — wall-clock gates on shared runners cannot do
//! better).
//!
//! `--threads N` steps every network with `N` shards on the
//! persistent worker pool (see `noc_sim::par`; default 1). Results
//! are bit-identical at every value — only the wall clock moves — and
//! each JSON row records the setting in its `threads` field, so
//! single- vs multi-thread rows are directly comparable.
//!
//! `skipped_cycles` counts simulated cycles covered by the engine's
//! quiescence fast-forward (closed-form jumps over globally idle
//! spans) instead of per-cycle stepping; results are bit-identical
//! either way, so the field only explains where `cycles_per_sec`
//! gains come from. `--no-fast-forward` disables the fast path — the
//! before/after pair at the same point isolates its speedup.
//!
//! `--traffic {bursty,regulated}` swaps the default uniform/hotspot
//! point matrix for the quiescence-heavy workloads
//! (`Scenario::bursty_low_duty`, `Scenario::regulated`), where idle
//! spans dominate the run and the fast path carries the load.

use loft::LoftConfig;
use loft_bench::sweep::clamp_jobs;
use loft_bench::{
    checkpoint_gsf, checkpoint_loft, checkpoint_wormhole, run_gsf_info, run_gsf_telemetry_info,
    run_loft_info, run_loft_telemetry_info, run_wormhole_info, run_wormhole_telemetry_info, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::par::{pool_map, WorkerPool};
use noc_sim::telemetry::TelemetryReport;
use noc_sim::{Checkpoint, Network, RunConfig, RunInfo, SimReport};
use noc_traffic::{Scenario, Workload};
use noc_wormhole::WormholeConfig;

/// Measurement-window sizing: long enough that per-run overhead
/// (network construction, warmup) is amortized, short enough that the
/// whole matrix finishes in seconds. `--smoke` shrinks the window to
/// a functional check.
fn run(smoke: bool) -> RunConfig {
    if smoke {
        RunConfig {
            warmup: 200,
            measure: 2_000,
            drain: 1_000,
        }
    } else {
        RunConfig {
            warmup: 1_000,
            measure: 20_000,
            drain: 3_000,
        }
    }
}

/// One cell of the perf matrix, dispatchable on a worker pool.
#[derive(Clone, Copy)]
struct Spec {
    net: &'static str,
    scenario: &'static str,
    load: f64,
}

/// Shared measurement settings (everything `Copy` so specs can run on
/// pool workers).
#[derive(Clone, Copy)]
struct Ctx {
    threads: usize,
    jobs: usize,
    iters: u32,
    cfg: RunConfig,
    fast_forward: bool,
    with_telemetry: bool,
    fork_warmup: bool,
}

/// One measured point: the printed JSON line, the simulated-cycle
/// rate, the steady-state allocation rate (`None` without the
/// `alloc-count` feature), and the telemetry array entry (`None`
/// without `--telemetry`).
struct Row {
    net: &'static str,
    line: String,
    cycles_per_sec: f64,
    allocs_per_cycle: Option<f64>,
    telemetry: Option<String>,
}

/// Formats the JSON line shared by both measurement paths.
#[allow(clippy::too_many_arguments)]
fn render_row(
    spec: Spec,
    ctx: Ctx,
    forked_warmup: bool,
    sim_cycles: u64,
    wall: f64,
    report: &SimReport,
    info: &RunInfo,
    allocs_per_cycle: Option<f64>,
    telemetry: Option<String>,
) -> Row {
    // Windowed delivery: packets ejected inside the measurement
    // window, regardless of when they were created. The latency mean
    // only covers created-in-window packets; under saturation none of
    // those finish, which is a property of the load point — report it
    // instead of a fake 0 latency.
    let packets: u64 = report.flows.iter().map(|f| f.packets_delivered).sum();
    let saturated = report.total_latency.count() == 0 && packets > 0;
    let no_samples = report.total_latency.count() == 0;
    let avg_latency = if no_samples {
        "null".to_string()
    } else {
        format!("{:.4}", report.avg_latency())
    };
    // Latency percentiles from the window's power-of-two histogram;
    // null alongside avg_latency (no completed in-window packets).
    let pq = |q: f64| {
        if no_samples {
            "null".to_string()
        } else {
            report.latency_histogram.quantile_upper_bound(q).to_string()
        }
    };
    let (p50, p95, p99) = (pq(0.50), pq(0.95), pq(0.99));
    let cycles_per_sec = sim_cycles as f64 / wall;
    let allocs = allocs_per_cycle.map_or_else(|| "null".to_string(), |a| format!("{a:.4}"));
    let line = format!(
        "{{\"net\":\"{}\",\"scenario\":\"{}\",\"load\":{},\
         \"threads\":{},\"jobs\":{},\"forked_warmup\":{forked_warmup},\
         \"sim_cycles\":{sim_cycles},\"skipped_cycles\":{},\
         \"wall_secs\":{wall:.6},\
         \"cycles_per_sec\":{cycles_per_sec:.1},\"packets_delivered\":{packets},\
         \"packets_per_sec\":{:.1},\"flits_delivered\":{},\
         \"avg_latency\":{avg_latency},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\
         \"saturated\":{saturated},\
         \"allocs_per_cycle\":{allocs}}}",
        spec.net,
        spec.scenario,
        spec.load,
        ctx.threads,
        ctx.jobs,
        info.skipped_cycles,
        packets as f64 / wall,
        report.flits_delivered,
    );
    Row {
        net: spec.net,
        line,
        cycles_per_sec,
        allocs_per_cycle,
        telemetry,
    }
}

/// Measures one point with a full run per iteration (construction +
/// warmup + measurement + drain). `f` receives the `after_warmup`
/// hook to pass through to the simulation; the untimed first run uses
/// it to snapshot the allocation counter at the warmup/measurement
/// boundary.
fn measure_full(
    spec: Spec,
    ctx: Ctx,
    f: impl Fn(&mut dyn FnMut()) -> (SimReport, Option<TelemetryReport>, RunInfo),
) -> Row {
    // One untimed warmup run (doubling as the allocation
    // measurement), then the mean of `iters` timed runs.
    #[cfg(feature = "alloc-count")]
    let ((report, telemetry, info), allocs_per_cycle) = {
        let mut at_boundary = 0u64;
        let out = f(&mut || at_boundary = loft_bench::alloc_count::total());
        let after = loft_bench::alloc_count::total();
        // The counted span also covers the drain phase, so dividing
        // by the measurement window alone slightly overestimates the
        // rate — conservative for a budget gate.
        let apc = (after - at_boundary) as f64 / ctx.cfg.measure as f64;
        (out, Some(apc))
    };
    #[cfg(not(feature = "alloc-count"))]
    let ((report, telemetry, info), allocs_per_cycle) = (f(&mut || {}), None::<f64>);

    // Serialize the telemetry document outside the timed span: the
    // JSON export is one-shot output formatting, not part of the
    // steady-state loop the allocation budget gates (the probe's own
    // recording stays inside the span, where it belongs).
    let telemetry = telemetry.map(|t| {
        let doc = t.to_json();
        format!(
            "{{\"net\":\"{}\",\"scenario\":\"{}\",\"load\":{},\"telemetry\":{doc}}}",
            spec.net, spec.scenario, spec.load
        )
    });

    let start = std::time::Instant::now();
    for _ in 0..ctx.iters {
        std::hint::black_box(f(&mut || {}));
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(ctx.iters);
    let sim_cycles = ctx.cfg.warmup + ctx.cfg.measure + ctx.cfg.drain;
    render_row(
        spec,
        ctx,
        false,
        sim_cycles,
        wall,
        &report,
        &info,
        allocs_per_cycle,
        telemetry,
    )
}

/// Measures one point by forking a shared warmup checkpoint per
/// iteration: the timed span covers the measurement + drain phases
/// only (`sim_cycles` records that basis), and every fork's report is
/// bit-identical to a from-scratch run's.
fn measure_forked<N: Network + Clone>(spec: Spec, ctx: Ctx, ckpt: &Checkpoint<N, Workload>) -> Row {
    // Allocation measurement on a forked leg: the fork itself is
    // setup (a deep copy), so the counter is snapshotted after it —
    // the counted span covers the same boundary-to-end phases as the
    // full-run hook placement.
    #[cfg(feature = "alloc-count")]
    let ((report, info), allocs_per_cycle) = {
        let leg = ckpt.fork();
        let at_boundary = loft_bench::alloc_count::total();
        let (report, _, info) = leg.resume();
        let after = loft_bench::alloc_count::total();
        let apc = (after - at_boundary) as f64 / ctx.cfg.measure as f64;
        ((report, info), Some(apc))
    };
    #[cfg(not(feature = "alloc-count"))]
    let ((report, info), allocs_per_cycle) = {
        let (report, _, info) = ckpt.fork().resume();
        ((report, info), None::<f64>)
    };

    let start = std::time::Instant::now();
    for _ in 0..ctx.iters {
        std::hint::black_box(ckpt.fork().resume());
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(ctx.iters);
    let sim_cycles = ctx.cfg.measure + ctx.cfg.drain;
    render_row(
        spec,
        ctx,
        true,
        sim_cycles,
        wall,
        &report,
        &info,
        allocs_per_cycle,
        None,
    )
}

/// Runs one cell of the matrix, choosing the measurement path from
/// the context (telemetry > forked warmup > full runs).
fn run_spec(spec: Spec, ctx: Ctx) -> Row {
    let scenario = match spec.scenario {
        "uniform" => Scenario::uniform(spec.load),
        "hotspot" => Scenario::hotspot(spec.load),
        "bursty-low" => Scenario::bursty_low_duty(spec.load),
        "regulated" => Scenario::regulated(spec.load),
        other => unreachable!("unknown scenario {other}"),
    };
    let (cfg, ff) = (ctx.cfg, ctx.fast_forward);
    match spec.net {
        "loft" => {
            let net_cfg = LoftConfig {
                threads: ctx.threads,
                ..LoftConfig::default()
            };
            if ctx.with_telemetry {
                measure_full(spec, ctx, |hook| {
                    let (r, t, i) =
                        run_loft_telemetry_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, Some(t), i)
                })
            } else if ctx.fork_warmup {
                let ckpt = checkpoint_loft(&scenario, net_cfg, cfg, SEED, ff);
                measure_forked(spec, ctx, &ckpt)
            } else {
                measure_full(spec, ctx, |hook| {
                    let (r, i) = run_loft_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, None, i)
                })
            }
        }
        "gsf" => {
            let net_cfg = GsfConfig {
                threads: ctx.threads,
                ..GsfConfig::default()
            };
            if ctx.with_telemetry {
                measure_full(spec, ctx, |hook| {
                    let (r, t, i) = run_gsf_telemetry_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, Some(t), i)
                })
            } else if ctx.fork_warmup {
                let ckpt = checkpoint_gsf(&scenario, net_cfg, cfg, SEED, ff);
                measure_forked(spec, ctx, &ckpt)
            } else {
                measure_full(spec, ctx, |hook| {
                    let (r, i) = run_gsf_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, None, i)
                })
            }
        }
        "wormhole" => {
            let net_cfg = WormholeConfig {
                threads: ctx.threads,
                ..WormholeConfig::default()
            };
            if ctx.with_telemetry {
                measure_full(spec, ctx, |hook| {
                    let (r, t, i) =
                        run_wormhole_telemetry_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, Some(t), i)
                })
            } else if ctx.fork_warmup {
                let ckpt = checkpoint_wormhole(&scenario, net_cfg, cfg, SEED, ff);
                measure_forked(spec, ctx, &ckpt)
            } else {
                measure_full(spec, ctx, |hook| {
                    let (r, i) = run_wormhole_info(&scenario, net_cfg, cfg, SEED, ff, hook);
                    (r, None, i)
                })
            }
        }
        other => unreachable!("unknown network {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let budget: Option<f64> = args.iter().position(|a| a == "--alloc-budget").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--alloc-budget takes a numeric argument")
    });
    if budget.is_some() && cfg!(not(feature = "alloc-count")) {
        eprintln!("--alloc-budget requires --features alloc-count (nothing to gate on)");
        std::process::exit(1);
    }
    let threads: usize = args.iter().position(|a| a == "--threads").map_or(1, |i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--threads takes a positive integer")
    });
    let jobs: usize = args.iter().position(|a| a == "--jobs").map_or(1, |i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--jobs takes a positive integer")
    });
    let jobs = clamp_jobs(jobs, threads);
    if budget.is_some() && jobs > 1 {
        eprintln!(
            "--alloc-budget cannot run with --jobs {jobs}: the allocation counter is \
             process-global, so concurrent points would pollute each other's rates"
        );
        std::process::exit(1);
    }
    let telemetry_path: Option<String> = args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1)
            .cloned()
            .expect("--telemetry takes an output path")
    });
    let with_telemetry = telemetry_path.is_some();
    let fast_forward = !args.iter().any(|a| a == "--no-fast-forward");
    let fork_warmup = !args.iter().any(|a| a == "--no-fork-warmup");
    let traffic: Option<String> = args.iter().position(|a| a == "--traffic").map(|i| {
        args.get(i + 1)
            .cloned()
            .expect("--traffic takes bursty or regulated")
    });
    // Per-network cycles/second floors: "loft=200000,gsf=100000".
    let floors: Vec<(String, f64)> = args
        .iter()
        .position(|a| a == "--min-cps")
        .map(|i| {
            args.get(i + 1)
                .map(|v| {
                    v.split(',')
                        .map(|pair| {
                            let (net, cps) = pair
                                .split_once('=')
                                .expect("--min-cps entries look like net=cycles_per_sec");
                            (
                                net.to_string(),
                                cps.parse().expect("--min-cps floor must be numeric"),
                            )
                        })
                        .collect()
                })
                .expect("--min-cps takes net=floor[,net=floor...]")
        })
        .unwrap_or_default();

    let ctx = Ctx {
        threads,
        jobs,
        iters: if smoke { 1 } else { 5 },
        cfg: run(smoke),
        fast_forward,
        with_telemetry,
        fork_warmup,
    };
    // Low load: the hot loop is dominated by per-cycle scans over
    // mostly-idle state — exactly what active-set worklists target.
    // Near saturation: dominated by real queue and slab work, which
    // is where steady-state allocations would hide. Hotspot
    // concentrates that pressure on a few links. The --traffic
    // matrices swap in the quiescence-heavy workloads where the
    // engine's fast-forward dominates the wall clock.
    let points: &[(&'static str, f64)] = match traffic.as_deref() {
        Some("bursty") => &[("bursty-low", 0.60)],
        Some("regulated") => &[("regulated", 0.05)],
        Some(other) => panic!("--traffic must be bursty or regulated, got {other:?}"),
        None if smoke => &[("uniform", 0.05), ("uniform", 0.60)],
        None => &[("uniform", 0.05), ("uniform", 0.60), ("hotspot", 0.60)],
    };
    let specs: Vec<Spec> = points
        .iter()
        .flat_map(|&(scenario, load)| {
            ["loft", "gsf", "wormhole"].map(|net| Spec {
                net,
                scenario,
                load,
            })
        })
        .collect();
    let rows: Vec<Row> = if jobs > 1 {
        // The mapping thread participates in the claim loop, so
        // `jobs`-way parallelism wants `jobs - 1` workers.
        let mut pool = WorkerPool::new(jobs - 1);
        pool_map(&mut pool, specs, |spec| run_spec(spec, ctx))
    } else {
        specs.into_iter().map(|spec| run_spec(spec, ctx)).collect()
    };
    for row in &rows {
        println!("{}", row.line);
    }

    let mut worst: f64 = 0.0;
    // One telemetry document per measured point (--telemetry).
    let mut telemetry_docs: Vec<String> = Vec::new();
    // Slowest measured point per network, for the --min-cps gate.
    let mut min_cps = [
        ("loft", f64::INFINITY),
        ("gsf", f64::INFINITY),
        ("wormhole", f64::INFINITY),
    ];
    for row in rows {
        worst = row.allocs_per_cycle.iter().fold(worst, |w, &a| w.max(a));
        if let Some(slot) = min_cps.iter_mut().find(|(n, _)| *n == row.net) {
            slot.1 = slot.1.min(row.cycles_per_sec);
        }
        if let Some(doc) = row.telemetry {
            telemetry_docs.push(doc);
        }
    }
    if let Some(path) = &telemetry_path {
        let body = format!("[{}]", telemetry_docs.join(","));
        std::fs::write(path, body).expect("writing --telemetry output failed");
        eprintln!(
            "telemetry written: {path} ({} points)",
            telemetry_docs.len()
        );
    }
    let mut failed = false;
    if let Some(b) = budget {
        if worst > b {
            eprintln!("alloc budget exceeded: worst allocs_per_cycle {worst:.4} > budget {b}");
            failed = true;
        } else {
            eprintln!("alloc budget ok: worst allocs_per_cycle {worst:.4} <= budget {b}");
        }
    }
    for (net, floor) in &floors {
        match min_cps.iter().find(|(n, _)| n == net) {
            Some(&(_, got)) => {
                if got < *floor {
                    eprintln!("cps floor violated: {net} ran at {got:.0} < floor {floor:.0}");
                    failed = true;
                } else {
                    eprintln!("cps floor ok: {net} ran at {got:.0} >= floor {floor:.0}");
                }
            }
            None => {
                eprintln!("--min-cps names unknown network {net:?}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
