//! Hot-loop throughput benchmark: simulated cycles/second and
//! delivered packets/second for each network architecture, at a low
//! load point, near saturation, and under hotspot traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p loft-bench --bin perf
//! ```
//!
//! Each measurement prints one machine-readable JSON line:
//!
//! ```text
//! {"net":"loft","scenario":"uniform","load":0.05,"sim_cycles":24000,
//!  "wall_secs":0.0123,"cycles_per_sec":1951219.5,
//!  "packets_delivered":730,"packets_per_sec":59349.6,
//!  "flits_delivered":2920,"avg_latency":27.41,
//!  "allocs_per_cycle":null}
//! ```
//!
//! `cycles_per_sec` is the headline number for hot-path optimization
//! work: compare it across commits at the same load point (the
//! simulations are fully deterministic, so the simulated work is
//! identical and only the wall clock moves).
//!
//! `allocs_per_cycle` is the steady-state allocation rate: heap
//! allocations between the warmup/measurement boundary and the end of
//! the run, divided by the measurement window. It requires the
//! `alloc-count` feature (which installs a counting global allocator)
//! and prints `null` without it. With `--alloc-budget X` the process
//! exits nonzero if any measured point exceeds `X` — the CI gate that
//! keeps the steady state allocation-free.
//!
//! `--smoke` runs tiny windows with one timed iteration — a
//! seconds-long CI check that the harness and all three hot loops
//! still run end to end (the numbers it prints are not comparable
//! across machines, but `allocs_per_cycle` is machine-independent and
//! gateable even in smoke mode).

use loft::LoftConfig;
use loft_bench::{run_gsf_hooked, run_loft_hooked, run_wormhole_hooked, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{RunConfig, SimReport};
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// Measurement-window sizing: long enough that per-run overhead
/// (network construction, warmup) is amortized, short enough that the
/// whole matrix finishes in seconds. `--smoke` shrinks the window to
/// a functional check.
fn run(smoke: bool) -> RunConfig {
    if smoke {
        RunConfig {
            warmup: 200,
            measure: 2_000,
            drain: 1_000,
        }
    } else {
        RunConfig {
            warmup: 1_000,
            measure: 20_000,
            drain: 3_000,
        }
    }
}

/// Runs one benchmark point and prints its JSON line. `f` receives
/// the `after_warmup` hook to pass through to the simulation; the
/// untimed first run uses it to snapshot the allocation counter at
/// the warmup/measurement boundary. Returns the measured
/// `allocs_per_cycle` (`None` without the `alloc-count` feature).
fn measure(
    net: &str,
    scenario: &str,
    load: f64,
    iters: u32,
    cfg: RunConfig,
    f: impl Fn(&mut dyn FnMut()) -> SimReport,
) -> Option<f64> {
    // One untimed warmup run (doubling as the allocation
    // measurement), then the mean of `iters` timed runs.
    #[cfg(feature = "alloc-count")]
    let (report, allocs_per_cycle) = {
        let mut at_boundary = 0u64;
        let report = f(&mut || at_boundary = loft_bench::alloc_count::total());
        let after = loft_bench::alloc_count::total();
        // The counted span also covers the drain phase, so dividing
        // by the measurement window alone slightly overestimates the
        // rate — conservative for a budget gate.
        let apc = (after - at_boundary) as f64 / cfg.measure as f64;
        (report, Some(apc))
    };
    #[cfg(not(feature = "alloc-count"))]
    let (report, allocs_per_cycle) = (f(&mut || {}), None::<f64>);

    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f(&mut || {}));
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(iters);

    let sim_cycles = cfg.warmup + cfg.measure + cfg.drain;
    let packets = report.total_latency.count();
    let allocs = allocs_per_cycle.map_or_else(|| "null".to_string(), |a| format!("{a:.4}"));
    println!(
        "{{\"net\":\"{net}\",\"scenario\":\"{scenario}\",\"load\":{load},\
         \"sim_cycles\":{sim_cycles},\"wall_secs\":{wall:.6},\
         \"cycles_per_sec\":{:.1},\"packets_delivered\":{packets},\
         \"packets_per_sec\":{:.1},\"flits_delivered\":{},\
         \"avg_latency\":{:.4},\"allocs_per_cycle\":{allocs}}}",
        sim_cycles as f64 / wall,
        packets as f64 / wall,
        report.flits_delivered,
        report.avg_latency(),
    );
    allocs_per_cycle
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let budget: Option<f64> = args.iter().position(|a| a == "--alloc-budget").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--alloc-budget takes a numeric argument")
    });
    if budget.is_some() && cfg!(not(feature = "alloc-count")) {
        eprintln!("--alloc-budget requires --features alloc-count (nothing to gate on)");
        std::process::exit(1);
    }

    let cfg = run(smoke);
    let iters = if smoke { 1 } else { 5 };
    // Low load: the hot loop is dominated by per-cycle scans over
    // mostly-idle state — exactly what active-set worklists target.
    // Near saturation: dominated by real queue and slab work, which
    // is where steady-state allocations would hide. Hotspot
    // concentrates that pressure on a few links.
    let points: &[(&str, f64)] = if smoke {
        &[("uniform", 0.05), ("uniform", 0.60)]
    } else {
        &[("uniform", 0.05), ("uniform", 0.60), ("hotspot", 0.60)]
    };
    let mut worst: f64 = 0.0;
    for &(scenario, load) in points {
        let make = |sc: &str| match sc {
            "uniform" => Scenario::uniform(load),
            "hotspot" => Scenario::hotspot(load),
            _ => unreachable!(),
        };
        let rows = [
            measure("loft", scenario, load, iters, cfg, |hook| {
                run_loft_hooked(&make(scenario), LoftConfig::default(), cfg, SEED, hook)
            }),
            measure("gsf", scenario, load, iters, cfg, |hook| {
                run_gsf_hooked(&make(scenario), GsfConfig::default(), cfg, SEED, hook)
            }),
            measure("wormhole", scenario, load, iters, cfg, |hook| {
                run_wormhole_hooked(&make(scenario), WormholeConfig::default(), cfg, SEED, hook)
            }),
        ];
        worst = rows.iter().flatten().fold(worst, |w, &a| w.max(a));
    }
    if let Some(b) = budget {
        if worst > b {
            eprintln!("alloc budget exceeded: worst allocs_per_cycle {worst:.4} > budget {b}");
            std::process::exit(1);
        }
        eprintln!("alloc budget ok: worst allocs_per_cycle {worst:.4} <= budget {b}");
    }
}
