//! Regenerates **Figure 11**: average packet latency against offered
//! load and total accepted throughput, for uniform (11a) and hotspot
//! (11b) traffic, sweeping LOFT's speculative buffer size and
//! comparing against GSF.
//!
//! Latency is the *network* latency (injection → ejection), which
//! levels out past saturation because both architectures regulate
//! injection — matching the paper's description. Accepted throughput
//! is reported at the highest offered load, normalized to GSF as in
//! the paper's bar charts.
//!
//! Usage: `fig11_performance [uniform|hotspot]` (default: both).

use loft::LoftConfig;
use loft_bench::{parallel_map, print_table, run_gsf, run_loft, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{RunConfig, SimReport};
use noc_traffic::Scenario;

struct Sweep {
    label: String,
    reports: Vec<SimReport>,
}

fn run_pattern(pattern: &str) {
    let (rates, spec_sizes): (Vec<f64>, Vec<u32>) = match pattern {
        "uniform" => (
            vec![0.02, 0.08, 0.14, 0.20, 0.26, 0.32, 0.38, 0.44, 0.50],
            vec![0, 4, 8, 12, 16],
        ),
        "hotspot" => (
            vec![
                0.001, 0.003, 0.005, 0.007, 0.009, 0.011, 0.013, 0.015, 0.017,
            ],
            vec![0, 2, 4, 6, 8],
        ),
        other => panic!("unknown pattern {other:?} (use uniform|hotspot)"),
    };
    let uniform = pattern == "uniform";
    let run = RunConfig {
        warmup: 5_000,
        measure: 30_000,
        drain: 20_000,
    };

    let mut sweeps: Vec<Sweep> = Vec::new();
    {
        let rates = rates.clone();
        let reports = parallel_map(rates, move |rate| {
            let s = if uniform {
                Scenario::uniform(rate)
            } else {
                Scenario::hotspot(rate)
            };
            run_gsf(&s, GsfConfig::default(), run, SEED)
        });
        sweeps.push(Sweep {
            label: "GSF".into(),
            reports,
        });
    }
    for &spec in &spec_sizes {
        let rates = rates.clone();
        let reports = parallel_map(rates, move |rate| {
            let s = if uniform {
                Scenario::uniform(rate)
            } else {
                Scenario::hotspot(rate)
            };
            run_loft(&s, LoftConfig::with_spec_buffer(spec), run, SEED)
        });
        sweeps.push(Sweep {
            label: format!("LOFT spec={spec}"),
            reports,
        });
    }

    // Latency table: one row per offered rate, one column per config.
    let mut header: Vec<String> = vec!["offered".into()];
    header.extend(sweeps.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = rates
        .iter()
        .enumerate()
        .map(|(i, rate)| {
            let mut row = vec![format!("{rate:.3}")];
            for s in &sweeps {
                row.push(format!("{:.1}", s.reports[i].network_latency.mean()));
            }
            row
        })
        .collect();
    print_table(
        &format!("Figure 11 ({pattern}) — network latency (cycles) vs offered load"),
        &header_refs,
        &rows,
    );

    // Accepted throughput at the highest load, normalized to GSF.
    let gsf_tput = sweeps[0].reports.last().unwrap().throughput_per_node();
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            let t = s.reports.last().unwrap().throughput_per_node();
            vec![
                s.label.clone(),
                format!("{t:.4}"),
                format!("{:.2}", t / gsf_tput),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 11 ({pattern}) — accepted throughput at offered {:.3} (normalized to GSF)",
            rates.last().unwrap()
        ),
        &["config", "flits/cycle/node", "vs GSF"],
        &rows,
    );
}

fn main() {
    match std::env::args().nth(1) {
        Some(p) => run_pattern(&p),
        None => {
            run_pattern("uniform");
            run_pattern("hotspot");
        }
    }
}
