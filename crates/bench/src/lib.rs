//! # loft-bench — experiment harness for the LOFT reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! the shared machinery here: scenario runners for each network
//! architecture, multi-threaded parameter sweeps, and plain-text
//! table output.
//!
//! | Paper artifact | Binary |
//! |----------------|--------|
//! | Table 1 (setup) | `table1_setup` |
//! | Table 2 (storage) + area/power | `table2_storage` |
//! | §5.3.1 delay bounds | `delay_bounds` |
//! | Figure 6 (flow-control timeline) | `fig6_flowcontrol` |
//! | Figure 10 (fairness) | `fig10_fairness` |
//! | Figure 11 (latency/throughput) | `fig11_performance` |
//! | Figure 12 (Case Study I, DoS) | `fig12_case1` |
//! | Figure 13 (Case Study II, pathological) | `fig13_case2` |

use loft::{LoftConfig, LoftNetwork};
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::telemetry::{LiveProbe, TelemetryReport};
use noc_sim::{Checkpoint, RunConfig, RunInfo, SimReport, Simulation};
use noc_traffic::{Scenario, Workload};
use noc_wormhole::{WormholeConfig, WormholeNetwork};

pub mod sweep;

/// Default seed for all experiments (fully deterministic runs).
pub const SEED: u64 = 0xC0FFEE;

/// Occupancy-sampling and flow-series window (cycles) used by every
/// telemetry-enabled runner. Coarse enough that sampling costs
/// nothing measurable, fine enough that the per-flow series resolve
/// the frame-scale dynamics the QoS experiments look at.
pub const TELEMETRY_WINDOW: u64 = 1_000;

/// Allocation counting for the zero-allocation steady-state gate
/// (`alloc-count` feature): wraps the system allocator, counting
/// every `alloc`/`realloc` so the `perf` binary can report
/// `allocs_per_cycle` and CI can fail when the steady state regresses
/// into per-cycle heap traffic.
///
/// The counter is **thread-aware**: a `#[global_allocator]` serves
/// every thread in the process, so allocations made by `noc_sim::par`
/// pool workers during sharded stepping land in the same counter as
/// the coordinator's. The `--alloc-budget` gate therefore holds the
/// multi-threaded engine (`--threads N`) to the same steady-state
/// standard as the single-threaded one.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that counts allocations.
    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System`; the counter is a
    // relaxed atomic with no other side effects.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Heap allocations (including reallocations) since process
    /// start.
    pub fn total() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Runs a scenario on a LOFT network.
///
/// # Panics
///
/// Panics if the scenario's reservations are infeasible for the
/// configured frame size.
pub fn run_loft(scenario: &Scenario, cfg: LoftConfig, run: RunConfig, seed: u64) -> SimReport {
    run_loft_hooked(scenario, cfg, run, seed, || {})
}

/// [`run_loft`] with an `after_warmup` hook (see
/// [`Simulation::run_hooked`]); the allocation-counting perf harness
/// snapshots its counter there.
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn run_loft_hooked(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> SimReport {
    run_loft_info(scenario, cfg, run, seed, true, after_warmup).0
}

/// [`run_loft_hooked`] with explicit control over quiescence
/// fast-forward, additionally returning the run's [`RunInfo`]
/// (skipped-cycle count, drain-termination cycle). Results are
/// bit-identical for both `fast_forward` settings; only the wall
/// clock and `RunInfo::skipped_cycles` move.
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn run_loft_info(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, RunInfo) {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the LOFT frame");
    let network = LoftNetwork::new(cfg, &reservations);
    let (report, _, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, info)
}

/// [`run_loft_hooked`] with a [`LiveProbe`] attached: returns the
/// usual [`SimReport`] plus the full [`TelemetryReport`] of the run
/// (sampled on [`TELEMETRY_WINDOW`]).
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn run_loft_telemetry(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport) {
    let (report, telemetry, _) =
        run_loft_telemetry_info(scenario, cfg, run, seed, true, after_warmup);
    (report, telemetry)
}

/// [`run_loft_telemetry`] with explicit fast-forward control plus the
/// run's [`RunInfo`] (see [`run_loft_info`]).
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn run_loft_telemetry_info(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport, RunInfo) {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the LOFT frame");
    let network = LoftNetwork::with_probe(cfg, &reservations, LiveProbe::new(TELEMETRY_WINDOW));
    let (report, network, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, network.into_probe().finish(), info)
}

/// Runs a scenario on a GSF network.
///
/// # Panics
///
/// Panics if the scenario's reservations are infeasible for the
/// configured frame size.
pub fn run_gsf(scenario: &Scenario, cfg: GsfConfig, run: RunConfig, seed: u64) -> SimReport {
    run_gsf_hooked(scenario, cfg, run, seed, || {})
}

/// [`run_gsf`] with an `after_warmup` hook (see
/// [`Simulation::run_hooked`]).
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn run_gsf_hooked(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> SimReport {
    run_gsf_info(scenario, cfg, run, seed, true, after_warmup).0
}

/// [`run_gsf_hooked`] with explicit fast-forward control plus the
/// run's [`RunInfo`] (see [`run_loft_info`]).
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn run_gsf_info(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, RunInfo) {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the GSF frame");
    let network = GsfNetwork::new(cfg, &reservations);
    let (report, _, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, info)
}

/// [`run_gsf_hooked`] with a [`LiveProbe`] attached (see
/// [`run_loft_telemetry`]).
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn run_gsf_telemetry(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport) {
    let (report, telemetry, _) =
        run_gsf_telemetry_info(scenario, cfg, run, seed, true, after_warmup);
    (report, telemetry)
}

/// [`run_gsf_telemetry`] with explicit fast-forward control plus the
/// run's [`RunInfo`] (see [`run_loft_info`]).
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn run_gsf_telemetry_info(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport, RunInfo) {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the GSF frame");
    let network = GsfNetwork::with_probe(cfg, &reservations, LiveProbe::new(TELEMETRY_WINDOW));
    let (report, network, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, network.into_probe().finish(), info)
}

/// Runs a scenario on the baseline wormhole network (no QoS).
pub fn run_wormhole(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
) -> SimReport {
    run_wormhole_hooked(scenario, cfg, run, seed, || {})
}

/// [`run_wormhole`] with an `after_warmup` hook (see
/// [`Simulation::run_hooked`]).
pub fn run_wormhole_hooked(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> SimReport {
    run_wormhole_info(scenario, cfg, run, seed, true, after_warmup).0
}

/// [`run_wormhole_hooked`] with explicit fast-forward control plus
/// the run's [`RunInfo`] (see [`run_loft_info`]).
pub fn run_wormhole_info(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, RunInfo) {
    let network = WormholeNetwork::new(cfg);
    let (report, _, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, info)
}

/// [`run_wormhole_hooked`] with a [`LiveProbe`] attached (see
/// [`run_loft_telemetry`]).
pub fn run_wormhole_telemetry(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport) {
    let (report, telemetry, _) =
        run_wormhole_telemetry_info(scenario, cfg, run, seed, true, after_warmup);
    (report, telemetry)
}

/// [`run_wormhole_telemetry`] with explicit fast-forward control plus
/// the run's [`RunInfo`] (see [`run_loft_info`]).
pub fn run_wormhole_telemetry_info(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
    after_warmup: impl FnMut(),
) -> (SimReport, TelemetryReport, RunInfo) {
    let network = WormholeNetwork::with_probe(cfg, LiveProbe::new(TELEMETRY_WINDOW));
    let (report, network, info) = Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_full(after_warmup);
    (report, network.into_probe().finish(), info)
}

/// Runs a LOFT scenario's warmup once and freezes it as a
/// [`Checkpoint`]: fork it for every measurement variant (repeated
/// timing iterations, fast-forward legs, horizon extensions) instead
/// of re-running warmup — each fork's results are bit-identical to a
/// from-scratch [`run_loft_info`] with the same settings.
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn checkpoint_loft(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<LoftNetwork, Workload> {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the LOFT frame");
    let network = LoftNetwork::new(cfg, &reservations);
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// [`checkpoint_loft`] with a [`LiveProbe`] attached (window
/// [`TELEMETRY_WINDOW`]); extract the probe from the network returned
/// by `resume` with `into_probe`.
///
/// # Panics
///
/// Same conditions as [`run_loft`].
pub fn checkpoint_loft_telemetry(
    scenario: &Scenario,
    cfg: LoftConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<LoftNetwork<LiveProbe>, Workload> {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the LOFT frame");
    let network = LoftNetwork::with_probe(cfg, &reservations, LiveProbe::new(TELEMETRY_WINDOW));
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// Warmup-once checkpoint for a GSF scenario (see
/// [`checkpoint_loft`]).
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn checkpoint_gsf(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<GsfNetwork, Workload> {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the GSF frame");
    let network = GsfNetwork::new(cfg, &reservations);
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// [`checkpoint_gsf`] with a [`LiveProbe`] attached.
///
/// # Panics
///
/// Same conditions as [`run_gsf`].
pub fn checkpoint_gsf_telemetry(
    scenario: &Scenario,
    cfg: GsfConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<GsfNetwork<LiveProbe>, Workload> {
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("scenario reservations must fit the GSF frame");
    let network = GsfNetwork::with_probe(cfg, &reservations, LiveProbe::new(TELEMETRY_WINDOW));
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// Warmup-once checkpoint for a wormhole scenario (see
/// [`checkpoint_loft`]).
pub fn checkpoint_wormhole(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<WormholeNetwork, Workload> {
    let network = WormholeNetwork::new(cfg);
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// [`checkpoint_wormhole`] with a [`LiveProbe`] attached.
pub fn checkpoint_wormhole_telemetry(
    scenario: &Scenario,
    cfg: WormholeConfig,
    run: RunConfig,
    seed: u64,
    fast_forward: bool,
) -> Checkpoint<WormholeNetwork<LiveProbe>, Workload> {
    let network = WormholeNetwork::with_probe(cfg, LiveProbe::new(TELEMETRY_WINDOW));
    Simulation::new(network, scenario.workload(seed), run)
        .with_fast_forward(fast_forward)
        .run_to_checkpoint()
}

/// Maps `f` over `items` on the process-wide sweep worker pool,
/// preserving input order in the output.
///
/// Simulations are single-threaded and independent, so sweeps
/// parallelize trivially — but a 40-point sweep must not spawn 40 OS
/// threads on a 4-core box. All sweeps share one persistent
/// [`noc_sim::par::WorkerPool`] sized to
/// [`std::thread::available_parallelism`] (spawned on first use, kept
/// for the life of the process); items are claimed off a shared
/// cursor, so long points pipeline with short ones instead of
/// oversubscribing the machine.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    use noc_sim::par::{pool_map, WorkerPool};
    use std::sync::{Mutex, OnceLock};

    static POOL: OnceLock<Mutex<WorkerPool>> = OnceLock::new();
    if items.is_empty() {
        return Vec::new();
    }
    let pool = POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        // The mapping thread participates in the claim loop, so a
        // pool for `threads`-way parallelism wants `threads - 1`
        // workers.
        Mutex::new(WorkerPool::new(threads - 1))
    });
    let mut pool = pool.lock().expect("sweep pool poisoned");
    pool_map(&mut pool, items, f)
}

/// Times `f` over `iters` iterations after one untimed warmup call,
/// returning the mean wall-clock seconds per iteration. The minimal
/// stand-in for an external benchmarking framework (this workspace
/// builds offline, dependency-free).
pub fn time_iterations<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Runs `f` as a named microbenchmark and prints one aligned line
/// with the mean time per iteration.
pub fn bench_report<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let secs = time_iterations(iters, f);
    if secs < 1e-3 {
        println!("{name:<48} {:>10.2} µs/iter", secs * 1e6);
    } else {
        println!("{name:<48} {:>10.3} ms/iter", secs * 1e3);
    }
}

/// Prints a plain-text table: header row + rows, pipe-separated and
/// column-aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    println!("{}", fmt_row(header.to_vec()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row.iter().map(|s| s.as_str()).collect()));
    }
}

/// Formats a float with 4 significant decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![3u64, 1, 2], |x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    /// The allocation counter must observe worker-thread allocations
    /// (a global allocator is process-wide), or the `--alloc-budget`
    /// gate would silently exempt the parallel engine.
    #[cfg(feature = "alloc-count")]
    #[test]
    fn alloc_counter_sees_other_threads() {
        let before = alloc_count::total();
        std::thread::spawn(|| {
            std::hint::black_box(vec![0u8; 4096]);
        })
        .join()
        .expect("allocating thread panicked");
        assert!(
            alloc_count::total() > before,
            "worker-thread allocation not counted"
        );
    }

    #[test]
    fn runners_produce_traffic() {
        let s = Scenario::hotspot(0.01);
        let run = RunConfig {
            warmup: 500,
            measure: 2_000,
            drain: 2_000,
        };
        let loft = run_loft(&s, LoftConfig::default(), run, SEED);
        let gsf = run_gsf(&s, GsfConfig::default(), run, SEED);
        let worm = run_wormhole(&s, WormholeConfig::default(), run, SEED);
        assert!(loft.flits_delivered > 0);
        assert!(gsf.flits_delivered > 0);
        assert!(worm.flits_delivered > 0);
    }

    /// Fast-forward is a pure wall-clock optimization: the `_info`
    /// runners must reproduce the plain runners' reports bit-for-bit
    /// with the fast path on or off, and on a quiescence-heavy
    /// workload the enabled run actually skips cycles.
    #[test]
    fn fast_forward_runners_match_and_skip() {
        let s = Scenario::regulated(0.05);
        let run = RunConfig {
            warmup: 500,
            measure: 2_000,
            drain: 2_000,
        };
        let (on, info_on) = run_loft_info(&s, LoftConfig::default(), run, SEED, true, || {});
        let (off, info_off) = run_loft_info(&s, LoftConfig::default(), run, SEED, false, || {});
        assert_eq!(on, off, "fast-forward changed the LOFT report");
        assert!(on.flits_delivered > 0);
        assert!(info_on.skipped_cycles > 0, "regulated gaps never skipped");
        assert_eq!(info_off.skipped_cycles, 0);

        let (on, info_on) = run_gsf_info(&s, GsfConfig::default(), run, SEED, true, || {});
        let (off, _) = run_gsf_info(&s, GsfConfig::default(), run, SEED, false, || {});
        assert_eq!(on, off, "fast-forward changed the GSF report");
        assert!(info_on.skipped_cycles > 0);

        let (on, info_on) =
            run_wormhole_info(&s, WormholeConfig::default(), run, SEED, true, || {});
        let (off, _) = run_wormhole_info(&s, WormholeConfig::default(), run, SEED, false, || {});
        assert_eq!(on, off, "fast-forward changed the wormhole report");
        assert!(info_on.skipped_cycles > 0);
    }

    /// Attaching a probe must not perturb the simulation: the
    /// telemetry runner's `SimReport` matches the plain runner's,
    /// and the telemetry document observes the same deliveries.
    #[test]
    fn telemetry_runners_match_plain_reports() {
        let s = Scenario::hotspot(0.01);
        let run = RunConfig {
            warmup: 500,
            measure: 2_000,
            drain: 2_000,
        };
        let plain = run_loft(&s, LoftConfig::default(), run, SEED);
        let (report, telemetry) = run_loft_telemetry(&s, LoftConfig::default(), run, SEED, || {});
        assert_eq!(plain.flits_delivered, report.flits_delivered);
        assert_eq!(plain.avg_latency(), report.avg_latency());
        assert!(telemetry.latency_histogram.count() > 0);
        assert!(telemetry.cycles > 0);
        assert!(telemetry.link_flits.iter().sum::<u64>() > 0);

        let plain = run_gsf(&s, GsfConfig::default(), run, SEED);
        let (report, telemetry) = run_gsf_telemetry(&s, GsfConfig::default(), run, SEED, || {});
        assert_eq!(plain.flits_delivered, report.flits_delivered);
        assert!(telemetry.latency_histogram.count() > 0);

        let plain = run_wormhole(&s, WormholeConfig::default(), run, SEED);
        let (report, telemetry) =
            run_wormhole_telemetry(&s, WormholeConfig::default(), run, SEED, || {});
        assert_eq!(plain.flits_delivered, report.flits_delivered);
        assert!(telemetry.latency_histogram.count() > 0);
    }
}
