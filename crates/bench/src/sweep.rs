//! Work-stealing parallel sweep over the experiment matrix.
//!
//! A sweep enumerates `{loft, gsf, wormhole} × {mesh, torus, ring} ×
//! traffic × load × fast-forward legs` and runs every cell, streaming
//! one versioned JSON row per cell. Two things make it fast:
//!
//! * **Warmup sharing.** All legs of a base point — the fast-forward
//!   on/off pair, and any horizon extensions from adaptive saturation
//!   probing — differ only *after* the warmup boundary. Each
//!   [`SweepGroup`] therefore runs warmup once into a
//!   [`Checkpoint`] and forks it per leg, instead
//!   of re-warming from scratch per cell (the `--no-fork` baseline).
//!   Forked legs are bit-identical to from-scratch runs; see
//!   `noc_sim::checkpoint` for why.
//! * **Work stealing across cells.** Groups are whole-simulation
//!   tasks: independent, single-threaded (unless the group itself
//!   shards), wildly uneven in cost. They are sorted
//!   longest-expected-first and claimed off the shared cursor of a
//!   [`WorkerPool`] (`--jobs N`), so a long GSF point pipelines with
//!   many short wormhole points instead of serializing behind them.
//!
//! The warmup checkpoint is always built with quiescence fast-forward
//! enabled (it never changes results, only wall clock). A consequence:
//! the `ff=false` leg of a forked group still carries the warmup
//! phase's skipped cycles in its `skipped_cycles` field, whereas a
//! from-scratch `ff=false` run reports zero. That field (and wall
//! clock) is excluded from [`SweepRow::equivalence_key`], which is
//! what `--selfcheck` compares between the forked and re-warm paths.

use std::time::Instant;

use loft::{LoftConfig, LoftNetwork};
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::par::{pool_map, WorkerPool};
use noc_sim::{Checkpoint, RunConfig, RunInfo, SimReport, Topology};
use noc_traffic::{DestRule, Scenario, Workload};
use noc_wormhole::{WormholeConfig, WormholeNetwork};

use crate::{
    checkpoint_gsf, checkpoint_loft, checkpoint_wormhole, run_gsf_info, run_loft_info,
    run_wormhole_info,
};

/// Version stamp on every JSON row this module emits.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// Network architecture of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Net {
    /// LOFT (the paper's network).
    Loft,
    /// GSF baseline.
    Gsf,
    /// Plain wormhole baseline.
    Wormhole,
}

impl Net {
    /// Row/CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Net::Loft => "loft",
            Net::Gsf => "gsf",
            Net::Wormhole => "wormhole",
        }
    }

    /// Relative cost per node-cycle, for longest-expected-first
    /// ordering. Rough empirical ratios from the perf harness; only
    /// the ordering matters, not the absolute values.
    fn weight(self) -> f64 {
        match self {
            Net::Loft => 2.5,
            Net::Gsf => 3.0,
            Net::Wormhole => 1.5,
        }
    }
}

/// Traffic pattern of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Uniform-random destinations, Bernoulli injection (Figure 11a).
    Uniform,
    /// All nodes to one hotspot corner (Figure 11b); only defined on
    /// the paper's default 8×8 mesh.
    Hotspot,
}

impl TrafficKind {
    /// Row/CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrafficKind::Uniform => "uniform",
            TrafficKind::Hotspot => "hotspot",
        }
    }
}

/// One base point of the matrix: a (network, topology, traffic, load,
/// seed) tuple whose legs share a warmup prefix.
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// Network architecture.
    pub net: Net,
    /// Topology.
    pub topo: Topology,
    /// Traffic pattern.
    pub traffic: TrafficKind,
    /// Injection rate in flits/cycle/node.
    pub load: f64,
    /// Shards per simulation (`threads` in the network configs).
    pub threads: usize,
    /// Phase lengths; [`Checkpoint::with_measure`] may extend
    /// `measure` per leg during saturation probing.
    pub run: RunConfig,
    /// Fast-forward legs to run from the shared warmup (one row each).
    pub ff_legs: Vec<bool>,
    /// Workload seed.
    pub seed: u64,
}

impl SweepGroup {
    /// Builds the scenario for this group.
    ///
    /// # Panics
    ///
    /// Panics for [`TrafficKind::Hotspot`] off the default 8×8 mesh.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        match self.traffic {
            TrafficKind::Uniform => uniform_on(self.topo, self.load),
            TrafficKind::Hotspot => {
                assert_eq!(
                    self.topo,
                    Scenario::default_topology(),
                    "hotspot traffic targets node 63 of the default 8x8 mesh"
                );
                Scenario::hotspot(self.load)
            }
        }
    }

    /// Expected relative cost, for longest-expected-first scheduling.
    /// Load scales the per-cycle work (more flits in flight), node
    /// count scales the fabric, and each leg re-runs measure + drain.
    #[must_use]
    pub fn expected_cost(&self) -> f64 {
        let legs = self.ff_legs.len().max(1) as f64;
        let cycles = self.run.warmup as f64 + legs * (self.run.measure + self.run.drain) as f64;
        self.net.weight() * (0.2 + self.load) * self.topo.num_nodes() as f64 * cycles
    }
}

/// [`Scenario::uniform`] retargeted to an arbitrary topology: one
/// Bernoulli flow per node to uniformly random destinations.
#[must_use]
pub fn uniform_on(topo: Topology, rate: f64) -> Scenario {
    let mut s = Scenario::uniform(rate);
    let n = topo.num_nodes();
    assert!(
        n <= s.flows.len(),
        "uniform_on only shrinks the default 64-flow scenario"
    );
    s.topo = topo;
    s.flows.truncate(n);
    for (flow, src) in s.flows.iter_mut().zip(topo.nodes()) {
        flow.src = src;
        flow.dest = DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s.name = format!("uniform(rate={rate})");
    s
}

/// Compact topology name for rows and logs (`mesh8x8`, `ring16`, ...).
#[must_use]
pub fn topo_name(topo: Topology) -> String {
    match topo {
        Topology::Mesh { .. } => format!("mesh{}x{}", topo.width(), topo.height()),
        Topology::Torus { .. } => format!("torus{}x{}", topo.width(), topo.height()),
        Topology::Ring { .. } => format!("ring{}", topo.num_nodes()),
    }
}

/// A group's warmed-up state, generic over the three network types so
/// the sweep driver can hold any cell's checkpoint in one place.
#[derive(Debug, Clone)]
pub enum GroupCheckpoint {
    /// LOFT checkpoint.
    Loft(Checkpoint<LoftNetwork, Workload>),
    /// GSF checkpoint.
    Gsf(Checkpoint<GsfNetwork, Workload>),
    /// Wormhole checkpoint.
    Wormhole(Checkpoint<WormholeNetwork, Workload>),
}

impl GroupCheckpoint {
    /// Runs the group's warmup once (with fast-forward — bit-identical
    /// and fastest) and freezes it.
    #[must_use]
    pub fn build(group: &SweepGroup, scenario: &Scenario) -> Self {
        let (run, seed) = (group.run, group.seed);
        match group.net {
            Net::Loft => {
                let cfg = LoftConfig {
                    threads: group.threads,
                    ..LoftConfig::on(group.topo)
                };
                GroupCheckpoint::Loft(checkpoint_loft(scenario, cfg, run, seed, true))
            }
            Net::Gsf => {
                let cfg = GsfConfig {
                    threads: group.threads,
                    ..GsfConfig::on(group.topo)
                };
                GroupCheckpoint::Gsf(checkpoint_gsf(scenario, cfg, run, seed, true))
            }
            Net::Wormhole => {
                let cfg = WormholeConfig {
                    threads: group.threads,
                    ..WormholeConfig::on(group.topo)
                };
                GroupCheckpoint::Wormhole(checkpoint_wormhole(scenario, cfg, run, seed, true))
            }
        }
    }

    /// Forks the checkpoint and runs one measurement leg with the
    /// given fast-forward setting and measurement window.
    #[must_use]
    pub fn fork_run(&self, fast_forward: bool, measure: u64) -> (SimReport, RunInfo) {
        match self {
            GroupCheckpoint::Loft(c) => {
                let (report, _, info) = c
                    .fork()
                    .with_fast_forward(fast_forward)
                    .with_measure(measure)
                    .resume();
                (report, info)
            }
            GroupCheckpoint::Gsf(c) => {
                let (report, _, info) = c
                    .fork()
                    .with_fast_forward(fast_forward)
                    .with_measure(measure)
                    .resume();
                (report, info)
            }
            GroupCheckpoint::Wormhole(c) => {
                let (report, _, info) = c
                    .fork()
                    .with_fast_forward(fast_forward)
                    .with_measure(measure)
                    .resume();
                (report, info)
            }
        }
    }
}

/// Runs one leg from scratch (full warmup) — the `--no-fork` baseline.
#[must_use]
pub fn run_scratch(
    group: &SweepGroup,
    scenario: &Scenario,
    fast_forward: bool,
    measure: u64,
) -> (SimReport, RunInfo) {
    let run = RunConfig {
        measure,
        ..group.run
    };
    match group.net {
        Net::Loft => {
            let cfg = LoftConfig {
                threads: group.threads,
                ..LoftConfig::on(group.topo)
            };
            run_loft_info(scenario, cfg, run, group.seed, fast_forward, || {})
        }
        Net::Gsf => {
            let cfg = GsfConfig {
                threads: group.threads,
                ..GsfConfig::on(group.topo)
            };
            run_gsf_info(scenario, cfg, run, group.seed, fast_forward, || {})
        }
        Net::Wormhole => {
            let cfg = WormholeConfig {
                threads: group.threads,
                ..WormholeConfig::on(group.topo)
            };
            run_wormhole_info(scenario, cfg, run, group.seed, fast_forward, || {})
        }
    }
}

/// One result row of the sweep (one leg of one group).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Network architecture.
    pub net: Net,
    /// Topology name (see [`topo_name`]).
    pub topo: String,
    /// Traffic pattern.
    pub traffic: TrafficKind,
    /// Injection rate.
    pub load: f64,
    /// Shards per simulation.
    pub threads: usize,
    /// Fast-forward setting of this leg.
    pub ff: bool,
    /// Whether this leg was forked from a shared warmup checkpoint.
    pub forked_warmup: bool,
    /// Workload seed.
    pub seed: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Final measurement window (after any horizon doublings).
    pub measure: u64,
    /// Drain bound.
    pub drain: u64,
    /// Cycle the run actually ended at.
    pub end_cycle: u64,
    /// Cycles skipped by quiescence fast-forward. Forked legs include
    /// warmup-phase skips even when `ff` is false (the shared warmup
    /// always fast-forwards).
    pub skipped_cycles: u64,
    /// Wall-clock seconds of this leg (fork + resume, or full run).
    pub wall_secs: f64,
    /// Wall-clock seconds of the shared warmup (0 when not forked).
    pub warmup_secs: f64,
    /// Packets delivered in the measurement window.
    pub packets: u64,
    /// Flits delivered in the measurement window.
    pub flits: u64,
    /// Mean packet latency, if anything was measured.
    pub avg_latency: Option<f64>,
    /// Latency percentiles (histogram upper bounds).
    pub p50: Option<u64>,
    /// 95th percentile.
    pub p95: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
    /// Network accepted but delivered nothing measurable: saturated.
    pub saturated: bool,
    /// Measurement-window doublings spent probing saturation.
    pub horizon_doublings: u32,
}

impl SweepRow {
    // One private call site; a params struct would restate the row.
    #[allow(clippy::too_many_arguments)]
    fn new(
        group: &SweepGroup,
        ff: bool,
        forked_warmup: bool,
        warmup_secs: f64,
        wall_secs: f64,
        measure: u64,
        horizon_doublings: u32,
        report: &SimReport,
        info: &RunInfo,
    ) -> Self {
        let packets: u64 = report.flows.iter().map(|f| f.packets_delivered).sum();
        let measured = report.total_latency.count() > 0;
        let q = |q: f64| measured.then(|| report.latency_histogram.quantile_upper_bound(q));
        SweepRow {
            net: group.net,
            topo: topo_name(group.topo),
            traffic: group.traffic,
            load: group.load,
            threads: group.threads,
            ff,
            forked_warmup,
            seed: group.seed,
            warmup: group.run.warmup,
            measure,
            drain: group.run.drain,
            end_cycle: info.end_cycle,
            skipped_cycles: info.skipped_cycles,
            wall_secs,
            warmup_secs,
            packets,
            flits: report.flits_delivered,
            avg_latency: measured.then(|| report.avg_latency()),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            saturated: !measured && packets > 0,
            horizon_doublings,
        }
    }

    /// The row as one JSON object (the sweep's streamed output
    /// format, `"schema": 1`).
    #[must_use]
    pub fn to_json(&self, jobs: usize) -> String {
        let opt_f = |x: Option<f64>| x.map_or("null".to_string(), |v| format!("{v:.3}"));
        let opt_u = |x: Option<u64>| x.map_or("null".to_string(), |v| v.to_string());
        format!(
            concat!(
                "{{\"schema\": {}, \"net\": \"{}\", \"topo\": \"{}\", \"traffic\": \"{}\", ",
                "\"load\": {}, \"threads\": {}, \"ff\": {}, \"jobs\": {}, ",
                "\"forked_warmup\": {}, \"seed\": {}, \"warmup\": {}, \"measure\": {}, ",
                "\"drain\": {}, \"end_cycle\": {}, \"skipped_cycles\": {}, ",
                "\"wall_secs\": {:.4}, \"warmup_secs\": {:.4}, \"packets_delivered\": {}, ",
                "\"flits_delivered\": {}, \"avg_latency\": {}, \"p50\": {}, \"p95\": {}, ",
                "\"p99\": {}, \"saturated\": {}, \"horizon_doublings\": {}}}"
            ),
            SWEEP_SCHEMA_VERSION,
            self.net.name(),
            self.topo,
            self.traffic.name(),
            self.load,
            self.threads,
            self.ff,
            jobs,
            self.forked_warmup,
            self.seed,
            self.warmup,
            self.measure,
            self.drain,
            self.end_cycle,
            self.skipped_cycles,
            self.wall_secs,
            self.warmup_secs,
            self.packets,
            self.flits,
            opt_f(self.avg_latency),
            opt_u(self.p50),
            opt_u(self.p95),
            opt_u(self.p99),
            self.saturated,
            self.horizon_doublings,
        )
    }

    /// The deterministic portion of the row: everything that must be
    /// bit-identical between a forked leg and a from-scratch leg of
    /// the same cell. Excludes wall clock, `forked_warmup`, and
    /// `skipped_cycles` (the shared warmup always fast-forwards, so a
    /// forked `ff=false` leg keeps warmup skips a scratch run never
    /// makes — the *results* are still identical).
    #[must_use]
    pub fn equivalence_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{}|{}",
            self.net.name(),
            self.topo,
            self.traffic.name(),
            self.load,
            self.threads,
            self.ff,
            self.seed,
            self.warmup,
            self.measure,
            self.drain,
            self.end_cycle,
            self.packets,
            self.flits,
            self.avg_latency.map(f64::to_bits),
            self.p50,
            self.p95,
            self.p99,
            self.saturated,
            self.horizon_doublings,
        )
    }
}

/// Sweep execution options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Concurrent whole-simulation jobs (see [`clamp_jobs`]).
    pub jobs: usize,
    /// Fork legs from a shared warmup checkpoint (false = re-warm
    /// every leg from scratch; the baseline the fork path is measured
    /// against).
    pub fork_warmup: bool,
    /// Adaptive horizon: when a leg comes back saturated, re-fork with
    /// a doubled measurement window (up to [`SweepOptions::max_doublings`])
    /// to distinguish true saturation from a too-short window.
    pub adaptive: bool,
    /// Cap on horizon doublings per leg.
    pub max_doublings: u32,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            fork_warmup: true,
            adaptive: true,
            max_doublings: 2,
        }
    }
}

/// Clamps a requested job count so `jobs × threads` never
/// oversubscribes the machine (warns on stderr when it clamps).
#[must_use]
pub fn clamp_jobs(requested: usize, threads: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let max_jobs = (cores / threads.max(1)).max(1);
    let jobs = requested.clamp(1, max_jobs);
    if jobs < requested {
        eprintln!(
            "sweep: clamping --jobs {requested} to {jobs} \
             ({cores} cores / {threads} threads per simulation)"
        );
    }
    jobs
}

/// Runs every leg of one group, sharing its warmup when
/// `opts.fork_warmup` is set.
#[must_use]
pub fn run_group(group: &SweepGroup, opts: &SweepOptions) -> Vec<SweepRow> {
    let scenario = group.scenario();
    let mut rows = Vec::with_capacity(group.ff_legs.len());
    let (ckpt, warmup_secs) = if opts.fork_warmup {
        let t0 = Instant::now();
        let ckpt = GroupCheckpoint::build(group, &scenario);
        (Some(ckpt), t0.elapsed().as_secs_f64())
    } else {
        (None, 0.0)
    };
    for &ff in &group.ff_legs {
        let t0 = Instant::now();
        let mut measure = group.run.measure;
        let mut doublings = 0;
        let run_leg = |measure: u64| match &ckpt {
            Some(c) => c.fork_run(ff, measure),
            None => run_scratch(group, &scenario, ff, measure),
        };
        let (mut report, mut info) = run_leg(measure);
        while opts.adaptive
            && doublings < opts.max_doublings
            && report.total_latency.count() == 0
            && report.flits_delivered > 0
        {
            doublings += 1;
            measure *= 2;
            (report, info) = run_leg(measure);
        }
        let wall = t0.elapsed().as_secs_f64();
        rows.push(SweepRow::new(
            group,
            ff,
            ckpt.is_some(),
            warmup_secs,
            wall,
            measure,
            doublings,
            &report,
            &info,
        ));
    }
    rows
}

/// Runs a whole matrix: sorts groups longest-expected-first, schedules
/// them across a work-stealing [`WorkerPool`] of `opts.jobs` lanes,
/// and returns the rows grouped per input group in scheduling order.
#[must_use]
pub fn run_sweep(mut groups: Vec<SweepGroup>, opts: &SweepOptions) -> Vec<SweepRow> {
    groups.sort_by(|a, b| b.expected_cost().total_cmp(&a.expected_cost()));
    if opts.jobs <= 1 {
        return groups.iter().flat_map(|g| run_group(g, opts)).collect();
    }
    // The mapping thread participates in the claim loop, so `jobs`-way
    // parallelism wants `jobs - 1` workers.
    let mut pool = WorkerPool::new(opts.jobs - 1);
    pool_map(&mut pool, groups, |g| run_group(&g, opts))
        .into_iter()
        .flatten()
        .collect()
}

/// The full default matrix: every network on mesh/torus/ring uniform
/// traffic at three loads, plus the hotspot pattern on the default
/// mesh — two fast-forward legs each. Warmup-heavy phases so the
/// shared-warmup fork pays even at `--jobs 1`.
#[must_use]
pub fn full_matrix(threads: usize, seed: u64) -> Vec<SweepGroup> {
    let run = RunConfig {
        warmup: 6_000,
        measure: 6_000,
        drain: 2_000,
    };
    let topos = [
        Topology::mesh(8, 8),
        Topology::torus(8, 8),
        Topology::ring(16),
    ];
    let loads = [0.05, 0.30, 0.60];
    let mut groups = Vec::new();
    for net in [Net::Loft, Net::Gsf, Net::Wormhole] {
        for topo in topos {
            for load in loads {
                groups.push(SweepGroup {
                    net,
                    topo,
                    traffic: TrafficKind::Uniform,
                    load,
                    threads,
                    run,
                    ff_legs: vec![true, false],
                    seed,
                });
            }
        }
        groups.push(SweepGroup {
            net,
            topo: Scenario::default_topology(),
            traffic: TrafficKind::Hotspot,
            load: 0.30,
            threads,
            run,
            ff_legs: vec![true, false],
            seed,
        });
    }
    groups
}

/// The CI smoke matrix: a 2×2 sub-matrix ({loft, wormhole} × {low,
/// high} load) on the default mesh with tiny phase windows.
#[must_use]
pub fn smoke_matrix(threads: usize, seed: u64) -> Vec<SweepGroup> {
    let run = RunConfig {
        warmup: 400,
        measure: 400,
        drain: 200,
    };
    let mut groups = Vec::new();
    for net in [Net::Loft, Net::Wormhole] {
        for load in [0.05, 0.60] {
            groups.push(SweepGroup {
                net,
                topo: Scenario::default_topology(),
                traffic: TrafficKind::Uniform,
                load,
                threads,
                run,
                ff_legs: vec![true, false],
                seed,
            });
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEED;

    fn tiny_group(net: Net, topo: Topology) -> SweepGroup {
        SweepGroup {
            net,
            topo,
            traffic: TrafficKind::Uniform,
            load: 0.10,
            threads: 1,
            run: RunConfig {
                warmup: 300,
                measure: 600,
                drain: 400,
            },
            ff_legs: vec![true, false],
            seed: SEED,
        }
    }

    /// The heart of the sweep's correctness claim: a forked leg must
    /// be bit-identical (modulo warmup skip accounting) to the same
    /// leg run from scratch, for every network on every topology.
    #[test]
    fn forked_rows_match_scratch_rows() {
        let topos = [
            Topology::mesh(4, 4),
            Topology::torus(4, 4),
            Topology::ring(8),
        ];
        for net in [Net::Loft, Net::Gsf, Net::Wormhole] {
            for topo in topos {
                let group = tiny_group(net, topo);
                let forked = run_group(&group, &SweepOptions::default());
                let scratch = run_group(
                    &group,
                    &SweepOptions {
                        fork_warmup: false,
                        ..SweepOptions::default()
                    },
                );
                assert_eq!(forked.len(), scratch.len());
                for (f, s) in forked.iter().zip(&scratch) {
                    assert!(f.forked_warmup && !s.forked_warmup);
                    assert_eq!(
                        f.equivalence_key(),
                        s.equivalence_key(),
                        "{} on {} (ff={}) drifted between forked and scratch",
                        net.name(),
                        topo_name(topo),
                        f.ff
                    );
                    assert!(f.flits > 0, "leg delivered nothing");
                }
            }
        }
    }

    /// Parallel scheduling must not change results or lose rows:
    /// jobs=2 produces the same row set as jobs=1 (order included —
    /// both follow the longest-expected-first schedule).
    #[test]
    fn parallel_sweep_matches_serial() {
        let groups: Vec<SweepGroup> = [Net::Loft, Net::Gsf, Net::Wormhole]
            .into_iter()
            .map(|net| tiny_group(net, Topology::mesh(4, 4)))
            .collect();
        let serial = run_sweep(groups.clone(), &SweepOptions::default());
        let parallel = run_sweep(
            groups,
            &SweepOptions {
                jobs: 2,
                ..SweepOptions::default()
            },
        );
        let keys = |rows: &[SweepRow]| {
            rows.iter()
                .map(SweepRow::equivalence_key)
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&serial), keys(&parallel));
    }

    /// Manual fork-cost diagnostic (run with `--ignored --nocapture`):
    /// splits a high-load leg into clone time vs resume time and
    /// compares against a straight run.
    #[test]
    #[ignore = "diagnostic: prints fork/resume wall-clock split"]
    fn fork_cost_diagnostic() {
        use std::time::Instant;
        for net in [Net::Gsf, Net::Loft, Net::Wormhole] {
            let group = SweepGroup {
                net,
                topo: Topology::torus(8, 8),
                traffic: TrafficKind::Uniform,
                load: 0.60,
                threads: 1,
                run: RunConfig {
                    warmup: 6_000,
                    measure: 6_000,
                    drain: 2_000,
                },
                ff_legs: vec![true],
                seed: SEED,
            };
            let scenario = group.scenario();
            let t = Instant::now();
            let ckpt = GroupCheckpoint::build(&group, &scenario);
            let warm = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let fork = ckpt.clone();
            let clone_secs = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let _ = match fork {
                GroupCheckpoint::Loft(c) => c.resume().2,
                GroupCheckpoint::Gsf(c) => c.resume().2,
                GroupCheckpoint::Wormhole(c) => c.resume().2,
            };
            let resume_secs = t.elapsed().as_secs_f64();
            drop(ckpt);
            let t = Instant::now();
            let _ = run_scratch(&group, &scenario, true, group.run.measure);
            let scratch_secs = t.elapsed().as_secs_f64();
            println!(
                "{:8} warmup {warm:.3}s clone {clone_secs:.3}s resume {resume_secs:.3}s \
                 scratch-full {scratch_secs:.3}s",
                net.name()
            );
        }
    }

    #[test]
    fn clamp_jobs_never_oversubscribes() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(clamp_jobs(1, 1), 1);
        assert!(clamp_jobs(1_000, 1) <= cores);
        assert!(clamp_jobs(1_000, 4).saturating_mul(4) <= cores.max(4));
        assert_eq!(clamp_jobs(0, 1), 1);
    }

    #[test]
    fn rows_render_versioned_json() {
        let group = tiny_group(Net::Wormhole, Topology::mesh(4, 4));
        let rows = run_group(&group, &SweepOptions::default());
        assert_eq!(rows.len(), 2);
        let json = rows[0].to_json(3);
        assert!(json.starts_with("{\"schema\": 1, "));
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("\"forked_warmup\": true"));
        assert!(json.ends_with("}"));
    }
}
