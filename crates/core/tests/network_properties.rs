//! End-to-end randomized tests of the LOFT network: every injected
//! packet is delivered exactly once to the right node, under random
//! workloads and configurations (cases drawn from the workspace's
//! deterministic RNG).

use loft::{LoftConfig, LoftNetwork};
use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::rng::Xoshiro256;
use noc_sim::{Network, Topology};

/// Conservation and addressing under random batches.
#[test]
fn every_packet_delivered_once_to_its_destination() {
    let mut rng = Xoshiro256::seed_from(0x10F7_0001);
    for _case in 0..48 {
        let spec = [0u32, 4, 8, 12][rng.next_below(4) as usize];
        let cfg = LoftConfig {
            topo: Topology::mesh(4, 4),
            frame_size: 64,
            nonspec_buffer: 64,
            ..LoftConfig::with_spec_buffer(spec)
        };
        // One flow per (src, dst) pair present in the batch; sequence
        // numbers continue across repeated pairs.
        let entries = 1 + rng.next_below(59) as usize;
        let mut flows: Vec<(u32, u32)> = Vec::new();
        let mut next_seq: Vec<u64> = Vec::new();
        let mut packets = Vec::new();
        for _ in 0..entries {
            let a = rng.next_below(16) as u32;
            let b = rng.next_below(16) as u32;
            let count = 1 + rng.next_below(29);
            if a == b {
                continue;
            }
            let fid = flows.iter().position(|&p| p == (a, b)).unwrap_or_else(|| {
                flows.push((a, b));
                next_seq.push(0);
                flows.len() - 1
            });
            for _ in 0..count {
                let seq = next_seq[fid];
                next_seq[fid] += 1;
                packets.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(fid as u32),
                        seq,
                    },
                    NodeId::new(a),
                    NodeId::new(b),
                    4,
                    0,
                ));
            }
        }
        if flows.is_empty() {
            continue;
        }
        let reservations = vec![4u32; flows.len()];
        let mut net = LoftNetwork::new(cfg, &reservations);
        let expected = packets.len();
        for p in packets {
            net.enqueue(p);
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 1_000_000, "network failed to drain");
        }
        assert_eq!(out.len(), expected);
        let mut seen = std::collections::HashSet::new();
        for p in &out {
            assert!(seen.insert(p.id), "packet {} delivered twice", p.id);
            assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
            let (_, dst) = flows[p.id.flow.index()];
            assert_eq!(p.dst, NodeId::new(dst));
        }
    }
}

/// A flow's packets are delivered in order (FRS preserves
/// quantum order along a fixed path).
#[test]
fn per_flow_delivery_is_in_order() {
    let mut rng = Xoshiro256::seed_from(0x10F7_0002);
    for _case in 0..48 {
        let count = 2 + rng.next_below(58);
        let src = rng.next_below(16) as u32;
        let dst = rng.next_below(16) as u32;
        if src == dst {
            continue;
        }
        let cfg = LoftConfig {
            topo: Topology::mesh(4, 4),
            frame_size: 64,
            nonspec_buffer: 64,
            ..LoftConfig::default()
        };
        let mut net = LoftNetwork::new(cfg, &[16]);
        for seq in 0..count {
            net.enqueue(Packet::new(
                PacketId {
                    flow: FlowId::new(0),
                    seq,
                },
                NodeId::new(src),
                NodeId::new(dst),
                4,
                0,
            ));
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 500_000);
        }
        let mut last_eject = 0;
        for seq in 0..count {
            let p = out.iter().find(|p| p.id.seq == seq).expect("delivered");
            let t = p.ejected_at.unwrap();
            assert!(t >= last_eject, "packet {seq} overtook its predecessor");
            last_eject = t;
        }
    }
}
