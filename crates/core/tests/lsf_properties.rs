//! Randomized invariant tests of the LSF link scheduler — chiefly
//! Theorem I of the paper: with a frame-sized buffer and
//! Condition (1), virtual credits never go negative, no matter how
//! adversarial the scheduling/return interleaving is.
//!
//! Cases are drawn from the workspace's deterministic RNG so the
//! suite needs no external crates and failures replay exactly.

use loft::lsf::{LinkScheduler, LsfParams, PendingQuantum};
use noc_sim::flit::FlowId;
use noc_sim::rng::Xoshiro256;

#[derive(Debug, Clone, Copy)]
enum Action {
    /// Schedule a quantum for flow `i % flows`.
    Schedule(u8),
    /// Return the credit of the oldest outstanding arrival, `extra`
    /// slots after its arrival.
    ReturnOldest { extra: u8 },
    /// Advance the current slot.
    Advance,
    /// Forward the earliest pending quantum (speculative completion).
    CompleteFirst,
    /// Local reset, if permitted.
    TryReset,
}

fn random_action(rng: &mut Xoshiro256) -> Action {
    match rng.next_below(5) {
        0 => Action::Schedule(rng.next_below(8) as u8),
        1 => Action::ReturnOldest {
            extra: rng.next_below(12) as u8,
        },
        2 => Action::Advance,
        3 => Action::CompleteFirst,
        _ => Action::TryReset,
    }
}

/// Theorem I under arbitrary interleavings, plus structural
/// invariants: booked slots are unique and inside the window.
#[test]
fn theorem1_and_structural_invariants() {
    let mut rng = Xoshiro256::seed_from(0x15F_0001);
    for _case in 0..64 {
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 3,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        // Keep the allocation feasible: ΣR ≤ F.
        let mut reservations: Vec<u32> = Vec::new();
        let flows = 1 + rng.next_below(5) as usize;
        let mut total = 0;
        for _ in 0..flows {
            let r = 1 + rng.next_below(5) as u32;
            if total + r > params.frame_quanta {
                break;
            }
            total += r;
            reservations.push(r);
        }
        if reservations.is_empty() {
            reservations.push(1);
        }
        let steps = 1 + rng.next_below(399) as usize;
        let mut s = LinkScheduler::new(params, &reservations);
        let mut outstanding: Vec<u64> = Vec::new();
        let mut qid = 0u64;
        for _ in 0..steps {
            match random_action(&mut rng) {
                Action::Schedule(i) => {
                    let flow = FlowId::new(i as u32 % reservations.len() as u32);
                    if let Some(slot) = s.schedule(
                        flow,
                        s.current_slot() + 1,
                        PendingQuantum {
                            flow,
                            qid,
                            in_port: 0,
                            res_idx: 0,
                        },
                    ) {
                        qid += 1;
                        assert!(slot > s.current_slot());
                        assert!(slot < s.current_slot() + params.window_quanta());
                        outstanding.push(slot);
                    }
                }
                Action::ReturnOldest { extra } => {
                    if !outstanding.is_empty() {
                        let arr = outstanding.remove(0);
                        s.return_credit(arr + 1 + extra as u64);
                    }
                }
                Action::Advance => s.advance_slot(),
                Action::CompleteFirst => {
                    if let Some((slot, _)) = s.first_pending() {
                        s.complete(slot);
                    }
                }
                Action::TryReset => {
                    if s.can_reset() && !s.is_fresh() {
                        // A reset wipes the outstanding bookkeeping;
                        // pending is empty so nothing is lost.
                        s.local_reset();
                        outstanding.clear();
                    }
                }
            }
            assert!(s.min_credit() >= 0, "Theorem I violated");
        }
    }
}

/// Per-frame quota: a single flow can never book more quanta in
/// one frame than its reservation allows (without resets).
#[test]
fn quota_respected_per_frame() {
    let mut rng = Xoshiro256::seed_from(0x15F_0002);
    for _case in 0..64 {
        let r = 1 + rng.next_below(7) as u32;
        let requests = 1 + rng.next_below(63) as usize;
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 2,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        let mut s = LinkScheduler::new(params, &[r]);
        let flow = FlowId::new(0);
        let mut per_frame = std::collections::HashMap::new();
        for qid in 0..requests as u64 {
            if let Some(slot) = s.schedule(
                flow,
                0,
                PendingQuantum {
                    flow,
                    qid,
                    in_port: 0,
                    res_idx: 0,
                },
            ) {
                *per_frame.entry(slot / 8).or_insert(0u32) += 1;
            }
        }
        for (&frame, &count) in &per_frame {
            assert!(count <= r, "frame {frame} got {count} quanta with R={r}");
        }
    }
}

/// The sink variant (ejection link) serializes at one quantum per
/// slot but never rejects for credits.
#[test]
fn sink_books_every_window_slot() {
    let mut rng = Xoshiro256::seed_from(0x15F_0003);
    for _case in 0..64 {
        let r = 8 + rng.next_below(56) as u32;
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 2,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: true,
        };
        let mut s = LinkScheduler::new(params, &[r]);
        let flow = FlowId::new(0);
        let mut slots = std::collections::HashSet::new();
        for qid in 0..64u64 {
            if let Some(slot) = s.schedule(
                flow,
                0,
                PendingQuantum {
                    flow,
                    qid,
                    in_port: 0,
                    res_idx: 0,
                },
            ) {
                assert!(slots.insert(slot), "slot {slot} double-booked");
            }
        }
        // It can never book more than the window minus the current
        // slot, and with r ≥ 8 it books at least one frame's worth.
        assert!(slots.len() >= (r.min(8) as usize));
    }
}
