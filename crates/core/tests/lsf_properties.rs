//! Property-based tests of the LSF link scheduler — chiefly
//! Theorem I of the paper: with a frame-sized buffer and
//! Condition (1), virtual credits never go negative, no matter how
//! adversarial the scheduling/return interleaving is.

use loft::lsf::{LinkScheduler, LsfParams, PendingQuantum};
use noc_sim::flit::FlowId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    /// Schedule a quantum for flow `i % flows`.
    Schedule(u8),
    /// Return the credit of the oldest outstanding arrival, `extra`
    /// slots after its arrival.
    ReturnOldest { extra: u8 },
    /// Advance the current slot.
    Advance,
    /// Forward the earliest pending quantum (speculative completion).
    CompleteFirst,
    /// Local reset, if permitted.
    TryReset,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..8).prop_map(Action::Schedule),
        (0u8..12).prop_map(|extra| Action::ReturnOldest { extra }),
        Just(Action::Advance),
        Just(Action::CompleteFirst),
        Just(Action::TryReset),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem I under arbitrary interleavings, plus structural
    /// invariants: booked slots are unique and inside the window.
    #[test]
    fn theorem1_and_structural_invariants(
        reservations in prop::collection::vec(1u32..6, 1..6),
        actions in prop::collection::vec(action_strategy(), 1..400),
    ) {
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 3,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        // Keep the allocation feasible: ΣR ≤ F.
        let total: u32 = reservations.iter().sum();
        prop_assume!(total <= params.frame_quanta);
        let mut s = LinkScheduler::new(params, &reservations);
        let mut outstanding: Vec<u64> = Vec::new();
        let mut qid = 0u64;
        for a in actions {
            match a {
                Action::Schedule(i) => {
                    let flow = FlowId::new(i as u32 % reservations.len() as u32);
                    if let Some(slot) = s.schedule(
                        flow,
                        s.current_slot() + 1,
                        PendingQuantum { flow, qid, in_port: 0 },
                    ) {
                        qid += 1;
                        prop_assert!(slot > s.current_slot());
                        prop_assert!(
                            slot < s.current_slot() + params.window_quanta()
                        );
                        outstanding.push(slot);
                    }
                }
                Action::ReturnOldest { extra } => {
                    if !outstanding.is_empty() {
                        let arr = outstanding.remove(0);
                        s.return_credit(arr + 1 + extra as u64);
                    }
                }
                Action::Advance => s.advance_slot(),
                Action::CompleteFirst => {
                    if let Some((slot, _)) = s.first_pending() {
                        s.complete(slot);
                    }
                }
                Action::TryReset => {
                    if s.can_reset() && !s.is_fresh() {
                        // A reset wipes the outstanding bookkeeping;
                        // pending is empty so nothing is lost.
                        s.local_reset();
                        outstanding.clear();
                    }
                }
            }
            prop_assert!(s.min_credit() >= 0, "Theorem I violated");
        }
    }

    /// Per-frame quota: a single flow can never book more quanta in
    /// one frame than its reservation allows (without resets).
    #[test]
    fn quota_respected_per_frame(
        r in 1u32..8,
        requests in 1usize..64,
    ) {
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 2,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        let mut s = LinkScheduler::new(params, &[r]);
        let flow = FlowId::new(0);
        let mut per_frame = std::collections::HashMap::new();
        for qid in 0..requests as u64 {
            if let Some(slot) = s.schedule(
                flow,
                0,
                PendingQuantum { flow, qid, in_port: 0 },
            ) {
                *per_frame.entry(slot / 8).or_insert(0u32) += 1;
            }
        }
        for (&frame, &count) in &per_frame {
            prop_assert!(
                count <= r,
                "frame {frame} got {count} quanta with R={r}"
            );
        }
    }

    /// The sink variant (ejection link) serializes at one quantum per
    /// slot but never rejects for credits.
    #[test]
    fn sink_books_every_window_slot(r in 8u32..64) {
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 2,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: true,
        };
        let mut s = LinkScheduler::new(params, &[r]);
        let flow = FlowId::new(0);
        let mut slots = std::collections::HashSet::new();
        for qid in 0..64u64 {
            if let Some(slot) = s.schedule(
                flow,
                0,
                PendingQuantum { flow, qid, in_port: 0 },
            ) {
                prop_assert!(slots.insert(slot), "slot {slot} double-booked");
            }
        }
        // It can never book more than the window minus the current
        // slot, and with r ≥ 8 it books at least one frame's worth.
        prop_assert!(slots.len() >= (r.min(8) as usize));
    }
}
