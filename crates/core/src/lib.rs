//! # loft — A High Performance Network-on-Chip Providing QoS Support
//!
//! A faithful reimplementation of **LOFT** (Ouyang & Xie, MICRO 2010):
//! a network-on-chip architecture combining
//!
//! * **LSF — locally-synchronized frames** ([`lsf`]): frame-based
//!   bandwidth scheduling performed independently at every output
//!   port, giving each flow a guaranteed share of every link it
//!   crosses without any global coordination, and
//! * **FRS — flit-reservation flow control** ([`network`]): a
//!   look-ahead flit races ahead of each 2-flit data quantum on a
//!   dedicated look-ahead network and pre-books link slots and buffer
//!   space in per-port reservation tables, eliminating credit
//!   turn-around from the data path.
//!
//! On top of the base mechanism the crate implements both Section 4.3
//! optimizations: **speculative flit switching** (data quanta forward
//! early over idle links, using a small per-port speculative buffer
//! to protect scheduled traffic) and **local status reset** (idle
//! links recycle their whole frame window instantly, letting lightly
//! loaded regions run at full speed regardless of congestion
//! elsewhere).
//!
//! # Example
//!
//! ```
//! use noc_sim::{Simulation, RunConfig};
//! use noc_traffic::Scenario;
//! use loft::{LoftConfig, LoftNetwork};
//!
//! // Hotspot traffic with equal QoS allocations (Figure 10a).
//! let scenario = Scenario::hotspot(0.02);
//! let cfg = LoftConfig::default();
//! let reservations = scenario.reservations(cfg.frame_size)?;
//! let network = LoftNetwork::new(cfg, &reservations);
//! let report = Simulation::new(network, scenario.workload(1), RunConfig::short()).run();
//! assert!(report.flits_delivered > 0);
//! # Ok::<(), noc_sim::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod lsf;
pub mod network;
mod port;

pub use config::LoftConfig;
pub use network::LoftNetwork;
