//! The LOFT network: look-ahead plane + data plane.
//!
//! # Structure
//!
//! Every output link in the system — the per-node *injection* link
//! (NIC → router), every router-to-router link, and the *ejection*
//! link (router → PE) — owns one [`LinkScheduler`] (the LSF machinery
//! of [`crate::lsf`]). Two physical networks share those schedulers:
//!
//! * the **look-ahead network** moves one-word look-ahead flits, one
//!   per data quantum. A look-ahead flit visits the scheduler of each
//!   link on its path in order, books a departure slot
//!   (Algorithms 1–2), writes the expectation into the downstream
//!   input reservation table, and returns a virtual credit to the
//!   upstream link. A look-ahead flit that cannot book (its flow's
//!   window is exhausted) stalls in the router's output queue,
//!   back-pressuring the look-ahead network — this is how LSF
//!   throttles flows to their reservations.
//! * the **data network** moves 2-flit quanta. At every slot each
//!   output link forwards the *emergent* quantum (the one booked for
//!   this slot) if present; otherwise, with speculative switching
//!   enabled, it forwards the arrived quantum with the earliest
//!   booked slot. A quantum that is the first booking in the table
//!   travels into the downstream *non-speculative* buffer (space
//!   guaranteed by the virtual-credit discipline, Theorem I); any
//!   other quantum goes to the small *speculative* buffer and is
//!   denied the link when that buffer is full — out-of-order flits
//!   can therefore never block scheduled traffic (Section 4.3.1).
//!
//! When a link has no pending bookings and the downstream
//! non-speculative buffer is empty, the link performs a **local
//! status reset** (Section 4.3.2): every credit and reservation
//! returns to its power-up value, so idle regions of the network
//! recycle frames at full speed regardless of congestion elsewhere.
//!
//! # Fabric layering
//!
//! LOFT is a flit-reservation router, not a VC router, so it does not
//! implement [`noc_sim::fabric::RouterPolicy`]; instead it builds
//! directly on the fabric substrate: [`DelayedWires`] carry both
//! planes' in-flight traffic, [`LookaheadQueues`] is the look-ahead
//! channel (per-flow fair bypass at every output port),
//! [`EjectTracker`] owns in-flight packets and ejection accounting,
//! and [`LinkMap`] resolves the link index space on any topology.
//!
//! # Timing model
//!
//! One slot = `flits_per_quantum` cycles. Data hops cost
//! `hop_latency` cycles (3-stage router + link folded together);
//! look-ahead hops cost `la_hop_latency` cycles. Virtual-credit
//! returns are applied the cycle they are produced (the one-cycle
//! wire is folded into the scheduling pipeline).
//!
//! # Parallel stepping
//!
//! With [`LoftConfig::threads`] > 1 the node range is partitioned
//! into contiguous shards (see `noc_sim::par`) and the phases of a
//! cycle that only touch node-local state run on all shards
//! concurrently: slot advancement of the link schedulers, data
//! quantum delivery, NIC data injection (with `injected_at` stamps
//! deferred to the barrier), and look-ahead delivery into the channel
//! queues. The phases that read or write *other* routers' state in
//! the same cycle — data movement (downstream buffer credits),
//! look-ahead scheduling (upstream virtual-credit returns), local
//! status resets — stay serial, iterating shards in ascending order
//! so the visit order is bit-identical to the single-threaded engine.
//! LOFT therefore parallelizes only part of each cycle; the VC-based
//! networks (`VcFabric`) parallelize the whole datapath.

use std::collections::VecDeque;

use noc_sim::fabric::{
    debug_assert_delivered_once, DelayedWires, EjectTracker, LinkMap, LookaheadQueues, LOCAL, PORTS,
};
use noc_sim::flit::{FlowId, NodeId, Packet};
use noc_sim::par::{partition, shard_map, SendPtr, ShardRange, WorkerPool};
use noc_sim::routing::Direction;
use noc_sim::slab::PacketRef;
use noc_sim::telemetry::{BufKind, NoopProbe, Probe};
use noc_sim::{ActiveSet, Network};

use crate::config::LoftConfig;
use crate::lsf::{LinkScheduler, LsfParams, PendingQuantum};
use crate::port::{DataPort, QKey, ResIdx};

#[derive(Debug, Clone, Copy)]
struct LaFlit {
    flow: FlowId,
    qid: u64,
    dst: NodeId,
    /// Departure slot booked at the previous link.
    dep_slot: u64,
    /// Input port at the router currently holding the flit.
    in_port: u8,
    /// Slot of the quantum's entry in that port's reservation store,
    /// assigned when the flit arrives and writes its expectation
    /// (stale while the flit is in flight to the next router).
    res_idx: u16,
}

/// A data quantum in flight on a link (availability time lives in the
/// wire's due field).
#[derive(Debug, Clone, Copy)]
struct DataQuantum {
    flow: FlowId,
    qid: u64,
    /// Destination buffer at the receiver: speculative or not.
    spec: bool,
    /// Handle of the owning packet.
    pref: PacketRef,
}

#[derive(Debug, Clone)]
struct SrcQuantum {
    qid: u64,
    dst: NodeId,
    pref: PacketRef,
}

/// Per-node source NIC.
///
/// The PE→router link has no contention (a single PE feeds it), so —
/// matching the paper's server model of Figure 2, where the
/// scheduling points are router output links — it carries no LSF
/// scheduler. The NIC launches one look-ahead flit per cycle and
/// streams the corresponding data quanta into the router's local
/// input port, one per slot, as buffer space permits.
#[derive(Debug)]
struct SourceNic {
    /// Quanta awaiting look-ahead launch, per flow sourced here,
    /// parallel to `rr_flows` — the launch scan indexes both by
    /// round-robin position, so no keyed lookup is needed.
    flow_q: Vec<VecDeque<SrcQuantum>>,
    /// Total quanta across all of `flow_q` (the launch worklist's
    /// activity predicate).
    queued: usize,
    /// Round-robin over flows for look-ahead launch; `rr_flows[i]`
    /// owns `flow_q[i]`.
    rr_flows: Vec<u32>,
    rr: usize,
    /// Quanta whose look-ahead has launched, awaiting their data
    /// transfer into the router (FIFO, one per slot), with the owning
    /// packet's handle.
    staged: VecDeque<(QKey, PacketRef)>,
}

impl Clone for SourceNic {
    /// Capacity-preserving (see [`noc_sim::checkpoint::clone_deque`]):
    /// per-flow queues and the staging FIFO reach their high-water
    /// capacity during warmup, and forked runs must inherit it.
    fn clone(&self) -> Self {
        SourceNic {
            flow_q: self
                .flow_q
                .iter()
                .map(noc_sim::checkpoint::clone_deque)
                .collect(),
            queued: self.queued,
            rr_flows: self.rr_flows.clone(),
            rr: self.rr,
            staged: noc_sim::checkpoint::clone_deque(&self.staged),
        }
    }
}

impl SourceNic {
    fn new() -> Self {
        SourceNic {
            flow_q: Vec::new(),
            queued: 0,
            rr_flows: Vec::new(),
            rr: 0,
            staged: VecDeque::new(),
        }
    }
}

/// One shard's slice of the in-flight state: the wires, channel
/// queues, and worklists that the parallel phases touch for nodes the
/// shard owns.
///
/// Each structure spans the *global* index space but only the shard's
/// own range is ever populated — serial phases route pushes to the
/// owning shard (`shard_of`), so the parallel phases drain without
/// any cross-shard access. Iterating shards in ascending order drains
/// the same global ascending index sequence as a single structure
/// would (shard ranges are contiguous), which is what keeps every
/// arbitration decision bit-identical to the single-threaded engine.
#[derive(Debug, Clone)]
struct LoftShard<Pr: Probe> {
    /// This shard's telemetry probe (a [`Probe::fork`] of the main
    /// probe); records only the parallel-phase events of this shard's
    /// node range, and is absorbed back in ascending shard order.
    probe: Pr,
    /// Data quanta in flight to this shard's input ports.
    data_wires: DelayedWires<DataQuantum>,
    /// Look-ahead flits in flight to this shard's input ports.
    la_wires: DelayedWires<LaFlit>,
    /// The look-ahead channel queues of this shard's output ports.
    /// Per-instance arrival stamps only order entries *within* one
    /// queue, and all pushes to a queue come from its node's shard in
    /// preserved relative order, so per-shard counters are exact.
    la_queues: LookaheadQueues<LaFlit>,
    /// Nodes of this shard with `node_data_work > 0`.
    data_node_work: ActiveSet,
    /// Nodes of this shard with staged quanta awaiting injection.
    stage_work: ActiveSet,
    /// Packets whose first data quantum injected this slot; their
    /// `injected_at` stamp is applied serially at the barrier (the
    /// tracker is shared read-only during the parallel phase).
    stamps: Vec<PacketRef>,
}

impl<Pr: Probe> LoftShard<Pr> {
    fn new(n: usize, cfg: &LoftConfig, num_flows: usize, probe: Pr) -> Self {
        LoftShard {
            probe,
            data_wires: DelayedWires::with_capacity(n * PORTS, cfg.dep_offset() as usize + 1),
            la_wires: DelayedWires::with_capacity(n * PORTS, cfg.la_hop_latency as usize + 1),
            la_queues: LookaheadQueues::new(n * PORTS, num_flows),
            data_node_work: ActiveSet::new(n),
            stage_work: ActiveSet::new(n),
            stamps: Vec::with_capacity(n),
        }
    }
}

/// Which parallel phase [`LoftNetwork::run_phase`] dispatches.
#[derive(Debug, Clone, Copy)]
enum LoftPhase {
    /// Slot-boundary data-plane work: advance every link scheduler
    /// (for `slot > 0`), deliver arrived data quanta, inject staged
    /// quanta from the NICs.
    Data { slot: u64 },
    /// Deliver arriving look-ahead flits into the channel queues.
    Lookahead { now: u64 },
}

/// One shard's working view for a parallel phase: the shard's slices
/// of the global per-node/per-link arrays plus its [`LoftShard`].
/// Node-indexed slices are indexed `node - range.lo`; link-indexed
/// slices `lidx - range.lo * PORTS`.
#[derive(Debug)]
struct LoftShardCtx<'a, Pr: Probe> {
    range: ShardRange,
    /// This shard's link schedulers (link range).
    link_sched: &'a mut [LinkScheduler],
    /// This shard's data-plane input ports (link range).
    data_ports: &'a mut [DataPort],
    /// This shard's source NICs (node range).
    nics: &'a mut [SourceNic],
    /// This shard's per-node data-work counters (node range).
    node_data_work: &'a mut [u32],
    aux: &'a mut LoftShard<Pr>,
    /// Shared read-only during parallel phases; only the serial
    /// barrier mutates packets (deferred `injected_at` stamps).
    tracker: &'a EjectTracker,
    cfg: LoftConfig,
    link: LinkMap,
}

impl<Pr: Probe> LoftShardCtx<'_, Pr> {
    fn run(&mut self, phase: LoftPhase) {
        match phase {
            LoftPhase::Data { slot } => self.data_phase(slot),
            LoftPhase::Lookahead { now } => self.la_deliver(now),
        }
    }

    /// The shard-local slice of the slot-boundary data-plane work:
    /// advance the link schedulers, then deliver arrived quanta
    /// ([`LoftNetwork`]'s former `data_deliver`), then stream staged
    /// quanta into the routers (former `inject_data`). None of these
    /// read another shard's state, so running them shard-interleaved
    /// is indistinguishable from the serial all-links-then-all-nodes
    /// order.
    fn data_phase(&mut self, slot: u64) {
        if slot > 0 {
            for s in self.link_sched.iter_mut() {
                s.advance_slot();
            }
        }
        let LoftShardCtx {
            range,
            data_ports,
            nics,
            node_data_work,
            aux,
            tracker,
            cfg,
            ..
        } = self;
        let range = *range;
        let base = range.lo * PORTS;
        let LoftShard {
            probe,
            data_wires,
            data_node_work,
            stage_work,
            stamps,
            ..
        } = &mut **aux;
        data_wires.drain_due(slot, |widx, w| {
            let key = (w.flow.index() as u32, w.qid);
            data_ports[widx - base].record_arrival(key, w.spec, w.pref);
            node_data_work[widx / PORTS - range.lo] += 1;
            data_node_work.insert(widx / PORTS);
        });
        let mut cursor = range.lo;
        while let Some(node) = stage_work.first_from(cursor) {
            cursor = node + 1;
            let pidx = node * PORTS + LOCAL - base;
            if data_ports[pidx].nonspec_free == 0 {
                probe.on_nic_stall(node);
                continue;
            }
            let nic = &mut nics[node - range.lo];
            let (key, pref) = *nic.staged.front().expect("stage_work implies staged");
            nic.staged.pop_front();
            if nic.staged.is_empty() {
                stage_work.remove(node);
            }
            data_ports[pidx].nonspec_free -= 1;
            if tracker.packet(pref).injected_at.is_none() {
                stamps.push(pref);
            }
            data_wires.push(
                node * PORTS + LOCAL,
                slot + cfg.dep_offset(),
                DataQuantum {
                    flow: FlowId::new(key.0),
                    qid: key.1,
                    spec: false,
                    pref,
                },
            );
        }
    }

    /// Delivers arriving look-ahead flits into the look-ahead channel
    /// queues, writing the input reservation tables (expectations).
    ///
    /// The channel queues are per-flow fair (see
    /// `LoftNetwork::la_schedule`), so delivery is not
    /// capacity-limited: the per-flow look-ahead window
    /// (`la_flow_window`) already bounds how many flits any one flow
    /// can pile up here. Every write lands at the receiving node, so
    /// the pass is shard-local.
    fn la_deliver(&mut self, now: u64) {
        let LoftShardCtx {
            range,
            data_ports,
            aux,
            link,
            ..
        } = self;
        let base = range.lo * PORTS;
        let LoftShard {
            la_wires,
            la_queues,
            ..
        } = &mut **aux;
        la_wires.drain_due(now, |widx, la| {
            let (node, in_port) = (widx / PORTS, widx % PORTS);
            let out_port = link.route(node, la.dst);
            let res_idx =
                data_ports[widx - base].la_arrive((la.flow.index() as u32, la.qid), out_port as u8);
            la_queues.push(
                node * PORTS + out_port,
                la.flow.index(),
                LaFlit {
                    in_port: in_port as u8,
                    res_idx,
                    ..la
                },
            );
        });
    }
}

/// The LOFT network (LSF + FRS). See the crate and module docs.
///
/// Generic over a telemetry [`Probe`]; the default [`NoopProbe`]
/// compiles all instrumentation away (see `noc_sim::telemetry`).
#[derive(Debug, Clone)]
pub struct LoftNetwork<Pr: Probe = NoopProbe> {
    cfg: LoftConfig,
    /// The main telemetry probe: receives all serial-phase events
    /// (scheduling, data movement, resets, packet lifecycle) plus the
    /// absorbed per-shard forks on [`LoftNetwork::into_probe`].
    probe: Pr,
    cycle: u64,
    link: LinkMap,
    /// Router link schedulers, index `node * 5 + port`.
    link_sched: Vec<LinkScheduler>,
    /// Data-plane input ports, index `node * 5 + port`.
    data_ports: Vec<DataPort>,
    /// Round-robin pointers for speculative output arbitration.
    rr_spec: Vec<usize>,
    nics: Vec<SourceNic>,
    /// In-flight packets (slab-owned) + ejection progress. Quanta
    /// carry their packet's [`PacketRef`] through the data plane, so
    /// ejection accounting needs no side map.
    tracker: EjectTracker,
    /// Look-ahead flits currently in the look-ahead plane, per flow
    /// (capped by `la_flow_window`).
    la_outstanding: Vec<u32>,
    /// Quanta forwarded per link (diagnostics), index `node*5+port`.
    forwarded: Vec<u64>,
    /// Total local status resets across all links (diagnostics).
    total_resets: u64,
    // ---- active-set worklists (see `noc_sim::worklist`) ----------
    /// Per node: pending bookings on its output links plus arrived
    /// quanta in its input buffers (the data-plane work predicate).
    node_data_work: Vec<u32>,
    /// Nodes with queued source quanta awaiting look-ahead launch.
    launch_work: ActiveSet,
    /// Links whose scheduler is not in its power-up state
    /// (`!is_fresh()`): the only candidates for a local status reset.
    stale_links: ActiveSet,
    /// Links to re-examine for a local status reset: a reset becomes
    /// possible only when a link's last pending quantum forwards or
    /// its downstream non-speculative buffer drains back to capacity,
    /// so only those events queue a check — idle and saturated links
    /// alike cost nothing per cycle.
    reset_check: ActiveSet,
    // ---- sharded parallel stepping (see the module docs) ----------
    /// Contiguous node ranges, one per shard.
    ranges: Vec<ShardRange>,
    /// Node index → owning shard index.
    shard_of: Vec<u32>,
    /// Per-shard in-flight state and worklists.
    shards: Vec<LoftShard<Pr>>,
    /// Persistent worker pool; present iff more than one shard.
    pool: Option<WorkerPool>,
}

impl LoftNetwork {
    /// Builds the network for flows with the given per-frame
    /// reservations in **flits** (`R_ij`, usually from
    /// [`noc_traffic::Scenario::reservations`] with
    /// [`LoftConfig::frame_size`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// ([`LoftConfig::validate`]) or any reservation is zero.
    pub fn new(cfg: LoftConfig, reservations_flits: &[u32]) -> Self {
        Self::with_probe(cfg, reservations_flits, NoopProbe)
    }
}

impl<Pr: Probe> LoftNetwork<Pr> {
    /// Like [`LoftNetwork::new`] with an attached telemetry probe;
    /// retrieve it after the run with [`LoftNetwork::into_probe`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// ([`LoftConfig::validate`]) or any reservation is zero.
    pub fn with_probe(cfg: LoftConfig, reservations_flits: &[u32], probe: Pr) -> Self {
        cfg.validate();
        assert!(
            reservations_flits.iter().all(|&r| r > 0),
            "reservations must be positive"
        );
        let n = cfg.topo.num_nodes();
        let params = LsfParams {
            frame_quanta: cfg.frame_quanta(),
            frame_window: cfg.frame_window,
            flits_per_quantum: cfg.flits_per_quantum,
            buffer_quanta: cfg.nonspec_quanta(),
            sink: false,
        };
        let link_sched = (0..n * PORTS)
            .map(|i| {
                let p = LsfParams {
                    sink: i % PORTS == LOCAL,
                    ..params
                };
                LinkScheduler::new(p, reservations_flits)
            })
            .collect();
        // Reservation entries live from look-ahead arrival to data
        // forward: at most the upstream link's in-window bookings,
        // quanta in flight on the wire, buffered quanta, and (for the
        // local port) the staged backlog — plus slack. The store
        // grows if a configuration escapes the bound.
        let res_cap = (params.window_quanta()
            + cfg.dep_offset()
            + 1
            + cfg.nonspec_quanta() as u64
            + cfg.spec_quanta() as u64
            + cfg.la_flow_window as u64) as usize;
        let ranges = partition(n, cfg.threads);
        let shard_of = shard_map(&ranges);
        let k = ranges.len();
        // Each shard owns the in-flight state for its node range
        // (wires pre-sized to the traversal delay: one quantum resp.
        // look-ahead flit enters a link per slot resp. cycle).
        let shards = (0..k)
            .map(|_| LoftShard::new(n, &cfg, reservations_flits.len(), probe.fork()))
            .collect();
        LoftNetwork {
            probe,
            link: LinkMap::new(cfg.topo, cfg.routing),
            data_ports: (0..n * PORTS)
                .map(|_| {
                    DataPort::new(
                        cfg.nonspec_quanta() as i64,
                        cfg.spec_quanta() as i64,
                        res_cap,
                    )
                })
                .collect(),
            rr_spec: vec![0; n * PORTS],
            nics: (0..n).map(|_| SourceNic::new()).collect(),
            tracker: EjectTracker::new(),
            la_outstanding: vec![0; reservations_flits.len()],
            forwarded: vec![0; n * PORTS],
            total_resets: 0,
            node_data_work: vec![0; n],
            launch_work: ActiveSet::new(n),
            stale_links: ActiveSet::new(n * PORTS),
            reset_check: ActiveSet::new(n * PORTS),
            pool: (k > 1).then(|| WorkerPool::new(k - 1)),
            ranges,
            shard_of,
            shards,
            link_sched,
            cycle: 0,
            cfg,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &LoftConfig {
        &self.cfg
    }

    /// Consumes the network, merging every shard's probe fork into
    /// the main probe (in ascending shard order, keeping the result
    /// shard-count invariant) and returning it.
    pub fn into_probe(self) -> Pr {
        let mut probe = self.probe;
        for shard in self.shards {
            probe.absorb(shard.probe);
        }
        probe
    }

    /// Total local status resets performed so far, network-wide.
    pub fn total_resets(&self) -> u64 {
        self.total_resets
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.forwarded[node.index() * PORTS + dir.index()] * self.cfg.flits_per_quantum as u64
    }

    /// One-line diagnostic snapshot of a node's injection side (for
    /// debugging and tests).
    pub fn debug_injection(&self, node: usize) -> String {
        let nic = &self.nics[node];
        let queued: usize = nic.flow_q.iter().map(VecDeque::len).sum();
        let ridx = node * PORTS + LOCAL;
        format!(
            "inj n{node}: queued={} staged={} local_nonspec_free={} outstanding={:?}",
            queued,
            nic.staged.len(),
            self.data_ports[ridx].nonspec_free,
            nic.rr_flows
                .iter()
                .map(|&f| self.la_outstanding[f as usize])
                .collect::<Vec<_>>()
        )
    }

    /// One-line diagnostic snapshot of a router output link (for
    /// debugging and tests): pending bookings, look-ahead queue
    /// length, reset count, and the downstream buffer occupancy.
    pub fn debug_link(&self, node: usize, port: usize) -> String {
        let lidx = node * PORTS + port;
        let sched = &self.link_sched[lidx];
        let downstream = if port == LOCAL {
            "PE".to_string()
        } else {
            match self.link.try_downstream(node, port) {
                Some((next, in_port)) => {
                    let p = &self.data_ports[next * PORTS + in_port];
                    format!(
                        "nonspec_free={}/{} spec_free={}/{}",
                        p.nonspec_free,
                        self.cfg.nonspec_quanta(),
                        p.spec_free,
                        self.cfg.spec_quanta()
                    )
                }
                None => "edge".to_string(),
            }
        };
        format!(
            "link n{node}.{port}: pending={} la_queue={} resets={} fwd={} head={} {}",
            sched.pending_len(),
            self.shards[self.shard_of[node] as usize]
                .la_queues
                .raw_len(lidx),
            sched.resets(),
            self.forwarded[lidx],
            sched.head_frame(),
            downstream
        )
    }

    fn quanta_per_packet(&self, len_flits: u16) -> u64 {
        (len_flits as u64).div_ceil(self.cfg.flits_per_quantum as u64)
    }

    // ---------------- look-ahead plane ------------------------------

    /// Launches at most one look-ahead flit per node per cycle (the
    /// look-ahead injection link is one flit wide), round-robin over
    /// the node's flows. The flit's first booking happens at the
    /// first router output port; the data quantum is staged to follow
    /// it into the router's local input buffer.
    fn la_launch(&mut self, now: u64) {
        let la_hop = self.cfg.la_hop_latency;
        let q = self.cfg.flits_per_quantum as u64;
        let mut cursor = 0;
        while let Some(node) = self.launch_work.first_from(cursor) {
            cursor = node + 1;
            if self.nics[node].staged.len() >= self.cfg.la_flow_window as usize {
                continue; // data staging backlog: hold the look-aheads
            }
            let len = self.nics[node].rr_flows.len();
            for k in 0..len {
                let fi = (self.nics[node].rr + k) % len;
                let fid = self.nics[node].rr_flows[fi];
                if self.la_outstanding[fid as usize] >= self.cfg.la_flow_window {
                    continue; // the flow's look-ahead window is full
                }
                let nic = &mut self.nics[node];
                let Some(SrcQuantum { qid, dst, pref }) = nic.flow_q[fi].pop_front() else {
                    continue;
                };
                nic.queued -= 1;
                nic.rr = (nic.rr + k + 1) % len;
                // The data quantum will leave the NIC one slot per
                // staged predecessor from now; the look-ahead carries
                // that planned slot as its upstream departure time.
                let plan = now / q + 1 + nic.staged.len() as u64;
                nic.staged.push_back(((fid, qid), pref));
                if self.nics[node].queued == 0 {
                    self.launch_work.remove(node);
                }
                self.la_outstanding[fid as usize] += 1;
                let shard = &mut self.shards[self.shard_of[node] as usize];
                shard.stage_work.insert(node);
                shard.la_wires.push(
                    node * PORTS + LOCAL,
                    now + la_hop,
                    LaFlit {
                        flow: FlowId::new(fid),
                        qid,
                        dst,
                        dep_slot: plan,
                        in_port: LOCAL as u8,
                        // Assigned on arrival at the local port.
                        res_idx: 0,
                    },
                );
                break;
            }
        }
    }

    /// Runs output scheduling on every look-ahead channel queue: at
    /// most one look-ahead flit per port per cycle books a slot and
    /// moves on. A flit whose flow has exhausted its window does not
    /// block the queue — later flits of *other* flows may bypass it
    /// (the virtual channels of the paper's look-ahead router), while
    /// per-flow order is preserved; [`LookaheadQueues`] implements
    /// that fair-bypass scan.
    ///
    /// Serial: a booking returns a virtual credit to the *upstream*
    /// link scheduler in the same cycle, which may live in another
    /// shard. Iterating shards in ascending order visits queues in
    /// the same global ascending order as a single instance.
    fn la_schedule(&mut self, now: u64) {
        let la_hop = self.cfg.la_hop_latency;
        let dep_off = self.cfg.dep_offset();
        for sh in 0..self.shards.len() {
            let mut cursor = self.ranges[sh].lo * PORTS;
            while let Some(qidx) = self.shards[sh].la_queues.first_from(cursor) {
                cursor = qidx + 1;
                let (node, out_port) = (qidx / PORTS, qidx % PORTS);
                let dirty = self.link_sched[qidx].take_dirty();
                if self.shards[sh].la_queues.is_blocked(qidx) && !dirty {
                    self.probe.on_sched_deny(qidx);
                    continue;
                }
                let booked = {
                    let Self {
                        shards, link_sched, ..
                    } = self;
                    shards[sh].la_queues.book_first(qidx, |la| {
                        link_sched[qidx].schedule(
                            la.flow,
                            la.dep_slot + dep_off,
                            PendingQuantum {
                                flow: la.flow,
                                qid: la.qid,
                                in_port: la.in_port,
                                res_idx: la.res_idx,
                            },
                        )
                    })
                };
                let Some((la, slot)) = booked else {
                    self.probe.on_sched_deny(qidx);
                    continue;
                };
                self.probe.on_sched_book(qidx);
                // The booking un-freshens the scheduler and adds a
                // pending quantum: feed the reset watchlist and the
                // data-plane worklist.
                self.stale_links.insert(qidx);
                self.node_data_work[node] += 1;
                self.shards[sh].data_node_work.insert(node);
                let key = (la.flow.index() as u32, la.qid);
                // Input reservation table: record the booked slot.
                let pidx = node * PORTS + la.in_port as usize;
                self.data_ports[pidx].record_booking(la.res_idx, key, slot);
                // Return the virtual credit upstream: the upstream
                // link now knows when its consumed buffer frees. The
                // local input port is fed by the NIC, which uses
                // actual-space flow control instead of a scheduler.
                if la.in_port as usize != LOCAL {
                    let (up, up_port) = self.link.upstream(node, la.in_port as usize);
                    self.link_sched[up * PORTS + up_port].return_credit(slot);
                }
                // Ejection booked: the look-ahead flit is consumed
                // and the flow's look-ahead window slot frees up.
                if out_port == LOCAL {
                    self.la_outstanding[la.flow.index()] -= 1;
                    continue;
                }
                let (next, in_port) = self.link.downstream(node, out_port);
                self.shards[self.shard_of[next] as usize].la_wires.push(
                    next * PORTS + in_port,
                    now + la_hop,
                    LaFlit {
                        dep_slot: slot,
                        ..la
                    },
                );
            }
        }
    }

    // ---------------- data plane ------------------------------------

    /// Runs one parallel phase on every shard: on the pool when one
    /// exists (more than one shard), inline otherwise. Either way the
    /// per-shard work is identical — the serial path is the parallel
    /// path with one shard per iteration.
    fn run_phase(&mut self, phase: LoftPhase) {
        if self.pool.is_some() {
            self.run_phase_parallel(phase);
        } else {
            self.run_phase_serial(phase);
        }
    }

    fn run_phase_serial(&mut self, phase: LoftPhase) {
        let Self {
            shards,
            ranges,
            link_sched,
            data_ports,
            nics,
            node_data_work,
            tracker,
            cfg,
            link,
            ..
        } = self;
        for (s, aux) in shards.iter_mut().enumerate() {
            let range = ranges[s];
            let mut ctx = LoftShardCtx {
                range,
                link_sched: &mut link_sched[range.lo * PORTS..range.hi * PORTS],
                data_ports: &mut data_ports[range.lo * PORTS..range.hi * PORTS],
                nics: &mut nics[range.lo..range.hi],
                node_data_work: &mut node_data_work[range.lo..range.hi],
                aux,
                tracker,
                cfg: *cfg,
                link: *link,
            };
            ctx.run(phase);
        }
    }

    fn run_phase_parallel(&mut self, phase: LoftPhase) {
        let link_sched = SendPtr::new(self.link_sched.as_mut_ptr());
        let data_ports = SendPtr::new(self.data_ports.as_mut_ptr());
        let nics = SendPtr::new(self.nics.as_mut_ptr());
        let node_data_work = SendPtr::new(self.node_data_work.as_mut_ptr());
        let shards = SendPtr::new(self.shards.as_mut_ptr());
        let ranges: &[ShardRange] = &self.ranges;
        let tracker: &EjectTracker = &self.tracker;
        let cfg = self.cfg;
        let link = self.link;
        let k = ranges.len();
        let pool = self.pool.as_mut().expect("parallel phase without a pool");
        pool.run(k, &|s| {
            let range = ranges[s];
            let (lo, len) = (range.lo, range.len());
            // SAFETY: shard ranges are disjoint and cover `0..n`, and
            // the pool hands each shard index to exactly one task, so
            // the slices below never overlap across concurrent tasks;
            // `pool.run` returns only after every task (and worker)
            // has left the job, so no access outlives the borrows the
            // pointers were created from.
            let mut ctx = unsafe {
                LoftShardCtx {
                    range,
                    link_sched: std::slice::from_raw_parts_mut(
                        link_sched.get().add(lo * PORTS),
                        len * PORTS,
                    ),
                    data_ports: std::slice::from_raw_parts_mut(
                        data_ports.get().add(lo * PORTS),
                        len * PORTS,
                    ),
                    nics: std::slice::from_raw_parts_mut(nics.get().add(lo), len),
                    node_data_work: std::slice::from_raw_parts_mut(
                        node_data_work.get().add(lo),
                        len,
                    ),
                    aux: &mut *shards.get().add(s),
                    tracker,
                    cfg,
                    link,
                }
            };
            ctx.run(phase);
        });
    }

    /// Applies the `injected_at` stamps the parallel injection phase
    /// deferred, in ascending shard (= node) order. A packet cannot
    /// eject in the slot its first quantum injects (the quantum is in
    /// flight for at least one slot), so stamping here — after the
    /// phase barrier, before data movement — is indistinguishable
    /// from stamping inline.
    fn apply_stamps(&mut self, slot: u64) {
        let at = slot * self.cfg.flits_per_quantum as u64;
        let Self {
            shards, tracker, ..
        } = self;
        for shard in shards.iter_mut() {
            for pref in shard.stamps.drain(..) {
                let packet = tracker.packet_mut(pref);
                debug_assert!(packet.injected_at.is_none(), "packet stamped twice");
                packet.injected_at = Some(at);
            }
        }
    }

    /// One slot of data movement on every link with work: a node is
    /// on the worklist while any of its output links has a pending
    /// booking or any of its input buffers holds an arrived quantum —
    /// precisely the states in which [`Self::move_on_link`] can act.
    ///
    /// Serial: forwarding consumes *downstream* buffer credit and
    /// pushes onto the receiving shard's wires in the same cycle.
    fn data_move(&mut self, slot: u64, out: &mut Vec<Packet>) {
        for sh in 0..self.shards.len() {
            let mut cursor = self.ranges[sh].lo;
            while let Some(node) = self.shards[sh].data_node_work.first_from(cursor) {
                cursor = node + 1;
                for port in 0..PORTS {
                    self.move_on_link(node, port, slot, out);
                }
            }
        }
    }

    fn move_on_link(&mut self, node: usize, out_port: usize, slot: u64, out: &mut Vec<Packet>) {
        let sched = &self.link_sched[node * PORTS + out_port];
        // Emergent quantum: booked for this slot (or earlier — a
        // booking can run late when its buffer was transiently full).
        let emergent = sched
            .first_pending()
            .filter(|&(s, _)| s <= slot)
            .map(|(s, p)| (s, p.flow, p.qid, p.in_port, p.res_idx));
        let present = emergent.filter(|&(_, flow, qid, in_port, res_idx)| {
            self.data_ports[node * PORTS + in_port as usize]
                .arrived_at(res_idx, (flow.index() as u32, qid))
        });
        let choice = match present {
            Some(c) => Some(c),
            None if self.cfg.speculative_switching => self.pick_speculative(node, out_port),
            None => None,
        };
        let Some((dep, flow, qid, in_port, res_idx)) = choice else {
            return;
        };
        self.forwarded[node * PORTS + out_port] += 1;
        self.forward(node, out_port, slot, dep, flow, qid, in_port, res_idx, out);
    }

    /// Picks the speculative candidate: per input port the arrived
    /// quantum with the earliest booked slot, then round-robin across
    /// ports.
    fn pick_speculative(
        &mut self,
        node: usize,
        out_port: usize,
    ) -> Option<(u64, FlowId, u64, u8, ResIdx)> {
        let lidx = node * PORTS + out_port;
        let start = self.rr_spec[lidx];
        let mut best: Option<(u64, FlowId, u64, u8, ResIdx)> = None;
        for k in 0..PORTS {
            let p = (start + k) % PORTS;
            let pidx = node * PORTS + p;
            if let Some((dep, f, q, idx)) = self.data_ports[pidx].ready_min(out_port) {
                best = Some((dep, FlowId::new(f), q, p as u8, idx));
                break;
            }
        }
        if best.is_some() {
            self.rr_spec[lidx] = (start + 1) % PORTS;
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn forward(
        &mut self,
        node: usize,
        out_port: usize,
        slot: u64,
        dep: u64,
        flow: FlowId,
        qid: u64,
        in_port: u8,
        res_idx: ResIdx,
        out: &mut Vec<Packet>,
    ) {
        let key = (flow.index() as u32, qid);
        let lidx = node * PORTS + out_port;
        let is_first = self.link_sched[lidx]
            .first_pending()
            .map(|(s, _)| s == dep)
            .unwrap_or(false);
        // Resolve the receiving side and check space.
        let target = if out_port == LOCAL {
            None // ejection: the PE absorbs at link rate
        } else {
            let (next, down_port) = self.link.downstream(node, out_port);
            Some((next * PORTS + down_port, !is_first))
        };
        if let Some((ridx, spec)) = target {
            let port = &self.data_ports[ridx];
            let space = if spec {
                port.spec_free > 0
            } else {
                port.nonspec_free > 0
            };
            if !space {
                self.probe.on_link_stall(lidx);
                return; // denied this slot; retry later
            }
        }
        self.probe.on_link_flits(lidx, self.cfg.flits_per_quantum);
        // Commit: clear the booking and remove the quantum from its
        // holding place. One pending booking and one arrived quantum
        // leave this node's data plane.
        self.link_sched[lidx].complete(dep);
        if self.link_sched[lidx].can_reset() {
            self.reset_check.insert(lidx);
        }
        self.node_data_work[node] -= 2;
        if self.node_data_work[node] == 0 {
            self.shards[self.shard_of[node] as usize]
                .data_node_work
                .remove(node);
        }
        let pidx = node * PORTS + in_port as usize;
        let port = &mut self.data_ports[pidx];
        let (arr_spec, arr_pref) = port.release(res_idx, key, dep);
        if arr_spec {
            port.spec_free += 1;
        } else {
            port.nonspec_free += 1;
            // The buffer the upstream scheduler's reset waits on just
            // gained a slot: if it is full again, queue the check.
            if port.nonspec_free == self.cfg.nonspec_quanta() as i64 && in_port as usize != LOCAL {
                let (up, up_port) = self.link.upstream(node, in_port as usize);
                self.reset_check.insert(up * PORTS + up_port);
            }
        }
        match target {
            None => self.eject(node, arr_pref, slot, out),
            Some((ridx, spec)) => {
                if spec {
                    self.data_ports[ridx].spec_free -= 1;
                } else {
                    self.data_ports[ridx].nonspec_free -= 1;
                }
                self.shards[self.shard_of[ridx / PORTS] as usize]
                    .data_wires
                    .push(
                        ridx,
                        slot + self.cfg.dep_offset(),
                        DataQuantum {
                            flow,
                            qid,
                            spec,
                            pref: arr_pref,
                        },
                    );
            }
        }
    }

    fn eject(&mut self, node: usize, pref: PacketRef, slot: u64, out: &mut Vec<Packet>) {
        let total = self.quanta_per_packet(self.tracker.packet(pref).len_flits) as u16;
        let q = self.cfg.flits_per_quantum as u64;
        let ejected_at = slot * q + self.cfg.hop_latency + q - 1;
        if let Some(packet) = self.tracker.on_piece(node, pref, total, ejected_at) {
            self.probe.on_delivered(&packet);
            out.push(packet);
        }
    }

    /// Full-scan cross-check of every active-set worklist (debug
    /// builds only): each set must contain exactly the indices a
    /// naive scan of the underlying state would act on. Runs once
    /// per cycle from [`Network::step`] under `debug_assertions`.
    #[cfg(debug_assertions)]
    fn debug_verify_worklists(&self) {
        for (sh, shard) in self.shards.iter().enumerate() {
            shard.la_wires.debug_verify();
            shard.data_wires.debug_verify();
            shard.la_queues.debug_verify();
            debug_assert!(
                shard.stamps.is_empty(),
                "shard {sh} left injection stamps unapplied"
            );
            // Shard-locality: no in-flight item or queued look-ahead
            // outside the shard's own link range.
            let links = self.ranges[sh].lo * PORTS..self.ranges[sh].hi * PORTS;
            for i in (0..self.link_sched.len()).filter(|i| !links.contains(i)) {
                debug_assert!(
                    !shard.la_wires.is_active(i)
                        && !shard.data_wires.is_active(i)
                        && shard.la_queues.raw_len(i) == 0,
                    "shard {sh} holds state outside its range at link {i}"
                );
            }
        }
        for i in 0..self.link_sched.len() {
            debug_assert_eq!(
                self.stale_links.contains(i),
                !self.link_sched[i].is_fresh(),
                "stale_links out of sync at link {i}"
            );
            // No reset may be missed: a stale link that could reset
            // right now must have a queued check.
            let (node, port) = (i / PORTS, i % PORTS);
            let downstream_empty = port == LOCAL
                || match self.link.try_downstream(node, port) {
                    Some((next, in_port)) => {
                        self.data_ports[next * PORTS + in_port].nonspec_free
                            == self.cfg.nonspec_quanta() as i64
                    }
                    None => true,
                };
            if !self.link_sched[i].is_fresh() && self.link_sched[i].can_reset() && downstream_empty
            {
                debug_assert!(
                    self.reset_check.contains(i),
                    "eligible reset not queued for link {i}"
                );
            }
        }
        for node in 0..self.nics.len() {
            let pending: usize = (0..PORTS)
                .map(|p| self.link_sched[node * PORTS + p].pending_len())
                .sum();
            let arrived: usize = (0..PORTS)
                .map(|p| {
                    let port = &self.data_ports[node * PORTS + p];
                    port.debug_verify();
                    port.arrived_len()
                })
                .sum();
            debug_assert_eq!(
                self.node_data_work[node] as usize,
                pending + arrived,
                "node_data_work miscounts node {node}"
            );
            debug_assert_eq!(
                self.shards[self.shard_of[node] as usize]
                    .data_node_work
                    .contains(node),
                pending + arrived > 0,
                "data_node_work out of sync at node {node}"
            );
            let nic = &self.nics[node];
            debug_assert_eq!(
                nic.queued,
                nic.flow_q.iter().map(VecDeque::len).sum::<usize>(),
                "queued miscounts NIC {node}"
            );
            debug_assert_eq!(
                self.launch_work.contains(node),
                nic.queued > 0,
                "launch_work out of sync at node {node}"
            );
            debug_assert_eq!(
                self.shards[self.shard_of[node] as usize]
                    .stage_work
                    .contains(node),
                !nic.staged.is_empty(),
                "stage_work out of sync at node {node}"
            );
        }
    }

    /// Emits one occupancy sample per FRS buffer and source NIC when
    /// the probe's sampling window is due. Runs serially at the top
    /// of the cycle, before any state moves; fully gated on
    /// [`Probe::ENABLED`] so the telemetry-off build skips the scan.
    fn sample_occupancy(&mut self, now: u64) {
        if !Pr::ENABLED || !self.probe.sample_due(now) {
            return;
        }
        let Self {
            probe,
            data_ports,
            nics,
            cfg,
            ..
        } = self;
        let nonspec_cap = cfg.nonspec_quanta() as i64;
        let spec_cap = cfg.spec_quanta() as i64;
        for (pidx, port) in data_ports.iter().enumerate() {
            probe.on_occupancy(
                BufKind::NonSpec,
                pidx,
                (nonspec_cap - port.nonspec_free) as u32,
            );
            probe.on_occupancy(BufKind::Spec, pidx, (spec_cap - port.spec_free) as u32);
        }
        for (node, nic) in nics.iter().enumerate() {
            let backlog = nic.staged.len() + nic.queued;
            probe.on_occupancy(BufKind::Source, node, backlog as u32);
        }
    }

    /// Local status reset on every eligible idle link. Eligibility
    /// can only *begin* at one of the events feeding `reset_check`
    /// (last pending quantum forwarded, or downstream buffer drained
    /// to capacity), so processing that event set each cycle resets
    /// every link on the first cycle it qualifies — identical
    /// behaviour to scanning all of `stale_links`, without the scan.
    fn reset_idle_links(&mut self) {
        let nonspec_cap = self.cfg.nonspec_quanta() as i64;
        let mut cursor = 0;
        while let Some(lidx) = self.reset_check.first_from(cursor) {
            cursor = lidx + 1;
            self.reset_check.remove(lidx);
            let (node, port) = (lidx / PORTS, lidx % PORTS);
            if self.link_sched[lidx].is_fresh() || !self.link_sched[lidx].can_reset() {
                continue;
            }
            let downstream_empty = if port == LOCAL {
                true // the PE sink drains at link rate
            } else {
                match self.link.try_downstream(node, port) {
                    Some((next, in_port)) => {
                        self.data_ports[next * PORTS + in_port].nonspec_free == nonspec_cap
                    }
                    None => true, // edge port: never used anyway
                }
            };
            if downstream_empty {
                self.link_sched[lidx].local_reset();
                self.stale_links.remove(lidx);
                self.total_resets += 1;
                self.probe.on_link_reset(lidx);
            }
        }
    }
}

impl<Pr: Probe> Network for LoftNetwork<Pr> {
    fn num_nodes(&self) -> usize {
        self.nics.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue(&mut self, packet: Packet) {
        assert!(packet.src != packet.dst, "self-addressed packet");
        self.probe.on_generated(&packet);
        let node = packet.src.index();
        let quanta = self.quanta_per_packet(packet.len_flits);
        let dst = packet.dst;
        let (fid, seq) = (packet.id.flow.index() as u32, packet.id.seq);
        let pref = self.tracker.admit(packet);
        let nic = &mut self.nics[node];
        // Linear scan over the node's own flows: enqueue runs once
        // per packet, and a node sources only a handful of flows.
        let fi = match nic.rr_flows.iter().position(|&f| f == fid) {
            Some(i) => i,
            None => {
                nic.rr_flows.push(fid);
                nic.flow_q.push(VecDeque::new());
                nic.rr_flows.len() - 1
            }
        };
        let q = &mut nic.flow_q[fi];
        for half in 0..quanta {
            let qid = seq * quanta + half;
            q.push_back(SrcQuantum { qid, dst, pref });
        }
        nic.queued += quanta as usize;
        self.launch_work.insert(node);
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        self.debug_verify_worklists();
        let delivered_before = out.len();
        let now = self.cycle;
        self.sample_occupancy(now);
        let q = self.cfg.flits_per_quantum as u64;
        if now.is_multiple_of(q) {
            let slot = now / q;
            self.run_phase(LoftPhase::Data { slot });
            self.apply_stamps(slot);
            self.data_move(slot, out);
        }
        // Reset checks run every cycle: an idle instant between two
        // slots is enough for a link to recycle its window.
        if self.cfg.local_status_reset {
            self.reset_idle_links();
        }
        // Look-ahead delivery is shard-local; skip the whole pass
        // (and the pool dispatch) when no look-ahead is in flight.
        if self.shards.iter().any(|sh| sh.la_wires.any_active()) {
            self.run_phase(LoftPhase::Lookahead { now });
        }
        self.la_schedule(now);
        self.la_launch(now);
        self.probe.on_cycle(now);
        self.cycle = now + 1;
        debug_assert_delivered_once(out, delivered_before);
    }

    /// Jumps `cycles` forward without stepping when the network is
    /// fully quiescent: no packet in the slab, every link scheduler in
    /// its power-up state (`stale_links` empty), and no reset check
    /// pending. A quiescent LOFT cycle then does exactly three things
    /// — advance every link scheduler at slot boundaries, sample
    /// occupancy when the telemetry window is due, and tick the cycle
    /// counter — all replicated here in closed form: one
    /// [`LinkScheduler::fast_forward_slots`] call per link regardless
    /// of the jump length, all-zero occupancy samples in the exact
    /// `sample_occupancy` order, and
    /// [`Probe::tick_many`].
    ///
    /// With [`LoftConfig::local_status_reset`] disabled, schedulers
    /// never return to their power-up state once booked, so the jump
    /// permanently declines after the first packet — the engine simply
    /// keeps stepping, unchanged.
    fn fast_forward(&mut self, cycles: u64) -> u64 {
        if cycles == 0
            || !self.tracker.is_empty()
            || !self.stale_links.is_empty()
            || !self.reset_check.is_empty()
        {
            return 0;
        }
        #[cfg(debug_assertions)]
        {
            for shard in &self.shards {
                debug_assert!(!shard.data_wires.any_active(), "data quanta in flight");
                debug_assert!(!shard.la_wires.any_active(), "look-aheads in flight");
                debug_assert!(
                    shard.la_queues.first_from(0).is_none(),
                    "queued look-aheads"
                );
                debug_assert!(shard.data_node_work.is_empty(), "data work mid-jump");
                debug_assert!(shard.stage_work.is_empty(), "staged quanta mid-jump");
                debug_assert!(shard.stamps.is_empty(), "unapplied stamps mid-jump");
            }
            debug_assert!(self.launch_work.is_empty(), "queued source quanta");
            debug_assert!(self.la_outstanding.iter().all(|&c| c == 0));
            debug_assert!(self.node_data_work.iter().all(|&c| c == 0));
            for nic in &self.nics {
                debug_assert!(nic.staged.is_empty() && nic.queued == 0, "NIC not idle");
            }
            for port in &self.data_ports {
                debug_assert_eq!(
                    port.nonspec_free,
                    self.cfg.nonspec_quanta() as i64,
                    "non-spec buffer not drained"
                );
                debug_assert_eq!(
                    port.spec_free,
                    self.cfg.spec_quanta() as i64,
                    "spec buffer not drained"
                );
            }
        }
        let now = self.cycle;
        let q = self.cfg.flits_per_quantum as u64;
        // Stepping advances all schedulers at cycles `m` with
        // `m % q == 0 && m / q > 0`: count those in `[now, now + k)`.
        let i0 = now.div_ceil(q).max(1);
        let i1 = (now + cycles).div_ceil(q).max(1);
        let advances = i1 - i0;
        if advances > 0 {
            for s in self.link_sched.iter_mut() {
                s.fast_forward_slots(advances);
            }
        }
        if Pr::ENABLED {
            for c in now..now + cycles {
                if !self.probe.sample_due(c) {
                    continue;
                }
                for pidx in 0..self.data_ports.len() {
                    self.probe.on_occupancy(BufKind::NonSpec, pidx, 0);
                    self.probe.on_occupancy(BufKind::Spec, pidx, 0);
                }
                for node in 0..self.nics.len() {
                    self.probe.on_occupancy(BufKind::Source, node, 0);
                }
            }
        }
        self.probe.tick_many(now, cycles);
        self.cycle = now + cycles;
        cycles
    }

    fn in_flight(&self) -> usize {
        self.tracker.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::PacketId;
    use noc_sim::topology::Topology;

    fn packet(flow: u32, seq: u64, src: u32, dst: u32, at: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(src),
            NodeId::new(dst),
            4,
            at,
        )
    }

    fn drain<Pr: Probe>(net: &mut LoftNetwork<Pr>, limit: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < limit, "network failed to drain in {limit} cycles");
        }
        out
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = LoftNetwork::new(LoftConfig::default(), &[64]);
        net.enqueue(packet(0, 0, 0, 63, 0));
        let out = drain(&mut net, 2_000);
        assert_eq!(out.len(), 1);
        let lat = out[0].total_latency().unwrap();
        assert!(lat >= 14 * 3, "latency {lat} below physical minimum");
        assert!(lat < 300, "uncontended latency {lat} too high");
    }

    #[test]
    fn neighbor_packet_is_fast() {
        let mut net = LoftNetwork::new(LoftConfig::default(), &[64]);
        net.enqueue(packet(0, 0, 0, 1, 0));
        let out = drain(&mut net, 500);
        let lat = out[0].total_latency().unwrap();
        assert!(lat <= 40, "one-hop latency was {lat}");
    }

    #[test]
    fn all_packets_delivered_small_mesh() {
        let mut net = LoftNetwork::new(LoftConfig::small(), &[4; 240]);
        let mut flow = 0;
        for src in 0..16u32 {
            for dst in 0..16u32 {
                if src != dst {
                    net.enqueue(packet(flow, 0, src, dst, 0));
                    flow += 1;
                }
            }
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 240);
        for p in &out {
            assert!(p.injected_at.unwrap() <= p.ejected_at.unwrap());
        }
    }

    #[test]
    fn backlog_throughput_matches_link_rate() {
        // One flow with a full-frame reservation and a deep backlog:
        // the link should stream about one flit per cycle.
        let cfg = LoftConfig::default();
        let mut net = LoftNetwork::new(cfg, &[256]);
        for seq in 0..200 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let out = drain(&mut net, 10_000);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        // 200 packets × 4 flits = 800 flits; at 1 flit/cycle the
        // stream needs ≥ 800 cycles and should not need many more.
        assert!(end >= 800, "end {end}");
        assert!(end < 1_400, "took {end} cycles for 800 flits");
    }

    #[test]
    fn reservation_shares_bandwidth_under_contention() {
        // Two flows contend for one ejection link with a 3:1
        // reservation split and deep backlogs.
        let cfg = LoftConfig::default();
        let mut net = LoftNetwork::new(cfg, &[192, 64]);
        for seq in 0..120 {
            net.enqueue(packet(0, seq, 0, 9, 0));
        }
        for seq in 0..40 {
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        let out = drain(&mut net, 30_000);
        // Measure when each flow finished its first 30 packets: the
        // 3:1 flow should be roughly 3× faster per packet.
        let done_at = |flow: u32, k: usize| {
            let mut t: Vec<u64> = out
                .iter()
                .filter(|p| p.id.flow == FlowId::new(flow))
                .map(|p| p.ejected_at.unwrap())
                .collect();
            t.sort_unstable();
            t[k - 1]
        };
        let fast = done_at(0, 90);
        let slow = done_at(1, 30);
        // Flow 0 got 3× the packets in about the same time.
        let ratio = slow as f64 / fast as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "3:1 pacing broken: fast(90pk)={fast}, slow(30pk)={slow}"
        );
    }

    #[test]
    fn spec_zero_disables_resets() {
        let mut net = LoftNetwork::new(LoftConfig::with_spec_buffer(0), &[64]);
        net.enqueue(packet(0, 0, 0, 63, 0));
        let _ = drain(&mut net, 10_000);
        assert_eq!(net.total_resets(), 0);
    }

    #[test]
    fn speculative_switching_cuts_latency() {
        // A lightly loaded network: with optimizations on, data flits
        // forward as soon as possible instead of at their booked
        // slots.
        let lat_of = |cfg: LoftConfig| {
            let mut net = LoftNetwork::new(cfg, &[8]);
            net.enqueue(packet(0, 0, 0, 63, 0));
            let out = drain(&mut net, 20_000);
            out[0].total_latency().unwrap()
        };
        let with_spec = lat_of(LoftConfig::with_spec_buffer(12));
        let without = lat_of(LoftConfig::with_spec_buffer(0));
        assert!(
            with_spec <= without,
            "speculation should not hurt: {with_spec} vs {without}"
        );
    }

    #[test]
    fn local_reset_restores_quota_on_idle_links() {
        // A small reservation with local reset: an isolated flow can
        // exceed R/F throughput because idle links keep recycling.
        let run = |reset: bool| {
            let cfg = LoftConfig {
                local_status_reset: reset,
                ..LoftConfig::default()
            };
            // R = 8 flits per 256-flit frame = 1/32 of the link.
            let mut net = LoftNetwork::new(cfg, &[8]);
            for seq in 0..50 {
                net.enqueue(packet(0, seq, 0, 1, 0));
            }
            let out = drain(&mut net, 400_000);
            out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap()
        };
        let with_reset = run(true);
        let without = run(false);
        // 50 packets × 4 flits at R/F = 1/32 of a flit/cycle would
        // need ~6400 cycles without reset; with reset the flow can
        // use the idle link at full speed.
        assert!(
            with_reset * 3 < without,
            "local reset ineffective: {with_reset} vs {without}"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut net = LoftNetwork::new(LoftConfig::default(), &[16, 16]);
            for seq in 0..25 {
                net.enqueue(packet(0, seq, 0, 63, 0));
                net.enqueue(packet(1, seq, 7, 56, 0));
            }
            drain(&mut net, 200_000)
                .iter()
                .map(|p| (p.id, p.ejected_at.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn works_on_small_torus() {
        let cfg = LoftConfig {
            topo: Topology::torus(4, 4),
            frame_size: 64,
            nonspec_buffer: 64,
            ..LoftConfig::default()
        };
        let mut net = LoftNetwork::new(cfg, &[8, 8]);
        net.enqueue(packet(0, 0, 0, 15, 0));
        net.enqueue(packet(1, 0, 5, 2, 0));
        let out = drain(&mut net, 20_000);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reservations must be positive")]
    fn zero_reservation_rejected() {
        let _ = LoftNetwork::new(LoftConfig::default(), &[0]);
    }

    #[test]
    fn ejection_rate_is_one_flit_per_cycle() {
        // Two flows flood one destination with full-frame shares: the
        // destination can only sink 1 flit/cycle, so 100 packets of
        // 4 flits need at least 400 cycles.
        let mut net = LoftNetwork::new(LoftConfig::default(), &[128, 128]);
        for seq in 0..50 {
            net.enqueue(packet(0, seq, 0, 9, 0));
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        let out = drain(&mut net, 50_000);
        let end = out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap();
        assert!(end >= 400, "400 flits ejected in only {end} cycles");
    }

    #[test]
    fn idle_links_reset_under_demand_gaps() {
        let mut net = LoftNetwork::new(LoftConfig::default(), &[16]);
        // Two bursts with a long idle gap between them.
        for seq in 0..10 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let mut out = Vec::new();
        for _ in 0..2_000 {
            net.step(&mut out);
        }
        assert!(net.total_resets() > 0, "no resets during idle gaps");
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn la_flow_window_bounds_outstanding_lookaheads() {
        // A tiny window throttles a single flow's pipelining but all
        // packets still arrive.
        let cfg = LoftConfig {
            la_flow_window: 1,
            ..LoftConfig::default()
        };
        let mut net = LoftNetwork::new(cfg, &[256]);
        for seq in 0..20 {
            net.enqueue(packet(0, seq, 0, 63, 0));
        }
        let narrow = drain(&mut net, 100_000)
            .iter()
            .map(|p| p.ejected_at.unwrap())
            .max()
            .unwrap();
        let mut net = LoftNetwork::new(LoftConfig::default(), &[256]);
        for seq in 0..20 {
            net.enqueue(packet(0, seq, 0, 63, 0));
        }
        let wide = drain(&mut net, 100_000)
            .iter()
            .map(|p| p.ejected_at.unwrap())
            .max()
            .unwrap();
        assert!(
            wide < narrow,
            "wider look-ahead window should pipeline better: {wide} vs {narrow}"
        );
    }

    #[test]
    fn link_flits_probe_counts_traffic() {
        use noc_sim::routing::Direction;
        let mut net = LoftNetwork::new(LoftConfig::default(), &[64]);
        net.enqueue(packet(0, 0, 0, 2, 0)); // 0 → 1 → 2, eastbound
        let _ = drain(&mut net, 5_000);
        assert_eq!(net.link_flits(NodeId::new(0), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(1), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(2), Direction::Local), 4);
        assert_eq!(net.link_flits(NodeId::new(3), Direction::East), 0);
    }

    #[test]
    fn live_probe_matches_legacy_link_counter() {
        use noc_sim::telemetry::LiveProbe;
        let mut net = LoftNetwork::with_probe(LoftConfig::default(), &[64], LiveProbe::new(16));
        net.enqueue(packet(0, 0, 0, 2, 0)); // 0 → 1 → 2, eastbound
        let _ = drain(&mut net, 5_000);
        let east = Direction::East.index();
        let local = Direction::Local.index();
        let legacy: Vec<u64> = [(0, east), (1, east), (2, local), (3, east)]
            .iter()
            .map(|&(n, d)| net.link_flits(NodeId::new(n as u32), Direction::ALL[d]))
            .collect();
        let report = net.into_probe().finish();
        let probed = |lidx: usize| report.link_flits.get(lidx).copied().unwrap_or(0);
        assert_eq!(probed(east), legacy[0]);
        assert_eq!(probed(PORTS + east), legacy[1]);
        assert_eq!(probed(2 * PORTS + local), legacy[2]);
        assert_eq!(probed(3 * PORTS + east), legacy[3]);
        assert_eq!(report.flows.len(), 1);
        assert_eq!(report.flows[0].packets, 1);
        assert!(report.cycles > 0);
        // The FRS buffers were sampled: some nonspec occupancy was seen.
        assert!(
            report
                .occupancy(noc_sim::telemetry::BufKind::NonSpec, 2 * PORTS + local)
                .count()
                > 0
        );
    }

    /// A quiescent jump must be indistinguishable from stepping the
    /// idle cycles — same clock, and identical behaviour for traffic
    /// injected after the gap.
    #[test]
    fn fast_forward_matches_idle_stepping() {
        let build = || {
            let mut net = LoftNetwork::new(LoftConfig::default(), &[16]);
            for seq in 0..5 {
                net.enqueue(packet(0, seq, 0, 9, 0));
            }
            net
        };
        let (mut stepped, mut jumped) = (build(), build());
        let (mut out_s, mut out_j) = (Vec::new(), Vec::new());
        while stepped.in_flight() > 0 {
            stepped.step(&mut out_s);
        }
        while jumped.in_flight() > 0 {
            jumped.step(&mut out_j);
        }
        // Let the trailing reset checks land so both are quiescent.
        for _ in 0..32 {
            stepped.step(&mut out_s);
            jumped.step(&mut out_j);
        }
        assert_eq!(out_s, out_j);
        for k in [1u64, 5, 63, 64, 1_000] {
            for _ in 0..k {
                stepped.step(&mut out_s);
            }
            assert_eq!(jumped.fast_forward(k), k, "jump declined at k={k}");
            assert_eq!(jumped.cycle(), stepped.cycle());
        }
        assert_eq!(stepped.total_resets(), jumped.total_resets());
        // Traffic after the gap behaves identically in both worlds.
        stepped.enqueue(packet(0, 100, 0, 9, 0));
        jumped.enqueue(packet(0, 100, 0, 9, 0));
        let a = drain(&mut stepped, 10_000);
        let b = drain(&mut jumped, 10_000);
        assert_eq!(a.len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn odd_length_packets_round_up_to_quanta() {
        // 5-flit packets need 3 quanta; delivery must still complete.
        let mut net = LoftNetwork::new(LoftConfig::default(), &[64]);
        let mut p = packet(0, 0, 0, 5, 0);
        p.len_flits = 5;
        net.enqueue(p);
        let out = drain(&mut net, 5_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len_flits, 5);
    }
}
