//! Locally-synchronized frame scheduling for one output link.
//!
//! [`LinkScheduler`] implements the paper's Section 4 machinery for a
//! single output port:
//!
//! * the framed **output reservation table** (busy flags + per-slot
//!   virtual credits, Figure 7),
//! * per-flow injection state `(IF_ij, C_ij, R_ij)` and the injection
//!   procedure of **Algorithm 1**,
//! * **Algorithm 2** (`try_schedule`) searching a frame for a valid
//!   slot,
//! * **Algorithm 3** (head-frame/current-pointer advance) driven by
//!   [`LinkScheduler::advance_slot`],
//! * the **`skipped` counters and Condition (1)** of Section 4.2 that
//!   eliminate the *output scheduling anomaly* (Theorem I), and
//! * **local status reset** (Section 4.3.2).
//!
//! Time is measured in *quantum slots*: one slot carries one data
//! quantum (`flits_per_quantum` flits) on the link. Slots are
//! absolute `u64`s; the table window covers
//! `[current_slot, current_slot + window_quanta)` and is stored as a
//! ring.
//!
//! Virtual credits are per-slot absolute values, exactly like the
//! paper's table (Figure 5): `credit(s)` is the number of free
//! non-speculative buffer slots at the downstream input port at slot
//! `s`, given everything scheduled so far. Scheduling an arrival at
//! slot `s` decrements the suffix `credit(s..)`; the downstream
//! scheduler returning a departure at slot `d` increments
//! `credit(d..)`.

use noc_sim::flit::FlowId;

/// Static parameters of one link scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsfParams {
    /// Frame size in quantum slots (`F`).
    pub frame_quanta: u32,
    /// Frames in the window (`WF`).
    pub frame_window: u32,
    /// Flits per quantum (reservations `R`/`C` are kept in flits).
    pub flits_per_quantum: u32,
    /// Downstream non-speculative buffer capacity in quanta (`BN`).
    pub buffer_quanta: u32,
    /// `true` for ejection links whose downstream "buffer" is the
    /// destination PE: credits are unlimited and Condition (1) is
    /// waived (there is no buffer to underflow).
    pub sink: bool,
}

impl LsfParams {
    /// Total slots in the table window (`F × WF`).
    pub fn window_quanta(&self) -> u64 {
        self.frame_quanta as u64 * self.frame_window as u64
    }
}

/// Per-flow LSF state: allocated reservation `R` (flits), remaining
/// reservation `C` (flits), and the (absolute) injection frame `IF`.
#[derive(Debug, Clone, Copy)]
struct FlowLsf {
    r_flits: u32,
    c_flits: u32,
    frame: u64,
    /// Slot of the flow's most recent booking: later quanta must book
    /// strictly later slots so same-flow data stays in order even
    /// when earlier slots free up again.
    last_slot: u64,
    /// Reset epoch this entry was last normalized against (see
    /// [`LinkScheduler::normalize_flow`]): entries from an older
    /// epoch are stale and reread as power-up state.
    epoch: u64,
}

/// A quantum scheduled on the link, waiting for its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingQuantum {
    /// The flow the quantum belongs to.
    pub flow: FlowId,
    /// Quantum sequence number within the flow.
    pub qid: u64,
    /// Input port of the router holding the quantum.
    pub in_port: u8,
    /// Slot of the quantum's entry in that input port's reservation
    /// store (`crate::port`): carrying the handle here makes
    /// the data plane's emergent present-check and forward path
    /// direct array reads instead of keyed lookups.
    pub res_idx: u16,
}

/// The LSF scheduler of one output link. See the module docs.
#[derive(Debug, Clone)]
pub struct LinkScheduler {
    params: LsfParams,
    /// Current absolute slot (the slot the link is transferring now).
    cp: u64,
    /// Virtual credit of the current slot `cp`. Credits of later
    /// slots are reconstructed as
    /// `credit(s) = cbase + Σ cdelta[ring(t)] for t in (cp, s]` —
    /// a difference representation that turns the paper's suffix
    /// updates (consume/return over `credit(s..)`) into single point
    /// updates.
    cbase: i64,
    /// Ring of credit differences: `cdelta[ring(s)]` is
    /// `credit(s) − credit(s−1)`. The entry for `ring(cp)` is always
    /// zero (the base slot's value lives in `cbase`).
    cdelta: Vec<i64>,
    /// Fenwick tree over `cdelta` (same ring indexing) for
    /// O(log window) prefix sums when reading a single slot's credit.
    ctree: Vec<i64>,
    /// Sum of all entries of `cdelta` (used for wrapped prefix sums).
    ctotal: i64,
    /// Ring of busy flags.
    busy: Vec<bool>,
    /// Busy slots per frame, index `frame % WF` — lets the Algorithm 2
    /// slot search (`try_find`) bail out in O(1) when a frame is fully
    /// booked (the common case at saturation).
    frame_busy: Vec<u32>,
    /// Per-frame sums of `cdelta`, index `frame % (WF + 1)`:
    /// `frame_delta[f]` is `Σ cdelta[ring(s)]` over the in-window
    /// slots of absolute frame `f`. Condition (1) only ever reads the
    /// credit at a frame boundary, which is `cbase` plus whole-frame
    /// sums — so the per-retry hot path of a stalled look-ahead flit
    /// costs O(WF) adds instead of O(log window) Fenwick walks. The
    /// ring is one longer than `WF` because the window spans partial
    /// head and tail frames that share `frame % WF`.
    frame_delta: Vec<i64>,
    /// `ring(cp)`, maintained incrementally so the per-slot hot paths
    /// never divide by the window size.
    cp_ring: usize,
    /// `cp / F`, maintained incrementally (see `cp_ring`).
    head: u64,
    /// `head % WF`, maintained incrementally (see `cp_ring`).
    head_ring: usize,
    /// `cp % F`, maintained incrementally (see `cp_ring`).
    frame_pos: u32,
    /// Per-frame skipped counters (quanta), index `frame % WF`.
    skipped: Vec<u32>,
    /// Registered flows, dense by flow id.
    flows: Vec<FlowLsf>,
    /// Scheduled-but-not-yet-forwarded quanta, sorted by slot. A
    /// sorted vector, not a tree: the set holds a handful of entries,
    /// the data plane polls the minimum on every output link of every
    /// active node each slot, and a vector reuses its buffer forever
    /// where a `BTreeMap` would allocate and free nodes every time
    /// the set drains and refills (which at steady state is every
    /// few slots on every active link).
    pending: Vec<(u64, PendingQuantum)>,
    /// Set whenever state changed in a way that could unblock a
    /// previously failed scheduling attempt.
    dirty: bool,
    /// Bumped on every local reset; per-flow entries carry the epoch
    /// they were last written under, making reset O(window) instead
    /// of O(flows) — the network has thousands of flows but only a
    /// handful are live on any one link.
    reset_epoch: u64,
    /// `true` while the scheduler is in its power-up/reset state —
    /// resetting again would be a no-op.
    fresh: bool,
    resets: u64,
}

impl LinkScheduler {
    /// Creates a scheduler with per-flow reservations in **flits**
    /// (`R_ij` of the paper), dense by flow id.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (zero-sized frame or
    /// window).
    pub fn new(params: LsfParams, reservations_flits: &[u32]) -> Self {
        assert!(params.frame_quanta > 0 && params.frame_window > 0);
        assert!(params.flits_per_quantum > 0);
        let window = params.window_quanta() as usize;
        LinkScheduler {
            cp: 0,
            cbase: params.buffer_quanta as i64,
            cdelta: vec![0; window],
            ctree: vec![0; window],
            ctotal: 0,
            busy: vec![false; window],
            frame_busy: vec![0; params.frame_window as usize],
            frame_delta: vec![0; params.frame_window as usize + 1],
            cp_ring: 0,
            head: 0,
            head_ring: 0,
            frame_pos: 0,
            skipped: vec![0; params.frame_window as usize],
            flows: reservations_flits
                .iter()
                .map(|&r| FlowLsf {
                    r_flits: r,
                    c_flits: r,
                    frame: 0,
                    last_slot: 0,
                    epoch: 0,
                })
                .collect(),
            pending: Vec::new(),
            dirty: true,
            reset_epoch: 0,
            fresh: true,
            resets: 0,
            params,
        }
    }

    /// The scheduler's parameters.
    pub fn params(&self) -> &LsfParams {
        &self.params
    }

    /// Current absolute slot.
    pub fn current_slot(&self) -> u64 {
        self.cp
    }

    /// Absolute head frame number (`cp / F`).
    pub fn head_frame(&self) -> u64 {
        self.head
    }

    /// Number of local status resets performed.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Whether the scheduler changed since the last failed scheduling
    /// attempt; clears the flag. Callers use this to avoid re-running
    /// Algorithm 1 for stalled look-ahead flits when nothing changed.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    fn ring(&self, slot: u64) -> usize {
        // Every caller passes a slot inside the live window
        // `[cp, cp + window)`, so the ring index follows from `cp`'s
        // maintained index by wraparound addition — no division.
        debug_assert!(slot >= self.cp && slot < self.cp + self.params.window_quanta());
        let d = (slot - self.cp) as usize + self.cp_ring;
        let w = self.cdelta.len();
        if d >= w {
            d - w
        } else {
            d
        }
    }

    /// Adds `v` to `cdelta[i]`'s mirror in the Fenwick tree.
    #[inline]
    fn ctree_add(&mut self, i: usize, v: i64) {
        self.ctotal += v;
        let mut i = i + 1;
        while i <= self.ctree.len() {
            self.ctree[i - 1] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum `cdelta[0..=i]` from the Fenwick tree.
    #[inline]
    fn ctree_prefix(&self, i: usize) -> i64 {
        let mut sum = 0;
        let mut i = i + 1;
        while i > 0 {
            sum += self.ctree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Reconstructs the credit of an absolute slot in
    /// `[cp, cp + window)` from the difference representation:
    /// `cbase` plus the deltas of `(cp, slot]`, which in ring space is
    /// either a contiguous span or a wrapped pair of spans.
    #[inline]
    fn credit_value(&self, slot: u64) -> i64 {
        if slot == self.cp {
            return self.cbase;
        }
        let c = self.ring(self.cp);
        let i = self.ring(slot);
        if i > c {
            self.cbase + self.ctree_prefix(i) - self.ctree_prefix(c)
        } else {
            self.cbase + self.ctotal - self.ctree_prefix(c) + self.ctree_prefix(i)
        }
    }

    /// Virtual credit of an absolute slot inside the window.
    pub fn credit_at(&self, slot: u64) -> i64 {
        debug_assert!(slot >= self.cp && slot < self.cp + self.params.window_quanta());
        self.credit_value(slot)
    }

    /// Busy flag of an absolute slot inside the window.
    pub fn busy_at(&self, slot: u64) -> bool {
        debug_assert!(slot >= self.cp && slot < self.cp + self.params.window_quanta());
        self.busy[self.ring(slot)]
    }

    /// The earliest scheduled-and-unforwarded quantum, if any.
    #[inline]
    pub fn first_pending(&self) -> Option<(u64, PendingQuantum)> {
        self.pending.first().copied()
    }

    /// Number of scheduled-and-unforwarded quanta.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Advances the current slot pointer by one (call every
    /// `flits_per_quantum` cycles). Implements Algorithm 3: when the
    /// pointer crosses a frame boundary the head frame recycles —
    /// flows stuck at the old head move up with refreshed
    /// reservations and the incoming fresh frame's `skipped` counter
    /// clears.
    pub fn advance_slot(&mut self) {
        let idx = self.cp_ring;
        // The ring entry now represents slot `cp + window`: it
        // inherits the credit of the youngest slot (delta 0 — the
        // entry is already 0 by the `cdelta[ring(cp)] == 0`
        // invariant) and is not busy.
        if self.busy[idx] {
            self.busy[idx] = false;
            self.frame_busy[self.head_ring] -= 1;
        }
        self.cp += 1;
        self.cp_ring += 1;
        if self.cp_ring == self.cdelta.len() {
            self.cp_ring = 0;
        }
        // Fold the new base slot's delta into `cbase` so the
        // invariant holds for the new `cp`.
        let nb = self.cp_ring;
        let d = self.cdelta[nb];
        if d != 0 {
            self.cbase += d;
            self.cdelta[nb] = 0;
            self.ctree_add(nb, -d);
            // The folded slot is the new `cp`: frame `head`, unless
            // this advance crosses into the next frame.
            let nf = if self.frame_pos + 1 == self.params.frame_quanta {
                self.head + 1
            } else {
                self.head
            };
            let m = self.frame_delta.len() as u64;
            self.frame_delta[(nf % m) as usize] -= d;
        }
        self.frame_pos += 1;
        if self.frame_pos == self.params.frame_quanta {
            // Head frame recycled: flows stuck at the old head catch
            // up lazily in `normalize_flow` on their next access —
            // eagerly sweeping every registered flow here would cost
            // O(flows) per frame on every link in the network.
            self.frame_pos = 0;
            self.head += 1;
            self.head_ring += 1;
            if self.head_ring == self.skipped.len() {
                self.head_ring = 0;
            }
            // The fresh incoming frame `head + WF − 1` maps to the
            // ring entry just behind the new head.
            let fresh = if self.head_ring == 0 {
                self.skipped.len() - 1
            } else {
                self.head_ring - 1
            };
            debug_assert_eq!(self.frame_busy[fresh], 0, "future frame has busy slots");
            self.skipped[fresh] = 0;
            self.dirty = true;
        }
    }

    /// Closed-form equivalent of `k` [`LinkScheduler::advance_slot`]
    /// calls for a scheduler in its power-up/reset state: with no
    /// booking since the last reset every busy flag, credit delta, and
    /// `skipped` counter is already zero, so advancing is pure pointer
    /// arithmetic — `cp`, its ring index, the head frame, and the
    /// frame-crossing `dirty` mark. Flow entries stay untouched (they
    /// catch up lazily in `normalize_flow`, exactly as under stepped
    /// advances).
    ///
    /// # Panics
    ///
    /// Debug builds panic if the scheduler is not fresh
    /// ([`LinkScheduler::is_fresh`]).
    pub fn fast_forward_slots(&mut self, k: u64) {
        debug_assert!(self.fresh, "fast-forward on a booked scheduler");
        debug_assert!(self.pending.is_empty(), "fast-forward with pending quanta");
        debug_assert_eq!(self.ctotal, 0, "fresh scheduler has credit deltas");
        if k == 0 {
            return;
        }
        let window = self.cdelta.len() as u64;
        self.cp += k;
        self.cp_ring = ((self.cp_ring as u64 + k) % window) as usize;
        let fq = self.params.frame_quanta as u64;
        let pos = self.frame_pos as u64 + k;
        let crossed = pos / fq;
        self.frame_pos = (pos % fq) as u32;
        if crossed > 0 {
            self.head += crossed;
            self.head_ring =
                ((self.head_ring as u64 + crossed) % self.params.frame_window as u64) as usize;
            self.dirty = true;
        }
    }

    /// Brings a flow's entry up to date before any read: a stale
    /// reset epoch or a frame behind the head both mean the flow
    /// restarts at the head with a full reservation
    /// (`C ← MIN(R, C + R)`; `C ≥ 0` makes this `C ← R`).
    #[inline]
    fn normalize_flow(&mut self, flow: FlowId) {
        let head = self.head_frame();
        let epoch = self.reset_epoch;
        let st = &mut self.flows[flow.index()];
        if st.epoch != epoch || st.frame < head {
            st.epoch = epoch;
            st.frame = head;
            st.c_flits = st.r_flits;
        }
    }

    /// Condition (1) of Section 4.2: flow may inject into `frame`
    /// only if `F − skipped(frame) ≤ credit(Prior)`, where `Prior` is
    /// the table entry immediately preceding the frame.
    ///
    /// The head frame is exempt: its injections are bounded by the
    /// per-frame quotas alone (`ΣR ≤ F ≤ buffer`), which is exactly
    /// how Theorem I's proof bounds `B(X)` for the region containing
    /// frame 0 — and the paper's reconsidered example (flow `mn`
    /// still injecting into the imminent slot of the head frame)
    /// only works under this reading.
    fn condition1(&self, frame: u64) -> bool {
        if self.params.sink {
            return true;
        }
        let head = self.head_frame();
        debug_assert!(frame >= head);
        if frame == head {
            return true;
        }
        // `Prior` is the last slot of frame `frame − 1`, so its credit
        // is `cbase` plus the whole-frame delta sums of every earlier
        // in-window frame — no Fenwick walk.
        let m = self.frame_delta.len();
        let mut credit = self.cbase;
        let mut gi = (head % m as u64) as usize;
        for _ in head..frame {
            credit += self.frame_delta[gi];
            gi += 1;
            if gi == m {
                gi = 0;
            }
        }
        #[cfg(debug_assertions)]
        {
            let prior = frame * self.params.frame_quanta as u64 - 1;
            debug_assert!(prior >= self.cp);
            debug_assert_eq!(
                credit,
                self.credit_value(prior),
                "frame_delta sums diverged from the Fenwick credit"
            );
        }
        let skipped = self.skipped[(frame % self.params.frame_window as u64) as usize];
        (self.params.frame_quanta.saturating_sub(skipped)) as i64 <= credit
    }

    /// Algorithm 2: searches `frame` for a valid slot at or after
    /// `earliest` (a free, credit-positive slot). Returns the slot
    /// without mutating state.
    fn try_find(&self, frame: u64, earliest: u64) -> Option<u64> {
        let fq = self.params.frame_quanta as u64;
        let head = self.head_frame();
        let mut candidate = if frame == head {
            self.cp + 1
        } else {
            frame * fq
        };
        candidate = candidate.max(earliest);
        let end = (frame + 1) * fq;
        if candidate >= end {
            return None;
        }
        // Fully booked frame (the common case at saturation): every
        // in-window slot of the frame is busy, so no candidate can
        // exist — bail without scanning.
        let in_window = end - (frame * fq).max(self.cp);
        if self.frame_busy[(frame % self.params.frame_window as u64) as usize] as u64 >= in_window {
            return None;
        }
        let w = self.cdelta.len();
        // Reconstruct the first candidate's credit from the nearest
        // cheap anchor — `cbase` plus whole-frame `frame_delta` sums
        // up to the frame boundary, then a short `cdelta` walk to the
        // candidate (usually a handful of slots past `cp` or the
        // frame start) — instead of an O(log window) Fenwick descent.
        let base = if frame == head { self.cp } else { frame * fq };
        let mut idx = self.ring(base);
        let mut credit = 0;
        if !self.params.sink {
            let m = self.frame_delta.len();
            credit = self.cbase;
            let mut gi = (head % m as u64) as usize;
            for _ in head..frame {
                credit += self.frame_delta[gi];
                gi += 1;
                if gi == m {
                    gi = 0;
                }
            }
            // `cdelta[ring(cp)]` is zero by invariant, so starting
            // the inclusive walk at `base` is exact for both anchors.
            credit += self.cdelta[idx];
            let mut s = base;
            while s < candidate {
                s += 1;
                idx += 1;
                if idx == w {
                    idx = 0;
                }
                credit += self.cdelta[idx];
            }
            debug_assert_eq!(
                credit,
                self.credit_value(candidate),
                "incremental credit walk diverged from the Fenwick credit"
            );
        } else {
            idx = self.ring(candidate);
        }
        loop {
            if !self.busy[idx] && (self.params.sink || credit > 0) {
                return Some(candidate);
            }
            candidate += 1;
            if candidate >= end {
                return None;
            }
            idx += 1;
            if idx == w {
                idx = 0;
            }
            if !self.params.sink {
                credit += self.cdelta[idx];
            }
        }
    }

    /// Algorithm 1 with Condition (1): attempts to schedule one
    /// quantum of `flow` departing at or after slot `earliest`.
    ///
    /// On success the slot is marked busy, the credit suffix is
    /// consumed, the pending entry is recorded, and `C_ij` is charged
    /// one quantum. On failure (`None`) the flow's reservations in
    /// the current window are exhausted; the caller should retry
    /// after the scheduler becomes dirty again (head-frame advance,
    /// credit return, slot completion, or reset).
    ///
    /// # Panics
    ///
    /// Panics if `flow` was not registered at construction.
    pub fn schedule(&mut self, flow: FlowId, earliest: u64, entry: PendingQuantum) -> Option<u64> {
        let head = self.head_frame();
        let window = self.params.frame_window as u64;
        let q = self.params.flits_per_quantum;
        // Lazy catch-up for flows that slept through recycles or a
        // local reset.
        self.normalize_flow(flow);
        // Same-flow bookings must be strictly increasing (in-order
        // delivery of a flow's quanta over this link).
        let earliest = earliest.max(self.flows[flow.index()].last_slot + 1);
        loop {
            let st = self.flows[flow.index()];
            if st.c_flits > 0 && self.condition1(st.frame) {
                if let Some(slot) = self.try_find(st.frame, earliest) {
                    let idx = self.ring(slot);
                    self.busy[idx] = true;
                    self.frame_busy[(st.frame % window) as usize] += 1;
                    if !self.params.sink {
                        self.consume_credit(slot, st.frame);
                    }
                    let st = &mut self.flows[flow.index()];
                    st.c_flits = st.c_flits.saturating_sub(q);
                    st.last_slot = slot;
                    let at = self
                        .pending
                        .binary_search_by_key(&slot, |&(s, _)| s)
                        .expect_err("slot double-booked");
                    self.pending.insert(at, (slot, entry));
                    self.fresh = false;
                    return Some(slot);
                }
            }
            // Advance the injection frame, yielding the unused
            // reservation to `skipped` (Section 4.2).
            let st = &mut self.flows[flow.index()];
            if st.frame + 1 < head + window {
                let yielded_quanta = st.c_flits / q;
                self.skipped[(st.frame % window) as usize] += yielded_quanta;
                st.frame += 1;
                st.c_flits = st.r_flits;
            } else {
                self.dirty = false;
                return None;
            }
        }
    }

    /// Consumes one unit of virtual credit from `slot` to the end of
    /// the window (a quantum will occupy the downstream buffer from
    /// its arrival until its — yet unknown — departure). `frame` is
    /// the absolute frame containing `slot` (the caller knows it).
    fn consume_credit(&mut self, slot: u64, frame: u64) {
        debug_assert!(slot >= self.cp && slot < self.cp + self.params.window_quanta());
        debug_assert_eq!(frame, slot / self.params.frame_quanta as u64);
        // Decrementing the suffix `credit(slot..)` is one point
        // update in the difference representation.
        if slot == self.cp {
            self.cbase -= 1;
        } else {
            let idx = self.ring(slot);
            self.cdelta[idx] -= 1;
            self.ctree_add(idx, -1);
            let m = self.frame_delta.len() as u64;
            self.frame_delta[(frame % m) as usize] -= 1;
        }
    }

    /// Returns one unit of virtual credit from `slot` onward: the
    /// downstream scheduler committed to freeing the buffer at
    /// `slot`.
    pub fn return_credit(&mut self, slot: u64) {
        if self.params.sink {
            return;
        }
        let start = slot.max(self.cp);
        if start == self.cp {
            self.cbase += 1;
        } else if start < self.cp + self.params.window_quanta() {
            let idx = self.ring(start);
            self.cdelta[idx] += 1;
            self.ctree_add(idx, 1);
            let frame = start / self.params.frame_quanta as u64;
            let m = self.frame_delta.len() as u64;
            self.frame_delta[(frame % m) as usize] += 1;
        }
        // A return beyond the window is dropped, exactly like the
        // paper's bounded table: the slot is not representable yet.
        self.dirty = true;
    }

    /// Marks the pending quantum at `slot` as forwarded: clears its
    /// busy flag (freeing the slot for rescheduling — this is how
    /// speculative switching reclaims bandwidth) and removes the
    /// pending entry.
    ///
    /// # Panics
    ///
    /// Panics if no quantum is pending at `slot`.
    pub fn complete(&mut self, slot: u64) -> PendingQuantum {
        let at = self
            .pending
            .binary_search_by_key(&slot, |&(s, _)| s)
            .expect("completing a slot with no pending quantum");
        let (_, entry) = self.pending.remove(at);
        if slot >= self.cp && slot < self.cp + self.params.window_quanta() {
            let idx = self.ring(slot);
            if self.busy[idx] {
                self.busy[idx] = false;
                let fq = self.params.frame_quanta as u64;
                let wf = self.params.frame_window as u64;
                self.frame_busy[((slot / fq) % wf) as usize] -= 1;
            }
        }
        self.dirty = true;
        entry
    }

    /// Whether a local status reset is allowed from the scheduler's
    /// perspective: nothing is scheduled and unforwarded. (The
    /// network additionally checks that the downstream
    /// non-speculative buffer is empty.)
    pub fn can_reset(&self) -> bool {
        self.pending.is_empty()
    }

    /// Local status reset (Section 4.3.2): restores every credit to
    /// the full buffer size, clears busy flags and `skipped`, and
    /// gives every flow a fresh full reservation in the head frame.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called while quanta are pending.
    pub fn local_reset(&mut self) {
        debug_assert!(self.can_reset(), "reset with scheduled quanta pending");
        self.cbase = self.params.buffer_quanta as i64;
        self.cdelta.fill(0);
        self.ctree.fill(0);
        self.ctotal = 0;
        for b in self.busy.iter_mut() {
            *b = false;
        }
        self.frame_busy.fill(0);
        self.frame_delta.fill(0);
        for s in self.skipped.iter_mut() {
            *s = 0;
        }
        // Flow entries refresh lazily: bumping the epoch invalidates
        // all of them at once (see `normalize_flow`).
        self.reset_epoch += 1;
        self.resets += 1;
        self.dirty = true;
        self.fresh = true;
    }

    /// Whether the scheduler is already in its power-up/reset state
    /// (no booking has happened since the last reset), making another
    /// reset a no-op.
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// Remaining reservation (flits) of a flow in its current
    /// injection frame — for tests and diagnostics.
    pub fn remaining_reservation(&self, flow: FlowId) -> u32 {
        let st = self.flows[flow.index()];
        if st.epoch != self.reset_epoch || st.frame < self.head_frame() {
            st.r_flits // stale entry: reads as a fresh full reservation
        } else {
            st.c_flits
        }
    }

    /// The flow's current absolute injection frame.
    pub fn injection_frame(&self, flow: FlowId) -> u64 {
        let st = self.flows[flow.index()];
        if st.epoch != self.reset_epoch {
            self.head_frame()
        } else {
            st.frame.max(self.head_frame())
        }
    }

    /// Smallest credit anywhere in the window — Theorem I says this
    /// never goes negative when the buffer covers a full frame.
    pub fn min_credit(&self) -> i64 {
        // Diagnostic-only: walk the window accumulating deltas.
        let mut value = self.cbase;
        let mut min = value;
        for s in self.cp + 1..self.cp + self.params.window_quanta() {
            value += self.cdelta[self.ring(s)];
            min = min.min(value);
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-like small setup: F = 4 slots/frame, WF = 4, 1-flit
    /// quanta, buffer of 4 (the Section 4.2 example).
    fn paper_params() -> LsfParams {
        LsfParams {
            frame_quanta: 4,
            frame_window: 4,
            flits_per_quantum: 1,
            buffer_quanta: 4,
            sink: false,
        }
    }

    fn entry(flow: u32, qid: u64) -> PendingQuantum {
        PendingQuantum {
            flow: FlowId::new(flow),
            qid,
            in_port: 0,
            res_idx: 0,
        }
    }

    #[test]
    fn schedules_in_priority_order() {
        let mut s = LinkScheduler::new(paper_params(), &[2, 2]);
        // First two quanta of flow 0 land in frame 0 (slots 1, 2 —
        // candidate starts at CP+1).
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 0)), Some(1));
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 1)), Some(2));
        assert_eq!(s.remaining_reservation(FlowId::new(0)), 0);
        // Flow 1 still fits in frame 0 (slot 3).
        assert_eq!(s.schedule(FlowId::new(1), 0, entry(1, 0)), Some(3));
    }

    #[test]
    fn condition1_blocks_overbooking_the_anomaly_example() {
        // Section 4.2: flow ij exhausts frame 0, then cannot inject
        // into frame 1 because the consumed credits have not
        // returned; it must skip to frame 2, and flow mn can still
        // use the imminent slot without buffer underflow.
        let mut s = LinkScheduler::new(paper_params(), &[2, 2]);
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 0)), Some(1));
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 1)), Some(2));
        // No credits returned yet: credit(slot ≥ 2) = 2.
        // Flow ij's next quantum: frame 0 exhausted (C = 0); frame 1
        // fails Condition (1): F − skipped(1) = 4 > credit(3) = 2.
        // Frame 2 also fails: credit(7) = 2. Frame 3: credit(11) = 2.
        // All frames blocked → None, and the skipped counters
        // recorded the yielded reservations.
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 2)), None);
        // Now the downstream returns the two credits (it scheduled
        // departures at slots 3 and 4).
        s.return_credit(3);
        s.return_credit(4);
        // Flow ij already yielded frames 1–2 (skipped = 2 each) and
        // sits at frame 3, which now satisfies Condition (1).
        let slot = s.schedule(FlowId::new(0), 0, entry(0, 2)).unwrap();
        assert!(slot >= 12, "slot {slot} should be in frame 3");
        // Flow mn can still take the imminent slot 3 in frame 0 —
        // and the credit there never went negative.
        assert_eq!(s.schedule(FlowId::new(1), 0, entry(1, 0)), Some(3));
        assert!(s.min_credit() >= 0, "Theorem I violated");
    }

    #[test]
    fn skipped_counter_accumulates_yielded_reservations() {
        let mut s = LinkScheduler::new(paper_params(), &[2, 2]);
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 0)), Some(1));
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 1)), Some(2));
        // Exhausts everything; frames 1, 2 each get skipped += 2.
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 2)), None);
        assert_eq!(s.skipped[1], 2);
        assert_eq!(s.skipped[2], 2);
    }

    #[test]
    fn quota_enforced_per_frame() {
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 2,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        let mut s = LinkScheduler::new(params, &[3]);
        let mut frame0 = 0;
        for qid in 0..6 {
            if let Some(slot) = s.schedule(FlowId::new(0), 0, entry(0, qid)) {
                if slot < 8 {
                    frame0 += 1;
                }
            }
        }
        // R = 3 flits: at most 3 quanta in frame 0.
        assert_eq!(frame0, 3);
    }

    #[test]
    fn head_frame_advance_refreshes_quota() {
        let params = paper_params();
        let mut s = LinkScheduler::new(params, &[2]);
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 0)), Some(1));
        assert_eq!(s.schedule(FlowId::new(0), 0, entry(0, 1)), Some(2));
        assert_eq!(s.remaining_reservation(FlowId::new(0)), 0);
        // Cross a frame boundary: 4 slots.
        for _ in 0..4 {
            s.advance_slot();
        }
        assert_eq!(s.head_frame(), 1);
        // Note the flow's IF was already at frame 0 == old head;
        // Algorithm 3 moved it up and refreshed C.
        assert_eq!(s.remaining_reservation(FlowId::new(0)), 2);
        assert_eq!(s.injection_frame(FlowId::new(0)), 1);
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut s = LinkScheduler::new(paper_params(), &[4]);
        let slot = s.schedule(FlowId::new(0), 6, entry(0, 0)).unwrap();
        assert!(slot >= 6);
        // Slot 6 is in frame 1; frame 0's quota was spent advancing.
        assert_eq!(s.injection_frame(FlowId::new(0)), 1);
    }

    #[test]
    fn busy_slots_are_skipped() {
        let mut s = LinkScheduler::new(paper_params(), &[2, 2]);
        assert_eq!(s.schedule(FlowId::new(0), 1, entry(0, 0)), Some(1));
        assert_eq!(s.schedule(FlowId::new(1), 1, entry(1, 0)), Some(2));
        assert_eq!(s.schedule(FlowId::new(0), 1, entry(0, 1)), Some(3));
    }

    #[test]
    fn complete_clears_busy_and_pending() {
        let mut s = LinkScheduler::new(paper_params(), &[2, 2]);
        let slot = s.schedule(FlowId::new(0), 0, entry(0, 0)).unwrap();
        assert!(s.busy_at(slot));
        assert_eq!(s.first_pending().unwrap().0, slot);
        let e = s.complete(slot);
        assert_eq!(e.qid, 0);
        assert!(!s.busy_at(slot));
        assert!(s.can_reset());
        // The freed slot can be re-booked by another flow (bandwidth
        // reclamation); the same flow must book a later slot to keep
        // its quanta in order.
        assert_eq!(s.schedule(FlowId::new(1), 0, entry(1, 0)), Some(slot));
        let next = s.schedule(FlowId::new(0), 0, entry(0, 1)).unwrap();
        assert!(next > slot);
    }

    #[test]
    fn local_reset_restores_everything() {
        let mut s = LinkScheduler::new(paper_params(), &[2]);
        let slot = s.schedule(FlowId::new(0), 0, entry(0, 0)).unwrap();
        s.complete(slot);
        let slot2 = s.schedule(FlowId::new(0), 0, entry(0, 1)).unwrap();
        assert!(slot2 > slot, "same-flow bookings stay ordered");
        s.complete(slot2);
        assert_eq!(s.remaining_reservation(FlowId::new(0)), 0);
        assert!(s.can_reset());
        s.local_reset();
        assert_eq!(s.remaining_reservation(FlowId::new(0)), 2);
        assert_eq!(s.min_credit(), 4);
        assert_eq!(s.resets(), 1);
    }

    #[test]
    fn sink_ignores_credits() {
        let params = LsfParams {
            sink: true,
            ..paper_params()
        };
        let mut s = LinkScheduler::new(params, &[4]);
        // Far more quanta than the (never consulted) credits.
        for qid in 0..4 {
            assert!(s.schedule(FlowId::new(0), 0, entry(0, qid)).is_some());
        }
    }

    #[test]
    fn window_ring_wraps_correctly() {
        let mut s = LinkScheduler::new(paper_params(), &[16]);
        // Advance deep into absolute time; schedule and verify slots
        // are always within the live window.
        for _ in 0..1_000 {
            s.advance_slot();
        }
        let cp = s.current_slot();
        let slot = s.schedule(FlowId::new(0), 0, entry(0, 0)).unwrap();
        assert!(slot > cp && slot < cp + 16);
        assert!(s.busy_at(slot));
    }

    #[test]
    fn credit_return_unclogs_stalled_flow_dirty_flag() {
        let mut s = LinkScheduler::new(paper_params(), &[1]);
        assert!(s.schedule(FlowId::new(0), 0, entry(0, 0)).is_some());
        // The un-returned credit makes Condition (1) fail for every
        // later frame, so the flow stalls after one quantum.
        let mut scheduled = 1;
        while s.schedule(FlowId::new(0), 0, entry(0, scheduled)).is_some() {
            scheduled += 1;
            assert!(scheduled < 64, "runaway scheduling");
        }
        assert!(!s.take_dirty());
        // Downstream commits to a departure: credit returns, the
        // scheduler turns dirty, and the retry succeeds.
        s.return_credit(2);
        assert!(s.take_dirty());
        assert!(s.schedule(FlowId::new(0), 0, entry(0, scheduled)).is_some());
    }

    /// A fresh scheduler jumped `k` slots must be indistinguishable
    /// from one advanced `k` times — same clock, same head frame, same
    /// dirty flag, and the same slot granted to the next booking.
    #[test]
    fn fresh_fast_forward_matches_stepped_advance() {
        for pre in [0u64, 1, 3, 5] {
            for k in [1u64, 2, 4, 7, 16, 100, 1_003] {
                let mut stepped = LinkScheduler::new(paper_params(), &[2, 2]);
                for _ in 0..pre {
                    stepped.advance_slot();
                }
                let mut jumped = stepped.clone();
                for _ in 0..k {
                    stepped.advance_slot();
                }
                jumped.fast_forward_slots(k);
                assert_eq!(
                    stepped.current_slot(),
                    jumped.current_slot(),
                    "pre={pre} k={k}"
                );
                assert_eq!(stepped.head_frame(), jumped.head_frame(), "pre={pre} k={k}");
                assert_eq!(stepped.take_dirty(), jumped.take_dirty(), "pre={pre} k={k}");
                assert_eq!(
                    stepped.schedule(FlowId::new(0), 0, entry(0, 0)),
                    jumped.schedule(FlowId::new(0), 0, entry(0, 0)),
                    "pre={pre} k={k}"
                );
            }
        }
    }

    /// Theorem I as an executable check: with buffer = F and
    /// Condition (1), credits never go negative no matter how late
    /// the downstream returns them.
    #[test]
    fn theorem1_credits_never_negative_under_stress() {
        use noc_sim::rng::Xoshiro256;
        let params = LsfParams {
            frame_quanta: 8,
            frame_window: 3,
            flits_per_quantum: 1,
            buffer_quanta: 8,
            sink: false,
        };
        let mut rng = Xoshiro256::seed_from(2024);
        let mut s = LinkScheduler::new(params, &[3, 3, 2]);
        // Arrival slots whose credits have not been returned yet.
        let mut outstanding: Vec<u64> = Vec::new();
        let mut qid = 0;
        for _ in 0..20_000 {
            // Random action mix: schedule, return a credit, advance.
            match rng.next_below(4) {
                0 | 1 => {
                    let flow = FlowId::new(rng.next_below(3) as u32);
                    if let Some(slot) = s.schedule(
                        flow,
                        s.current_slot() + 1,
                        PendingQuantum {
                            flow,
                            qid,
                            in_port: 0,
                            res_idx: 0,
                        },
                    ) {
                        outstanding.push(slot);
                        s.complete(slot);
                        qid += 1;
                    }
                }
                2 => {
                    if !outstanding.is_empty() {
                        let i = rng.next_below(outstanding.len() as u64) as usize;
                        let arr = outstanding.swap_remove(i);
                        // Downstream departs some slots after arrival.
                        let dep = arr + 1 + rng.next_below(6);
                        s.return_credit(dep);
                    }
                }
                _ => s.advance_slot(),
            }
            assert!(
                s.min_credit() >= 0,
                "Theorem I violated: negative virtual credit"
            );
        }
    }
}
