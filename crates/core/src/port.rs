//! The FRS data-plane input port: buffers plus the input reservation
//! table (paper Section 4.2).
//!
//! Each router input port holds a **non-speculative** buffer (space
//! guaranteed by the virtual-credit discipline of [`crate::lsf`]), a
//! small **speculative** buffer for early out-of-order quanta, and the
//! reservation table a look-ahead flit writes on arrival: which output
//! port its data quantum will take ([`Expect`]) and — once booked —
//! in which slot. A quantum becomes *ready* when it has physically
//! arrived and its onward slot is booked; ready quanta are indexed per
//! output port, ordered by booked slot, so the speculative arbiter can
//! find the earliest candidate in O(log n).

use std::collections::BTreeSet;

use noc_sim::fabric::PORTS;
use noc_sim::FxHashMap;

/// A quantum's identity: `(flow, qid)`.
pub(crate) type QKey = (u32, u64);

/// Reservation-table entry written by a look-ahead flit on arrival.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Expect {
    /// Output port the quantum will depart through.
    pub out_port: u8,
    /// Departure slot, once the look-ahead has booked one here.
    pub dep_slot: Option<u64>,
}

/// A data quantum sitting in one of the port's buffers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Arrived {
    /// Whether it occupies the speculative buffer.
    pub spec: bool,
}

/// Input-port state of a data router: buffers + input reservation
/// table.
#[derive(Debug)]
pub(crate) struct DataPort {
    /// Free slots in the non-speculative buffer.
    pub nonspec_free: i64,
    /// Free slots in the speculative buffer.
    pub spec_free: i64,
    /// Quanta physically present in the buffers.
    pub arrived: FxHashMap<QKey, Arrived>,
    /// The input reservation table.
    pub expect: FxHashMap<QKey, Expect>,
    /// Arrived quanta with a booked departure, per output port,
    /// ordered by booked slot: `(dep_slot, flow, qid)`.
    pub ready: Vec<BTreeSet<(u64, u32, u64)>>,
}

impl DataPort {
    pub fn new(nonspec: i64, spec: i64) -> Self {
        DataPort {
            nonspec_free: nonspec,
            spec_free: spec,
            arrived: FxHashMap::default(),
            expect: FxHashMap::default(),
            ready: vec![BTreeSet::new(); PORTS],
        }
    }

    /// Indexes the quantum as ready if it has both arrived and been
    /// booked an onward slot.
    pub fn mark_ready_if_complete(&mut self, key: QKey) {
        if let (Some(e), true) = (self.expect.get(&key), self.arrived.contains_key(&key)) {
            if let Some(dep) = e.dep_slot {
                self.ready[e.out_port as usize].insert((dep, key.0, key.1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_requires_arrival_and_booking() {
        let mut p = DataPort::new(4, 2);
        let key: QKey = (0, 7);
        p.expect.insert(
            key,
            Expect {
                out_port: 1,
                dep_slot: None,
            },
        );
        p.mark_ready_if_complete(key);
        assert!(p.ready[1].is_empty(), "not arrived, not booked");
        p.arrived.insert(key, Arrived { spec: false });
        p.mark_ready_if_complete(key);
        assert!(p.ready[1].is_empty(), "arrived but not booked");
        p.expect.get_mut(&key).unwrap().dep_slot = Some(9);
        p.mark_ready_if_complete(key);
        assert_eq!(p.ready[1].iter().next(), Some(&(9, 0, 7)));
    }
}
