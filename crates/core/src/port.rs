//! The FRS data-plane input port: buffers plus the input reservation
//! table (paper Section 4.2).
//!
//! Each router input port holds a **non-speculative** buffer (space
//! guaranteed by the virtual-credit discipline of [`crate::lsf`]), a
//! small **speculative** buffer for early out-of-order quanta, and the
//! reservation table a look-ahead flit writes on arrival: which output
//! port its data quantum will take ([`Expect`]) and — once booked —
//! in which slot. A quantum becomes *ready* when it has physically
//! arrived and its onward slot is booked; ready quanta are indexed per
//! output port so the speculative arbiter can find the earliest
//! candidate. The per-port ready sets are tiny (bounded by the input
//! buffer depth), so they are plain vectors with a linear minimum scan
//! — no tree nodes to allocate and free every booking.

use noc_sim::fabric::PORTS;
use noc_sim::slab::PacketRef;
use noc_sim::FxHashMap;

/// A quantum's identity: `(flow, qid)`.
pub(crate) type QKey = (u32, u64);

/// Reservation-table entry written by a look-ahead flit on arrival.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Expect {
    /// Output port the quantum will depart through.
    pub out_port: u8,
    /// Departure slot, once the look-ahead has booked one here.
    pub dep_slot: Option<u64>,
}

/// A data quantum sitting in one of the port's buffers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Arrived {
    /// Whether it occupies the speculative buffer.
    pub spec: bool,
    /// Handle of the owning packet (for ejection accounting).
    pub pref: PacketRef,
}

/// Input-port state of a data router: buffers + input reservation
/// table.
#[derive(Debug)]
pub(crate) struct DataPort {
    /// Free slots in the non-speculative buffer.
    pub nonspec_free: i64,
    /// Free slots in the speculative buffer.
    pub spec_free: i64,
    /// Quanta physically present in the buffers.
    pub arrived: FxHashMap<QKey, Arrived>,
    /// The input reservation table.
    pub expect: FxHashMap<QKey, Expect>,
    /// Arrived quanta with a booked departure, per output port, as
    /// `(dep_slot, flow, qid)`; unordered, min cached because the
    /// speculative arbiter reads it every slot while entries change
    /// only when quanta arrive or forward.
    ready: Vec<ReadySet>,
}

/// One output port's ready set with its cached minimum. Entries are
/// unique `(dep_slot, flow, qid)` tuples, so the minimum is
/// storage-order independent and the cache is deterministic.
#[derive(Debug, Default)]
struct ReadySet {
    items: Vec<(u64, u32, u64)>,
    min: Option<(u64, u32, u64)>,
}

impl ReadySet {
    fn push(&mut self, e: (u64, u32, u64)) {
        self.items.push(e);
        if self.min.is_none_or(|m| e < m) {
            self.min = Some(e);
        }
    }

    fn remove(&mut self, e: (u64, u32, u64)) {
        if let Some(i) = self.items.iter().position(|&x| x == e) {
            self.items.swap_remove(i);
            // The speculative arbiter almost always removes the
            // minimum itself, so the rescan runs once per forwarded
            // quantum rather than once per arbitration read.
            if self.min == Some(e) {
                self.min = self.items.iter().min().copied();
            }
        }
    }
}

impl DataPort {
    pub fn new(nonspec: i64, spec: i64) -> Self {
        let cap = (nonspec + spec) as usize;
        DataPort {
            nonspec_free: nonspec,
            spec_free: spec,
            arrived: FxHashMap::default(),
            expect: FxHashMap::default(),
            ready: (0..PORTS)
                .map(|_| ReadySet {
                    items: Vec::with_capacity(cap),
                    min: None,
                })
                .collect(),
        }
    }

    /// Records a booked departure slot for `key` (the reservation
    /// entry must exist) and indexes the quantum as ready if it has
    /// already arrived — one reservation-table lookup instead of the
    /// write-then-[`Self::mark_ready_if_complete`] pair.
    ///
    /// # Panics
    ///
    /// Panics if no reservation entry exists for `key`.
    pub fn record_booking(&mut self, key: QKey, slot: u64) {
        let e = self
            .expect
            .get_mut(&key)
            .expect("look-ahead flit wrote its expectation on arrival");
        e.dep_slot = Some(slot);
        let out = e.out_port as usize;
        if self.arrived.contains_key(&key) {
            self.ready[out].push((slot, key.0, key.1));
        }
    }

    /// Records a physical arrival for `key` and indexes the quantum
    /// as ready if its onward slot is already booked — skips the
    /// arrival-presence re-check of [`Self::mark_ready_if_complete`].
    ///
    /// # Panics
    ///
    /// Debug builds panic if the quantum already arrived.
    pub fn record_arrival(&mut self, key: QKey, arr: Arrived) {
        let prev = self.arrived.insert(key, arr);
        debug_assert!(prev.is_none(), "quantum delivered twice");
        if let Some(e) = self.expect.get(&key) {
            if let Some(dep) = e.dep_slot {
                self.ready[e.out_port as usize].push((dep, key.0, key.1));
            }
        }
    }

    /// The ready quantum with the earliest booked slot for `out`
    /// (ties broken by `(flow, qid)` — entries are unique, so the
    /// minimum is storage-order independent).
    #[inline]
    pub fn ready_min(&self, out: usize) -> Option<(u64, u32, u64)> {
        self.ready[out].min
    }

    /// Unindexes a ready quantum (it forwarded or ejected).
    #[inline]
    pub fn ready_remove(&mut self, out: usize, entry: (u64, u32, u64)) {
        self.ready[out].remove(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
    use noc_sim::slab::PacketStore;

    fn some_pref() -> PacketRef {
        let mut store = PacketStore::new();
        store.insert(Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq: 0,
            },
            NodeId::new(0),
            NodeId::new(1),
            4,
            0,
        ))
    }

    #[test]
    fn ready_requires_arrival_and_booking() {
        let mut p = DataPort::new(4, 2);
        let key: QKey = (0, 7);
        p.expect.insert(
            key,
            Expect {
                out_port: 1,
                dep_slot: None,
            },
        );
        p.record_arrival(
            key,
            Arrived {
                spec: false,
                pref: some_pref(),
            },
        );
        assert!(p.ready_min(1).is_none(), "arrived but not booked");
        p.record_booking(key, 9);
        assert_eq!(p.ready_min(1), Some((9, 0, 7)));
        p.ready_remove(1, (9, 0, 7));
        assert!(p.ready_min(1).is_none());
    }

    #[test]
    fn booking_before_arrival_defers_readiness() {
        let mut p = DataPort::new(4, 2);
        let key: QKey = (3, 1);
        p.expect.insert(
            key,
            Expect {
                out_port: 4,
                dep_slot: None,
            },
        );
        p.record_booking(key, 12);
        assert!(p.ready_min(4).is_none(), "booked but not arrived");
        p.record_arrival(
            key,
            Arrived {
                spec: true,
                pref: some_pref(),
            },
        );
        assert_eq!(p.ready_min(4), Some((12, 3, 1)));
    }

    #[test]
    fn ready_min_is_order_independent() {
        let mut p = DataPort::new(8, 2);
        for (dep, qid) in [(9u64, 1u64), (3, 2), (7, 3)] {
            let key: QKey = (0, qid);
            p.expect.insert(
                key,
                Expect {
                    out_port: 2,
                    dep_slot: Some(dep),
                },
            );
            p.record_arrival(
                key,
                Arrived {
                    spec: false,
                    pref: some_pref(),
                },
            );
        }
        assert_eq!(p.ready_min(2), Some((3, 0, 2)));
        p.ready_remove(2, (3, 0, 2));
        assert_eq!(p.ready_min(2), Some((7, 0, 3)));
    }
}
