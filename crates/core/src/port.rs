//! The FRS data-plane input port: buffers plus the input reservation
//! table (paper Section 4.2).
//!
//! Each router input port holds a **non-speculative** buffer (space
//! guaranteed by the virtual-credit discipline of [`crate::lsf`]), a
//! small **speculative** buffer for early out-of-order quanta, and the
//! reservation table a look-ahead flit writes on arrival: which output
//! port its data quantum will take and — once booked — in which slot.
//!
//! # Dense slot store
//!
//! The table is a *slot-indexed store*, not a hash map: a look-ahead
//! arrival allocates the lowest free slot in a fixed entry array and
//! hands the slot index ([`ResIdx`]) back to the caller, who threads
//! it through the look-ahead flit and the link scheduler's pending
//! entry. Every hot operation — recording a booking, the emergent
//! present-check, and the forward/release path — is then a direct
//! array index. The only keyed lookup left is matching a *data*
//! arrival to its reservation (the quantum and its look-ahead travel
//! different wires, so the arrival carries no slot index); those
//! entries sit in a small sorted `(key, slot)` index with binary
//! search. A data quantum that outruns its look-ahead (possible under
//! extreme timing configurations) parks in an `orphans` side list that
//! is empty in practice.
//!
//! A quantum becomes *ready* when it has physically arrived and its
//! onward slot is booked; ready quanta are indexed per output port as
//! bitmasks over store slots with a cached minimum, so the speculative
//! arbiter reads its earliest candidate in O(1) and pays a mask rescan
//! only when the cached minimum itself forwards.

use noc_sim::fabric::PORTS;
use noc_sim::slab::PacketRef;

/// A quantum's identity: `(flow, qid)`.
pub(crate) type QKey = (u32, u64);

/// Index of a reservation entry inside one port's slot store.
pub(crate) type ResIdx = u16;

/// One reservation-store entry: the union of the old reservation
/// table (`out_port`, `dep_slot`) and arrival (`spec`, `pref`) state.
#[derive(Debug, Clone, Copy)]
struct ResEntry {
    /// The quantum this entry belongs to.
    key: QKey,
    /// Output port the quantum will depart through (valid iff
    /// `expected`).
    out_port: u8,
    /// Whether a look-ahead flit wrote this entry (the normal case;
    /// false only for orphaned early data arrivals).
    expected: bool,
    /// Whether the quantum occupies the speculative buffer.
    spec: bool,
    /// Departure slot, once the look-ahead has booked one here.
    dep_slot: Option<u64>,
    /// Handle of the owning packet; `Some` iff the quantum has
    /// physically arrived.
    pref: Option<PacketRef>,
}

/// Input-port state of a data router: buffers + input reservation
/// table.
#[derive(Debug)]
pub(crate) struct DataPort {
    /// Free slots in the non-speculative buffer.
    pub nonspec_free: i64,
    /// Free slots in the speculative buffer.
    pub spec_free: i64,
    /// The slot store. Entries are reused; `free` tracks vacancy.
    entries: Vec<ResEntry>,
    /// Bitmask over `entries`: bit set = slot free.
    free: Vec<u64>,
    /// Sorted `(key, slot)` index over entries awaiting their data
    /// arrival (`expected && pref.is_none()`).
    pending_arrival: Vec<(QKey, ResIdx)>,
    /// Entries whose data arrived before the look-ahead
    /// (`!expected`); unsorted, empty in practice.
    orphans: Vec<(QKey, ResIdx)>,
    /// Quanta physically present in the buffers (`pref.is_some()`).
    arrived_count: u32,
    /// Arrived quanta with a booked departure, per output port.
    ready: [ReadySet; PORTS],
}

/// One output port's ready set: a bitmask over store slots with the
/// cached minimum by `(dep_slot, flow, qid)`. Ranks are unique, so
/// the minimum is storage-order independent and deterministic.
#[derive(Debug, Default, Clone)]
struct ReadySet {
    mask: Vec<u64>,
    /// `(rank, slot)` of the minimum entry, if any.
    min: Option<((u64, u32, u64), ResIdx)>,
}

impl ReadySet {
    #[inline]
    fn insert(&mut self, slot: ResIdx, rank: (u64, u32, u64)) {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        debug_assert_eq!(self.mask[w] & (1 << b), 0, "ready slot indexed twice");
        self.mask[w] |= 1 << b;
        if self.min.is_none_or(|(m, _)| rank < m) {
            self.min = Some((rank, slot));
        }
    }

    #[inline]
    fn remove(&mut self, slot: ResIdx, entries: &[ResEntry]) {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        debug_assert_ne!(self.mask[w] & (1 << b), 0, "removing unindexed slot");
        self.mask[w] &= !(1 << b);
        // The speculative arbiter almost always removes the minimum
        // itself, so the rescan runs once per forwarded quantum
        // rather than once per arbitration read.
        if self.min.is_some_and(|(_, s)| s == slot) {
            self.min = self.rescan(entries);
        }
    }

    /// Minimum over all set bits, reading ranks from the store.
    fn rescan(&self, entries: &[ResEntry]) -> Option<((u64, u32, u64), ResIdx)> {
        let mut best: Option<((u64, u32, u64), ResIdx)> = None;
        for (w, &word) in self.mask.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let slot = (w * 64 + m.trailing_zeros() as usize) as ResIdx;
                m &= m - 1;
                let e = &entries[slot as usize];
                let rank = (
                    e.dep_slot.expect("ready entries are booked"),
                    e.key.0,
                    e.key.1,
                );
                if best.is_none_or(|(b, _)| rank < b) {
                    best = Some((rank, slot));
                }
            }
        }
        best
    }
}

impl Clone for DataPort {
    /// Capacity-preserving (see [`noc_sim::checkpoint::clone_vec`]):
    /// the slot store and its indexes churn every cycle at their
    /// warmup high-water size, and forked runs must inherit that
    /// capacity rather than re-pay the growth.
    fn clone(&self) -> Self {
        DataPort {
            nonspec_free: self.nonspec_free,
            spec_free: self.spec_free,
            entries: noc_sim::checkpoint::clone_vec(&self.entries),
            free: noc_sim::checkpoint::clone_vec(&self.free),
            pending_arrival: noc_sim::checkpoint::clone_vec(&self.pending_arrival),
            orphans: noc_sim::checkpoint::clone_vec(&self.orphans),
            arrived_count: self.arrived_count,
            ready: self.ready.clone(),
        }
    }
}

impl DataPort {
    /// A port with the given buffer depths whose slot store starts at
    /// `capacity` entries. The store grows (amortized, rare) if the
    /// resident-quanta bound ever exceeds the initial capacity.
    pub fn new(nonspec: i64, spec: i64, capacity: usize) -> Self {
        let cap = capacity.max(1);
        assert!(cap <= ResIdx::MAX as usize, "slot store capacity overflow");
        let words = cap.div_ceil(64);
        let mut free = vec![!0u64; words];
        // Mask off the bits past `cap` so allocation never hands out
        // a slot with no entry behind it.
        if !cap.is_multiple_of(64) {
            free[words - 1] = (1u64 << (cap % 64)) - 1;
        }
        DataPort {
            nonspec_free: nonspec,
            spec_free: spec,
            entries: vec![
                ResEntry {
                    key: (0, 0),
                    out_port: 0,
                    expected: false,
                    spec: false,
                    dep_slot: None,
                    pref: None,
                };
                cap
            ],
            free,
            pending_arrival: Vec::with_capacity(cap.min(64)),
            orphans: Vec::new(),
            arrived_count: 0,
            ready: std::array::from_fn(|_| ReadySet {
                mask: vec![0u64; words],
                min: None,
            }),
        }
    }

    /// Allocates the lowest free slot, growing the store if full.
    fn alloc(&mut self, entry: ResEntry) -> ResIdx {
        for (w, word) in self.free.iter_mut().enumerate() {
            if *word != 0 {
                let b = word.trailing_zeros() as usize;
                *word &= *word - 1;
                let slot = w * 64 + b;
                self.entries[slot] = entry;
                return slot as ResIdx;
            }
        }
        // Store full: grow by one slot (and a mask word per 64).
        let slot = self.entries.len();
        assert!(slot < ResIdx::MAX as usize, "slot store capacity overflow");
        self.entries.push(entry);
        if slot.is_multiple_of(64) {
            self.free.push(0);
            for r in &mut self.ready {
                r.mask.push(0);
            }
        }
        slot as ResIdx
    }

    /// Records a look-ahead arrival: writes the reservation entry for
    /// `key` departing through `out_port` and returns its slot index,
    /// which the caller threads through the look-ahead flit and the
    /// scheduler's pending entry for O(1) access later.
    pub fn la_arrive(&mut self, key: QKey, out_port: u8) -> ResIdx {
        // A data quantum that outran its look-ahead already holds a
        // slot; adopt it instead of allocating a duplicate.
        if !self.orphans.is_empty() {
            if let Some(i) = self.orphans.iter().position(|&(k, _)| k == key) {
                let (_, slot) = self.orphans.swap_remove(i);
                let e = &mut self.entries[slot as usize];
                e.out_port = out_port;
                e.expected = true;
                return slot;
            }
        }
        let slot = self.alloc(ResEntry {
            key,
            out_port,
            expected: true,
            spec: false,
            dep_slot: None,
            pref: None,
        });
        let at = self
            .pending_arrival
            .binary_search_by_key(&key, |&(k, _)| k)
            .expect_err("look-ahead delivered twice for one quantum");
        self.pending_arrival.insert(at, (key, slot));
        slot
    }

    /// Records a booked departure slot on reservation entry `idx` and
    /// indexes the quantum as ready if it has already arrived.
    pub fn record_booking(&mut self, idx: ResIdx, key: QKey, slot: u64) {
        let e = &mut self.entries[idx as usize];
        debug_assert_eq!(e.key, key, "booking handle points at a foreign entry");
        debug_assert!(e.expected, "booking without a reservation");
        debug_assert!(e.dep_slot.is_none(), "double booking");
        e.dep_slot = Some(slot);
        if e.pref.is_some() {
            let out = e.out_port as usize;
            self.ready[out].insert(idx, (slot, key.0, key.1));
        }
    }

    /// Records a physical arrival for `key` and indexes the quantum
    /// as ready if its onward slot is already booked.
    pub fn record_arrival(&mut self, key: QKey, spec: bool, pref: PacketRef) {
        self.arrived_count += 1;
        match self.pending_arrival.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                let (_, slot) = self.pending_arrival.remove(i);
                let e = &mut self.entries[slot as usize];
                debug_assert!(e.pref.is_none(), "quantum delivered twice");
                e.spec = spec;
                e.pref = Some(pref);
                if let Some(dep) = e.dep_slot {
                    let out = e.out_port as usize;
                    self.ready[out].insert(slot, (dep, key.0, key.1));
                }
            }
            Err(_) => {
                // Data outran the look-ahead: park the arrival until
                // the reservation is written.
                let slot = self.alloc(ResEntry {
                    key,
                    out_port: 0,
                    expected: false,
                    spec,
                    dep_slot: None,
                    pref: Some(pref),
                });
                self.orphans.push((key, slot));
            }
        }
    }

    /// Whether the quantum behind reservation entry `idx` has
    /// physically arrived (the emergent present-check).
    #[inline]
    pub fn arrived_at(&self, idx: ResIdx, key: QKey) -> bool {
        let e = &self.entries[idx as usize];
        debug_assert_eq!(e.key, key, "pending handle points at a foreign entry");
        e.pref.is_some()
    }

    /// Quanta physically present in the buffers.
    #[cfg(debug_assertions)]
    pub fn arrived_len(&self) -> usize {
        self.arrived_count as usize
    }

    /// The ready quantum with the earliest booked slot for `out`, as
    /// `(dep_slot, flow, qid, store slot)` — ties broken by
    /// `(flow, qid)`; ranks are unique, so the minimum is
    /// storage-order independent.
    #[inline]
    pub fn ready_min(&self, out: usize) -> Option<(u64, u32, u64, ResIdx)> {
        self.ready[out]
            .min
            .map(|((dep, f, q), slot)| (dep, f, q, slot))
    }

    /// Releases reservation entry `idx` on forward/ejection: removes
    /// it from its output's ready set and frees the slot. Returns
    /// `(spec, pref)` of the arrived quantum.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not an arrived, booked quantum.
    pub fn release(&mut self, idx: ResIdx, key: QKey, dep: u64) -> (bool, PacketRef) {
        let e = self.entries[idx as usize];
        debug_assert_eq!(e.key, key, "release handle points at a foreign entry");
        debug_assert_eq!(e.dep_slot, Some(dep), "release with a stale booking");
        let pref = e.pref.expect("forwarded quantum present");
        assert!(e.expected, "forwarded quantum expected");
        self.ready[e.out_port as usize].remove(idx, &self.entries);
        self.arrived_count -= 1;
        self.entries[idx as usize].pref = None;
        self.free[idx as usize / 64] |= 1 << (idx as usize % 64);
        (e.spec, pref)
    }

    /// Full cross-check of the store's redundant structures (debug
    /// builds): the sorted arrival index, the orphan list, the ready
    /// masks, their cached minima, and the occupancy/arrival counts
    /// must all agree with a naive scan over the entries.
    #[cfg(debug_assertions)]
    pub fn debug_verify(&self) {
        let mut arrived = 0u32;
        let mut ready = vec![Vec::new(); PORTS];
        for (slot, e) in self.entries.iter().enumerate() {
            let free = self.free[slot / 64] & (1 << (slot % 64)) != 0;
            let live = e.pref.is_some() || (e.expected && !free);
            if free {
                continue;
            }
            if e.pref.is_some() {
                arrived += 1;
            }
            debug_assert!(live, "occupied slot {slot} holds no live entry");
            if e.expected && e.pref.is_none() {
                debug_assert!(
                    self.pending_arrival
                        .binary_search_by_key(&e.key, |&(k, _)| k)
                        .is_ok_and(|i| self.pending_arrival[i].1 as usize == slot),
                    "awaiting-arrival entry {slot} missing from the index"
                );
            }
            if !e.expected {
                debug_assert!(
                    self.orphans
                        .iter()
                        .any(|&(k, s)| k == e.key && s as usize == slot),
                    "orphan entry {slot} missing from the orphan list"
                );
            }
            if e.expected && e.pref.is_some() {
                if let Some(dep) = e.dep_slot {
                    ready[e.out_port as usize].push(((dep, e.key.0, e.key.1), slot as ResIdx));
                }
            }
        }
        debug_assert_eq!(self.arrived_count, arrived, "arrived_count drifted");
        debug_assert!(
            self.pending_arrival.windows(2).all(|w| w[0].0 < w[1].0),
            "arrival index unsorted"
        );
        for (out, want) in ready.iter().enumerate() {
            let got = self.ready[out].rescan(&self.entries);
            debug_assert_eq!(
                got,
                want.iter().min().copied(),
                "ready mask minimum drifted at out {out}"
            );
            debug_assert_eq!(
                self.ready[out].min, got,
                "cached minimum stale at out {out}"
            );
            let popcount: u32 = self.ready[out].mask.iter().map(|w| w.count_ones()).sum();
            debug_assert_eq!(
                popcount as usize,
                want.len(),
                "ready mask size at out {out}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
    use noc_sim::slab::PacketStore;

    fn some_pref() -> PacketRef {
        let mut store = PacketStore::new();
        store.insert(Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq: 0,
            },
            NodeId::new(0),
            NodeId::new(1),
            4,
            0,
        ))
    }

    #[test]
    fn ready_requires_arrival_and_booking() {
        let mut p = DataPort::new(4, 2, 8);
        let key: QKey = (0, 7);
        let idx = p.la_arrive(key, 1);
        p.record_arrival(key, false, some_pref());
        assert!(p.ready_min(1).is_none(), "arrived but not booked");
        p.record_booking(idx, key, 9);
        assert_eq!(p.ready_min(1), Some((9, 0, 7, idx)));
        let (spec, _) = p.release(idx, key, 9);
        assert!(!spec);
        assert!(p.ready_min(1).is_none());
        p.debug_verify();
    }

    #[test]
    fn booking_before_arrival_defers_readiness() {
        let mut p = DataPort::new(4, 2, 8);
        let key: QKey = (3, 1);
        let idx = p.la_arrive(key, 4);
        p.record_booking(idx, key, 12);
        assert!(p.ready_min(4).is_none(), "booked but not arrived");
        p.record_arrival(key, true, some_pref());
        assert!(p.arrived_at(idx, key));
        assert_eq!(p.ready_min(4), Some((12, 3, 1, idx)));
        p.debug_verify();
    }

    #[test]
    fn ready_min_is_order_independent() {
        let mut p = DataPort::new(8, 2, 8);
        let mut idxs = Vec::new();
        for (dep, qid) in [(9u64, 1u64), (3, 2), (7, 3)] {
            let key: QKey = (0, qid);
            let idx = p.la_arrive(key, 2);
            p.record_booking(idx, key, dep);
            p.record_arrival(key, false, some_pref());
            idxs.push((key, idx, dep));
        }
        let (key, idx, dep) = idxs[1];
        assert_eq!(p.ready_min(2), Some((3, 0, 2, idx)));
        let _ = p.release(idx, key, dep);
        assert_eq!(p.ready_min(2), Some((7, 0, 3, idxs[2].1)));
        p.debug_verify();
    }

    #[test]
    fn early_data_parks_until_lookahead_arrives() {
        let mut p = DataPort::new(4, 2, 8);
        let key: QKey = (5, 0);
        p.record_arrival(key, true, some_pref());
        p.debug_verify();
        let idx = p.la_arrive(key, 3);
        assert!(p.arrived_at(idx, key), "orphan adopted on look-ahead");
        p.record_booking(idx, key, 4);
        assert_eq!(p.ready_min(3), Some((4, 5, 0, idx)));
        p.debug_verify();
    }

    /// Seeded random op-sequence equivalence against a naive list
    /// model: `ready_min` and `arrived_at` must agree with a full
    /// scan after every operation, across orphan adoption, store
    /// growth, and slot reuse.
    #[test]
    fn slot_store_matches_naive_reference_under_random_ops() {
        #[derive(Clone)]
        struct Ref {
            key: QKey,
            idx: Option<ResIdx>,
            out_port: u8,
            expected: bool,
            dep: Option<u64>,
            /// `Some(spec)` once the data quantum arrived.
            arrived: Option<bool>,
        }
        let mut state = 0x0DDB1A5E5BAD5EEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Tiny initial store: the run must outgrow it repeatedly.
        let mut p = DataPort::new(64, 64, 4);
        let mut model: Vec<Ref> = Vec::new();
        let mut next_qid = 0u64;
        let mut next_dep = 0u64;
        for step in 0..4_000u32 {
            match rng() % 6 {
                // Look-ahead arrival: adopt an orphan or open a fresh
                // reservation.
                0 | 1 => {
                    let out = (rng() % PORTS as u64) as u8;
                    let orphan = model.iter().position(|r| !r.expected);
                    if let Some(i) = orphan.filter(|_| rng() % 2 == 0) {
                        let key = model[i].key;
                        model[i].idx = Some(p.la_arrive(key, out));
                        model[i].out_port = out;
                        model[i].expected = true;
                    } else {
                        let key: QKey = ((rng() % 3) as u32, next_qid);
                        next_qid += 1;
                        model.push(Ref {
                            key,
                            idx: Some(p.la_arrive(key, out)),
                            out_port: out,
                            expected: true,
                            dep: None,
                            arrived: None,
                        });
                    }
                }
                // Booking on a random unbooked reservation.
                2 => {
                    let pick = (rng() % 4) as usize;
                    if let Some(r) = model
                        .iter_mut()
                        .filter(|r| r.expected && r.dep.is_none())
                        .nth(pick)
                    {
                        let dep = next_dep;
                        next_dep += 1;
                        p.record_booking(r.idx.unwrap(), r.key, dep);
                        r.dep = Some(dep);
                    }
                }
                // Data arrival: for a pending reservation, or early
                // (an orphan with a brand-new key).
                3 => {
                    let spec = rng() % 2 == 0;
                    if rng() % 4 == 0 {
                        let key: QKey = ((rng() % 3) as u32, next_qid);
                        next_qid += 1;
                        p.record_arrival(key, spec, some_pref());
                        model.push(Ref {
                            key,
                            idx: None,
                            out_port: 0,
                            expected: false,
                            dep: None,
                            arrived: Some(spec),
                        });
                    } else {
                        let pick = (rng() % 4) as usize;
                        if let Some(r) = model
                            .iter_mut()
                            .filter(|r| r.expected && r.arrived.is_none())
                            .nth(pick)
                        {
                            p.record_arrival(r.key, spec, some_pref());
                            r.arrived = Some(spec);
                        }
                    }
                }
                // Forward/eject a random ready quantum.
                _ => {
                    let pick = (rng() % 4) as usize;
                    let ready = (0..model.len()).filter(|&i| {
                        let r = &model[i];
                        r.expected && r.dep.is_some() && r.arrived.is_some()
                    });
                    if let Some(i) = ready.clone().nth(pick.min(ready.count().saturating_sub(1))) {
                        let r = model.swap_remove(i);
                        let (spec, _) = p.release(r.idx.unwrap(), r.key, r.dep.unwrap());
                        assert_eq!(spec, r.arrived.unwrap(), "spec flag corrupted");
                    }
                }
            }
            // The store must agree with a full scan of the model.
            for out in 0..PORTS {
                let want = model
                    .iter()
                    .filter(|r| {
                        r.expected
                            && r.out_port as usize == out
                            && r.dep.is_some()
                            && r.arrived.is_some()
                    })
                    .map(|r| (r.dep.unwrap(), r.key.0, r.key.1, r.idx.unwrap()))
                    .min();
                assert_eq!(p.ready_min(out), want, "ready_min diverged at step {step}");
            }
            for r in &model {
                if let Some(idx) = r.idx {
                    assert_eq!(p.arrived_at(idx, r.key), r.arrived.is_some());
                }
            }
            if step % 64 == 0 {
                p.debug_verify();
            }
        }
        assert!(p.entries.len() > 4, "the run should outgrow the store");
    }

    #[test]
    fn slots_are_reused_and_store_grows_past_capacity() {
        let mut p = DataPort::new(64, 2, 2);
        // Fill past the initial capacity; every entry stays reachable.
        let mut idxs = Vec::new();
        for qid in 0..70u64 {
            let key: QKey = (1, qid);
            let idx = p.la_arrive(key, 0);
            p.record_booking(idx, key, qid);
            p.record_arrival(key, false, some_pref());
            idxs.push(idx);
        }
        p.debug_verify();
        assert_eq!(p.ready_min(0), Some((0, 1, 0, idxs[0])));
        for qid in 0..70u64 {
            let got = p.ready_min(0).expect("entries remain");
            assert_eq!(got.0, qid, "minima leave in booked order");
            let _ = p.release(got.3, (got.1, got.2), got.0);
        }
        assert!(p.ready_min(0).is_none());
        // Freed slots are allocated again, lowest first.
        let idx = p.la_arrive((2, 0), 0);
        assert_eq!(idx, 0);
        p.debug_verify();
    }
}
