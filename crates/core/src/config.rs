//! Configuration of the LOFT network.

use noc_sim::routing::Routing;
use noc_sim::topology::Topology;

/// Parameters of a [`crate::LoftNetwork`].
///
/// Defaults follow Table 1 of the paper:
///
/// * frame size `F` = 256 flits, frame window `WF` = 2,
/// * data flits are moved as 2-flit *quanta* (one look-ahead flit per
///   quantum), so the output reservation tables hold
///   `F/2 × WF = 256` quantum slots,
/// * the central (non-speculative) input buffer is as deep as one
///   frame (256 flits), which eliminates the output scheduling
///   anomaly (Theorem I of the paper),
/// * the speculative buffer is 0–16 flits (the paper sweeps this),
/// * both the look-ahead and the data routers have 3 pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoftConfig {
    /// Topology to build.
    pub topo: Topology,
    /// Routing algorithm.
    pub routing: Routing,
    /// Frame size `F` in flits.
    pub frame_size: u32,
    /// Frame window `WF` (number of frames in flight per link).
    pub frame_window: u32,
    /// Flits per data quantum (each look-ahead flit schedules one
    /// quantum in its entirety).
    pub flits_per_quantum: u32,
    /// Depth of the central non-speculative buffer per input port, in
    /// flits. Must be at least `frame_size` for the paper's
    /// anomaly-freedom guarantee.
    pub nonspec_buffer: u32,
    /// Depth of the speculative buffer per input port, in flits
    /// (0 disables all Section 4.3 optimizations).
    pub spec_buffer: u32,
    /// Cycles for a data quantum to go from switch traversal at one
    /// router to buffer availability at the next.
    pub hop_latency: u64,
    /// Cycles per hop on the look-ahead network (3-stage router).
    pub la_hop_latency: u64,
    /// Hardware capacity of each look-ahead router output port, in
    /// look-ahead flits (3 VCs × 4 flits in Table 1). Used by the
    /// storage model and Table 1 reporting; the simulator models the
    /// equivalent per-flow virtual-channel windows via
    /// [`LoftConfig::la_flow_window`] instead.
    pub la_queue_capacity: usize,
    /// Maximum look-ahead flits a single flow may have in flight in
    /// the look-ahead network (its virtual-channel window). Bounds
    /// per-flow pile-up at contended schedulers and provides source
    /// throttling.
    pub la_flow_window: u32,
    /// Enable speculative flit switching (Section 4.3.1).
    pub speculative_switching: bool,
    /// Enable local status reset (Section 4.3.2).
    pub local_status_reset: bool,
    /// Shards stepped concurrently in the parallelizable phases of a
    /// cycle (1 = single-threaded). Results are bit-identical at
    /// every value; see `noc_sim::par`.
    pub threads: usize,
}

impl LoftConfig {
    /// The default configuration on a custom topology.
    pub fn on(topo: Topology) -> Self {
        LoftConfig {
            topo,
            ..Self::default()
        }
    }

    /// The paper's configuration with a given speculative buffer size
    /// in flits (`spec=N` in Figure 11). `spec = 0` also turns off
    /// speculative switching and local status reset, matching the
    /// paper's statement that "setting the speculative buffer size to
    /// 0 is equivalent to turning off all optimizations".
    pub fn with_spec_buffer(spec_flits: u32) -> Self {
        LoftConfig {
            spec_buffer: spec_flits,
            speculative_switching: spec_flits > 0,
            local_status_reset: spec_flits > 0,
            ..Self::default()
        }
    }

    /// A scaled-down configuration for fast tests (4×4 mesh, 64-flit
    /// frames).
    pub fn small() -> Self {
        LoftConfig {
            topo: Topology::mesh(4, 4),
            frame_size: 64,
            nonspec_buffer: 64,
            ..Self::default()
        }
    }

    /// Frame size in quantum slots.
    pub fn frame_quanta(&self) -> u32 {
        self.frame_size / self.flits_per_quantum
    }

    /// Reservation-table size: quantum slots in the whole time window
    /// (`F × WF / flits_per_quantum`; 256 with Table 1 values).
    pub fn window_quanta(&self) -> u32 {
        self.frame_quanta() * self.frame_window
    }

    /// Non-speculative buffer capacity in quanta.
    pub fn nonspec_quanta(&self) -> u32 {
        self.nonspec_buffer / self.flits_per_quantum
    }

    /// Speculative buffer capacity in quanta.
    pub fn spec_quanta(&self) -> u32 {
        self.spec_buffer / self.flits_per_quantum
    }

    /// Slots between a quantum's departure at one router and the
    /// earliest slot it can depart the next router.
    pub fn dep_offset(&self) -> u64 {
        let q = self.flits_per_quantum as u64;
        (self.hop_latency + q) / q
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the frame size is not a positive multiple of the
    /// quantum size, the window is empty, or the non-speculative
    /// buffer is smaller than a frame (which would reintroduce the
    /// output scheduling anomaly).
    pub fn validate(&self) {
        assert!(self.flits_per_quantum > 0, "quantum must hold flits");
        assert!(
            self.frame_size > 0 && self.frame_size.is_multiple_of(self.flits_per_quantum),
            "frame size must be a positive multiple of the quantum size"
        );
        assert!(self.frame_window > 0, "frame window must be positive");
        assert!(
            self.nonspec_buffer >= self.frame_size,
            "non-speculative buffer must cover a full frame (Theorem I)"
        );
        assert!(
            self.spec_buffer.is_multiple_of(self.flits_per_quantum),
            "speculative buffer must be a multiple of the quantum size"
        );
        assert!(self.hop_latency >= 1 && self.la_hop_latency >= 1);
    }
}

impl Default for LoftConfig {
    fn default() -> Self {
        LoftConfig {
            topo: Topology::mesh(8, 8),
            routing: Routing::XY,
            frame_size: 256,
            frame_window: 2,
            flits_per_quantum: 2,
            nonspec_buffer: 256,
            spec_buffer: 12,
            hop_latency: 3,
            la_hop_latency: 3,
            la_queue_capacity: 12,
            la_flow_window: 16,
            speculative_switching: true,
            local_status_reset: true,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = LoftConfig::default();
        c.validate();
        assert_eq!(c.frame_size, 256);
        assert_eq!(c.frame_window, 2);
        assert_eq!(c.frame_quanta(), 128);
        assert_eq!(c.window_quanta(), 256); // reservation table size
        assert_eq!(c.nonspec_quanta(), 128);
        assert_eq!(c.spec_quanta(), 6); // 12 flits
    }

    #[test]
    fn spec_zero_disables_optimizations() {
        let c = LoftConfig::with_spec_buffer(0);
        c.validate();
        assert!(!c.speculative_switching);
        assert!(!c.local_status_reset);
        let c = LoftConfig::with_spec_buffer(8);
        assert!(c.speculative_switching);
        assert!(c.local_status_reset);
    }

    #[test]
    fn dep_offset_rounds_up() {
        let c = LoftConfig::default();
        assert_eq!(c.dep_offset(), 2); // (3 + 2) / 2
        let c = LoftConfig {
            hop_latency: 1,
            ..LoftConfig::default()
        };
        assert_eq!(c.dep_offset(), 1);
    }

    #[test]
    #[should_panic(expected = "Theorem I")]
    fn small_nonspec_buffer_rejected() {
        LoftConfig {
            nonspec_buffer: 128,
            ..LoftConfig::default()
        }
        .validate();
    }
}
