//! Randomized tests for the GSF network: conservation, frame-quota
//! enforcement, and recycling liveness under random workloads (cases
//! drawn from the workspace's deterministic RNG).

use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::rng::Xoshiro256;
use noc_sim::{Network, Topology};

fn small_cfg() -> GsfConfig {
    GsfConfig {
        topo: Topology::mesh(4, 4),
        frame_size: 200,
        ..GsfConfig::default()
    }
}

#[test]
fn every_packet_delivered_exactly_once() {
    let mut rng = Xoshiro256::seed_from(0x65F_0001);
    for _case in 0..48 {
        let entries = 1 + rng.next_below(29) as usize;
        let mut flows: Vec<(u32, u32)> = Vec::new();
        let mut next_seq: Vec<u64> = Vec::new();
        let mut packets = Vec::new();
        for _ in 0..entries {
            let a = rng.next_below(16) as u32;
            let b = rng.next_below(16) as u32;
            let count = 1 + rng.next_below(11);
            if a == b {
                continue;
            }
            let fid = flows.iter().position(|&p| p == (a, b)).unwrap_or_else(|| {
                flows.push((a, b));
                next_seq.push(0);
                flows.len() - 1
            });
            for _ in 0..count {
                let seq = next_seq[fid];
                next_seq[fid] += 1;
                packets.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(fid as u32),
                        seq,
                    },
                    NodeId::new(a),
                    NodeId::new(b),
                    4,
                    0,
                ));
            }
        }
        if flows.is_empty() {
            continue;
        }
        let reservations = vec![20u32; flows.len()];
        let mut net = GsfNetwork::new(small_cfg(), &reservations);
        let expected = packets.len();
        for p in packets {
            net.enqueue(p);
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 1_000_000, "network failed to drain");
        }
        assert_eq!(out.len(), expected);
        let mut seen = std::collections::HashSet::new();
        for p in &out {
            assert!(seen.insert(p.id));
            let (_, dst) = flows[p.id.flow.index()];
            assert_eq!(p.dst, NodeId::new(dst));
        }
    }
}

/// The head frame always makes progress: recycles keep happening
/// as long as traffic drains (liveness of the barrier).
#[test]
fn recycling_is_live() {
    let mut rng = Xoshiro256::seed_from(0x65F_0002);
    for _case in 0..24 {
        let backlog = 1 + rng.next_below(59);
        let mut net = GsfNetwork::new(small_cfg(), &[8]);
        for seq in 0..backlog {
            net.enqueue(Packet::new(
                PacketId {
                    flow: FlowId::new(0),
                    seq,
                },
                NodeId::new(0),
                NodeId::new(15),
                4,
                0,
            ));
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 500_000);
        }
        // 8-flit quota = 2 packets per frame: a backlog of n packets
        // needs at least n/2 - window shifts.
        let min_recycles = (backlog / 2).saturating_sub(6);
        assert!(
            net.recycles() >= min_recycles,
            "only {} recycles for backlog {}",
            net.recycles(),
            backlog
        );
    }
}
