//! Configuration of the GSF network.

use noc_sim::routing::Routing;
use noc_sim::topology::Topology;

/// Parameters of a [`crate::GsfNetwork`].
///
/// Defaults follow Table 1 of the LOFT paper (which in turn uses the
/// parameters suggested by the GSF and PVC papers): 6 VCs of 5 flits,
/// frame size 2000 flits, frame window 6, 16-cycle barrier delay, and
/// a 2000-flit source queue per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GsfConfig {
    /// Topology to build.
    pub topo: Topology,
    /// Routing algorithm.
    pub routing: Routing,
    /// Virtual channels per input port.
    pub num_vcs: usize,
    /// Buffer depth of each virtual channel, in flits.
    pub vc_capacity: usize,
    /// Frame size in flits (`F`).
    pub frame_size: u32,
    /// Number of simultaneously active frames (`W`).
    pub frame_window: u32,
    /// Cycles for the barrier network to detect an empty head frame
    /// and broadcast the window shift.
    pub barrier_delay: u64,
    /// Cycles from switch traversal at one router to buffer write at
    /// the next (router pipeline + link traversal).
    pub hop_latency: u64,
    /// Cycles for a credit to return upstream.
    pub credit_delay: u64,
    /// Nominal source-queue capacity in flits (GSF needs it as large
    /// as a frame). Only used by the storage model; the simulator
    /// queues are unbounded so overload shows up as latency.
    pub source_queue_flits: u32,
    /// Shards stepped concurrently each cycle (1 = single-threaded).
    /// Results are bit-identical at every value; see `noc_sim::par`.
    pub threads: usize,
}

impl GsfConfig {
    /// The default configuration on a custom topology.
    pub fn on(topo: Topology) -> Self {
        GsfConfig {
            topo,
            ..Self::default()
        }
    }

    /// A scaled-down configuration for fast tests: small frames and
    /// a 4×4 mesh.
    pub fn small() -> Self {
        GsfConfig {
            topo: Topology::mesh(4, 4),
            frame_size: 200,
            ..Self::default()
        }
    }
}

impl Default for GsfConfig {
    fn default() -> Self {
        GsfConfig {
            topo: Topology::mesh(8, 8),
            routing: Routing::XY,
            num_vcs: 6,
            vc_capacity: 5,
            frame_size: 2000,
            frame_window: 6,
            barrier_delay: 16,
            hop_latency: 3,
            credit_delay: 3,
            source_queue_flits: 2000,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GsfConfig::default();
        assert_eq!(c.num_vcs, 6);
        assert_eq!(c.vc_capacity, 5);
        assert_eq!(c.frame_size, 2000);
        assert_eq!(c.frame_window, 6);
        assert_eq!(c.barrier_delay, 16);
        assert_eq!(c.source_queue_flits, 2000);
    }

    #[test]
    fn small_shrinks_mesh_and_frames() {
        let c = GsfConfig::small();
        assert_eq!(c.topo.num_nodes(), 16);
        assert_eq!(c.frame_size, 200);
    }
}
