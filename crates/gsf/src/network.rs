//! The GSF network model.
//!
//! Structurally this is a credit-based VC wormhole network (see
//! `noc-wormhole`) with three GSF-specific changes:
//!
//! 1. **Source framing** — each packet is stamped with the earliest
//!    active frame in which its flow still has quota; a flow whose
//!    quota is exhausted in every active frame stalls at the source.
//! 2. **Frame-priority arbitration** — both VC allocation and switch
//!    allocation prefer flits of older frames.
//! 3. **Strict VC separation** — a virtual channel is reallocated
//!    only after it has completely drained (credits fully returned),
//!    so flits of different packets never share a VC. This models the
//!    flow-control inefficiency the paper's Figure 6 attributes to
//!    GSF.
//!
//! The head frame is recycled by a modeled barrier network: once no
//! flit of the oldest frame remains in the network, the window slides
//! after `barrier_delay` cycles. While the barrier is in flight the
//! head frame is closed to new injections.

use std::collections::{BTreeMap, VecDeque};

use noc_sim::flit::{FlitKind, FlowId, NodeId, Packet, PacketId};
use noc_sim::routing::Direction;
use noc_sim::{ActiveSet, FxHashMap, Network};

use crate::config::GsfConfig;

const PORTS: usize = Direction::COUNT;
const LOCAL: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Flit {
    id: PacketId,
    dst: NodeId,
    kind: FlitKind,
    frame: u64,
}

#[derive(Debug, Default)]
struct VcBuf {
    q: VecDeque<Flit>,
    route: Option<usize>,
    out_vc: Option<usize>,
}

impl VcBuf {
    fn frame(&self) -> Option<u64> {
        self.q.front().map(|f| f.frame)
    }
}

#[derive(Debug)]
struct Router {
    inputs: Vec<Vec<VcBuf>>,
    /// Downstream VC ownership; `None` = free.
    out_owner: Vec<Vec<Option<(usize, usize)>>>,
    /// Tail already forwarded, VC still draining: not yet reusable.
    out_draining: Vec<Vec<bool>>,
    credits: Vec<Vec<u32>>,
    rr_sa: [usize; PORTS],
}

impl Router {
    fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        Router {
            inputs: (0..PORTS)
                .map(|_| (0..num_vcs).map(|_| VcBuf::default()).collect())
                .collect(),
            out_owner: vec![vec![None; num_vcs]; PORTS],
            out_draining: vec![vec![false; num_vcs]; PORTS],
            credits: vec![vec![vc_capacity as u32; num_vcs]; PORTS],
            rr_sa: [0; PORTS],
        }
    }
}

/// Per-flow GSF injection state (quota tracking).
#[derive(Debug, Clone)]
struct FlowInj {
    reservation: u32,
    inject_frame: u64,
    remaining: u32,
}

#[derive(Debug)]
struct Nic {
    /// Frame-tagged packets awaiting streaming, ordered by (frame,
    /// arrival sequence) — GSF streams oldest frames first.
    tagged: BTreeMap<(u64, u64), PacketId>,
    /// Packets that could not be tagged yet (every active frame's
    /// quota exhausted), per flow, FIFO.
    untagged: FxHashMap<u32, VecDeque<PacketId>>,
    current: Option<Streaming>,
    credits: Vec<u32>,
    owned: Vec<bool>,
    draining: Vec<bool>,
    rr: usize,
    eject_progress: FxHashMap<PacketId, u16>,
}

#[derive(Debug)]
struct Streaming {
    id: PacketId,
    dst: NodeId,
    len: u16,
    pos: u16,
    vc: usize,
    frame: u64,
}

/// The Globally-Synchronized Frames network.
///
/// Construct with [`GsfNetwork::new`], providing per-flow frame
/// reservations in flits (usually from
/// [`noc_traffic::Scenario::reservations`] with the configured
/// [`GsfConfig::frame_size`]).
#[derive(Debug)]
pub struct GsfNetwork {
    cfg: GsfConfig,
    cycle: u64,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    flows: Vec<FlowInj>,
    wires: Vec<VecDeque<(u64, usize, Flit)>>,
    credit_events: VecDeque<(u64, usize, usize, usize)>,
    inflight: FxHashMap<PacketId, Packet>,
    /// Frame tag of every tagged, not-yet-fully-ejected packet.
    packet_frame: FxHashMap<PacketId, u64>,
    /// Flits alive (tagged and not yet ejected) per frame. The head
    /// frame can only be recycled once this reaches zero — including
    /// flits still waiting in source queues, which is what couples
    /// the whole network to its slowest region.
    frame_alive: FxHashMap<u64, u32>,
    /// Arrival sequence counter for FIFO tie-breaks within a frame.
    tag_seq: u64,
    head_frame: u64,
    barrier_due: Option<u64>,
    /// Number of completed window shifts (for tests/diagnostics).
    recycles: u64,
    /// Flits forwarded per output link, index `node * 5 + port`.
    forwarded: Vec<u64>,
    /// Wires with queued flits, index `node * 5 + port`.
    wire_work: ActiveSet,
    /// NICs with a packet streaming or tagged backlog.
    nic_work: ActiveSet,
    /// Routers with at least one buffered input flit.
    router_work: ActiveSet,
    /// Buffered input flits per router (maintains `router_work`).
    buffered: Vec<u32>,
}

impl GsfNetwork {
    /// Builds the network for flows with the given per-frame
    /// reservations (flits per frame, indexed by flow id).
    ///
    /// # Panics
    ///
    /// Panics if any reservation is zero or exceeds the frame size.
    pub fn new(cfg: GsfConfig, reservations: &[u32]) -> Self {
        let n = cfg.topo.num_nodes();
        let flows = reservations
            .iter()
            .map(|&r| {
                assert!(r > 0, "reservations must be positive");
                assert!(r <= cfg.frame_size, "reservation exceeds frame size");
                FlowInj {
                    reservation: r,
                    inject_frame: 0,
                    remaining: r,
                }
            })
            .collect();
        GsfNetwork {
            routers: (0..n)
                .map(|_| Router::new(cfg.num_vcs, cfg.vc_capacity))
                .collect(),
            nics: (0..n)
                .map(|_| Nic {
                    tagged: BTreeMap::new(),
                    untagged: FxHashMap::default(),
                    current: None,
                    credits: vec![cfg.vc_capacity as u32; cfg.num_vcs],
                    owned: vec![false; cfg.num_vcs],
                    draining: vec![false; cfg.num_vcs],
                    rr: 0,
                    eject_progress: FxHashMap::default(),
                })
                .collect(),
            flows,
            wires: vec![VecDeque::new(); n * PORTS],
            credit_events: VecDeque::new(),
            inflight: FxHashMap::default(),
            packet_frame: FxHashMap::default(),
            frame_alive: FxHashMap::default(),
            tag_seq: 0,
            head_frame: 0,
            barrier_due: None,
            recycles: 0,
            forwarded: vec![0; n * PORTS],
            wire_work: ActiveSet::new(n * PORTS),
            nic_work: ActiveSet::new(n),
            router_work: ActiveSet::new(n),
            buffered: vec![0; n],
            cycle: 0,
            cfg,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &GsfConfig {
        &self.cfg
    }

    /// Current head (oldest active) frame number.
    pub fn head_frame(&self) -> u64 {
        self.head_frame
    }

    /// Completed global window shifts so far.
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.forwarded[node.index() * PORTS + dir.index()]
    }

    fn deliver_arrivals(&mut self, now: u64) {
        let mut cursor = 0;
        while let Some(widx) = self.wire_work.first_from(cursor) {
            cursor = widx + 1;
            let node = widx / PORTS;
            let port = widx % PORTS;
            let wire = &mut self.wires[widx];
            while wire.front().is_some_and(|&(t, _, _)| t <= now) {
                let (_, vc, flit) = wire.pop_front().expect("checked front");
                let buf = &mut self.routers[node].inputs[port][vc];
                debug_assert!(
                    buf.q.len() < self.cfg.vc_capacity,
                    "credit protocol violated: buffer overflow"
                );
                debug_assert!(
                    buf.q.iter().all(|f| f.id == flit.id) || buf.q.is_empty(),
                    "GSF forbids mixing packets in one VC"
                );
                buf.q.push_back(flit);
                self.buffered[node] += 1;
                self.router_work.insert(node);
            }
            if wire.is_empty() {
                self.wire_work.remove(widx);
            }
        }
    }

    fn apply_credits(&mut self, now: u64) {
        while self.credit_events.front().is_some_and(|&(t, ..)| t <= now) {
            let (_, node, port, vc) = self.credit_events.pop_front().expect("checked front");
            if port == LOCAL {
                self.nics[node].credits[vc] += 1;
                if self.nics[node].draining[vc]
                    && self.nics[node].credits[vc] == self.cfg.vc_capacity as u32
                {
                    self.nics[node].draining[vc] = false;
                    self.nics[node].owned[vc] = false;
                }
            } else {
                let r = &mut self.routers[node];
                r.credits[port][vc] += 1;
                if r.out_draining[port][vc] && r.credits[port][vc] == self.cfg.vc_capacity as u32 {
                    r.out_draining[port][vc] = false;
                    r.out_owner[port][vc] = None;
                }
            }
        }
    }

    /// Picks the frame for the next packet of `flow`, consuming quota.
    /// Returns `None` when every active frame is exhausted (stall).
    fn claim_frame(&mut self, flow: FlowId, len: u16) -> Option<u64> {
        let head = self.head_frame;
        let window = self.cfg.frame_window as u64;
        // While the barrier is in flight the head frame is closed.
        let earliest = if self.barrier_due.is_some() {
            head + 1
        } else {
            head
        };
        let st = &mut self.flows[flow.index()];
        if st.inject_frame < earliest {
            st.inject_frame = earliest;
            st.remaining = st.reservation;
        }
        loop {
            // A reservation smaller than one packet would deadlock the
            // flow; allow a full-quota frame to emit one packet anyway.
            let fits = st.remaining >= len as u32
                || (st.remaining == st.reservation && st.reservation < len as u32);
            if fits {
                st.remaining = st.remaining.saturating_sub(len as u32);
                return Some(st.inject_frame);
            }
            if st.inject_frame + 1 < head + window {
                st.inject_frame += 1;
                st.remaining = st.reservation;
            } else {
                return None;
            }
        }
    }

    /// Tags a freshly enqueued or previously untagged packet with the
    /// earliest active frame that has quota, charging the flow's
    /// reservation and registering its flits as alive in that frame.
    fn tag_packet(&mut self, pid: PacketId) -> bool {
        let (len, node) = {
            let p = &self.inflight[&pid];
            (p.len_flits, p.src.index())
        };
        let Some(frame) = self.claim_frame(pid.flow, len) else {
            return false;
        };
        self.packet_frame.insert(pid, frame);
        *self.frame_alive.entry(frame).or_insert(0) += len as u32;
        let seq = self.tag_seq;
        self.tag_seq += 1;
        self.nics[node].tagged.insert((frame, seq), pid);
        self.nic_work.insert(node);
        true
    }

    /// After a window shift, untagged backlog may fit the fresh frame.
    fn retag_backlog(&mut self) {
        for node in 0..self.nics.len() {
            let mut flows: Vec<u32> = self.nics[node].untagged.keys().copied().collect();
            // Hash-map key order is arbitrary; sort so the retag (and
            // hence frame-tag sequence) order is deterministic.
            flows.sort_unstable();
            for fid in flows {
                while let Some(&pid) = self.nics[node].untagged.get(&fid).and_then(|q| q.front()) {
                    if !self.tag_packet(pid) {
                        break;
                    }
                    let q = self.nics[node]
                        .untagged
                        .get_mut(&fid)
                        .expect("queue exists");
                    q.pop_front();
                    if q.is_empty() {
                        self.nics[node].untagged.remove(&fid);
                    }
                }
            }
        }
    }

    fn nic_inject(&mut self, now: u64) {
        let mut cursor = 0;
        while let Some(node) = self.nic_work.first_from(cursor) {
            cursor = node + 1;
            if self.nics[node].current.is_none() {
                let nic = &self.nics[node];
                if let Some((&(frame, seq), &pid)) = nic.tagged.iter().next() {
                    let vc = (0..self.cfg.num_vcs)
                        .map(|k| (nic.rr + k) % self.cfg.num_vcs)
                        .find(|&v| !nic.owned[v]);
                    if let Some(vc) = vc {
                        let (dst, len) = {
                            let p = &self.inflight[&pid];
                            (p.dst, p.len_flits)
                        };
                        let nic = &mut self.nics[node];
                        nic.tagged.remove(&(frame, seq));
                        nic.owned[vc] = true;
                        nic.rr = (vc + 1) % self.cfg.num_vcs;
                        nic.current = Some(Streaming {
                            id: pid,
                            dst,
                            len,
                            pos: 0,
                            vc,
                            frame,
                        });
                    }
                }
            }
            let nic = &mut self.nics[node];
            if let Some(cur) = &mut nic.current {
                if nic.credits[cur.vc] > 0 {
                    let kind = FlitKind::for_position(cur.pos, cur.len);
                    let flit = Flit {
                        id: cur.id,
                        dst: cur.dst,
                        kind,
                        frame: cur.frame,
                    };
                    nic.credits[cur.vc] -= 1;
                    if cur.pos == 0 {
                        self.inflight
                            .get_mut(&cur.id)
                            .expect("streaming packet is in flight")
                            .injected_at = Some(now);
                    }
                    cur.pos += 1;
                    let vc = cur.vc;
                    let done = cur.pos == cur.len;
                    if done {
                        nic.draining[vc] = true;
                        nic.current = None;
                    }
                    self.routers[node].inputs[LOCAL][vc].q.push_back(flit);
                    self.buffered[node] += 1;
                    self.router_work.insert(node);
                }
            }
            let nic = &self.nics[node];
            if nic.current.is_none() && nic.tagged.is_empty() {
                self.nic_work.remove(node);
            }
        }
    }

    fn route_compute(&mut self) {
        let topo = self.cfg.topo;
        let routing = self.cfg.routing;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node];
            for port in router.inputs.iter_mut() {
                for buf in port.iter_mut() {
                    if buf.route.is_none() {
                        if let Some(front) = buf.q.front() {
                            if front.kind.is_head() {
                                let dir =
                                    routing.next_hop(&topo, NodeId::new(node as u32), front.dst);
                                buf.route = Some(dir.index());
                            }
                        }
                    }
                }
            }
        }
    }

    /// VC allocation with frame priority: per output port, requests
    /// are served oldest frame first.
    fn vc_allocate(&mut self) {
        let num_vcs = self.cfg.num_vcs;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node];
            for out in 0..PORTS {
                let mut requests: Vec<(u64, usize, usize)> = Vec::new();
                for in_port in 0..PORTS {
                    for in_vc in 0..num_vcs {
                        let buf = &router.inputs[in_port][in_vc];
                        if buf.out_vc.is_none()
                            && buf.route == Some(out)
                            && buf.q.front().is_some_and(|f| f.kind.is_head())
                        {
                            requests.push((buf.frame().expect("nonempty"), in_port, in_vc));
                        }
                    }
                }
                requests.sort_unstable();
                let mut free: VecDeque<usize> = (0..num_vcs)
                    .filter(|&v| router.out_owner[out][v].is_none())
                    .collect();
                for (_, in_port, in_vc) in requests {
                    let Some(v) = free.pop_front() else { break };
                    router.out_owner[out][v] = Some((in_port, in_vc));
                    router.inputs[in_port][in_vc].out_vc = Some(v);
                }
            }
        }
    }

    /// Switch allocation with frame priority, then traversal.
    fn switch_traverse(&mut self, now: u64, out: &mut Vec<Packet>) {
        let num_vcs = self.cfg.num_vcs;
        let topo = self.cfg.topo;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            for out_port in 0..PORTS {
                let router = &self.routers[node];
                let start = router.rr_sa[out_port];
                let mut winner: Option<(u64, usize, usize, usize, usize)> = None;
                for k in 0..PORTS * num_vcs {
                    let slot = (start + k) % (PORTS * num_vcs);
                    let (p, v) = (slot / num_vcs, slot % num_vcs);
                    let buf = &router.inputs[p][v];
                    if buf.route != Some(out_port) || buf.q.is_empty() {
                        continue;
                    }
                    let Some(ov) = buf.out_vc else { continue };
                    if out_port != LOCAL && router.credits[out_port][ov] == 0 {
                        continue;
                    }
                    let frame = buf.frame().expect("nonempty");
                    let better = match winner {
                        None => true,
                        Some((wf, ..)) => frame < wf,
                    };
                    if better {
                        winner = Some((frame, p, v, ov, slot));
                    }
                }
                let Some((_, p, v, ov, slot)) = winner else {
                    continue;
                };
                self.forwarded[node * PORTS + out_port] += 1;
                let router = &mut self.routers[node];
                router.rr_sa[out_port] = (slot + 1) % (PORTS * num_vcs);
                let flit = router.inputs[p][v]
                    .q
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[node] -= 1;
                if self.buffered[node] == 0 {
                    self.router_work.remove(node);
                }
                if flit.kind.is_tail() {
                    if out_port == LOCAL {
                        // Ejected flits leave no downstream buffer to
                        // drain; release the ejection VC immediately.
                        router.out_owner[out_port][ov] = None;
                    } else {
                        // GSF: the downstream VC stays owned until
                        // drained (credits fully returned).
                        router.out_draining[out_port][ov] = true;
                    }
                    router.inputs[p][v].route = None;
                    router.inputs[p][v].out_vc = None;
                }
                if out_port != LOCAL {
                    router.credits[out_port][ov] -= 1;
                }
                if p == LOCAL {
                    self.credit_events
                        .push_back((now + self.cfg.credit_delay, node, LOCAL, v));
                } else {
                    let dir = Direction::from_index(p);
                    let upstream = topo
                        .neighbor(NodeId::new(node as u32), dir)
                        .expect("input port implies a neighbor");
                    self.credit_events.push_back((
                        now + self.cfg.credit_delay,
                        upstream.index(),
                        dir.opposite().index(),
                        v,
                    ));
                }
                if out_port == LOCAL {
                    self.eject(node, flit, now, out);
                } else {
                    let dir = Direction::from_index(out_port);
                    let next = topo
                        .neighbor(NodeId::new(node as u32), dir)
                        .expect("route leads to a neighbor");
                    let in_port = dir.opposite().index();
                    let widx = next.index() * PORTS + in_port;
                    self.wires[widx].push_back((now + self.cfg.hop_latency, ov, flit));
                    self.wire_work.insert(widx);
                }
            }
        }
    }

    /// Full-scan cross-check of every worklist invariant (debug
    /// builds only): the active sets must contain exactly the indices
    /// a naive scan would find work at.
    #[cfg(debug_assertions)]
    fn debug_verify_worklists(&self) {
        for (i, wire) in self.wires.iter().enumerate() {
            debug_assert_eq!(
                self.wire_work.contains(i),
                !wire.is_empty(),
                "wire_work[{i}]"
            );
        }
        for (n, nic) in self.nics.iter().enumerate() {
            let active = nic.current.is_some() || !nic.tagged.is_empty();
            debug_assert_eq!(self.nic_work.contains(n), active, "nic_work[{n}]");
        }
        for (n, router) in self.routers.iter().enumerate() {
            let count: u32 = router
                .inputs
                .iter()
                .flat_map(|port| port.iter().map(|buf| buf.q.len() as u32))
                .sum();
            debug_assert_eq!(self.buffered[n], count, "buffered[{n}]");
            debug_assert_eq!(self.router_work.contains(n), count > 0, "router_work[{n}]");
        }
    }

    fn eject(&mut self, node: usize, flit: Flit, now: u64, out: &mut Vec<Packet>) {
        let count = self
            .frame_alive
            .get_mut(&flit.frame)
            .expect("ejected flit was counted");
        *count -= 1;
        if *count == 0 {
            self.frame_alive.remove(&flit.frame);
        }
        let nic = &mut self.nics[node];
        let seen = nic.eject_progress.entry(flit.id).or_insert(0);
        *seen += 1;
        let total = self.inflight[&flit.id].len_flits;
        if *seen == total {
            nic.eject_progress.remove(&flit.id);
            let mut packet = self
                .inflight
                .remove(&flit.id)
                .expect("ejecting packet is in flight");
            self.packet_frame.remove(&flit.id);
            packet.ejected_at = Some(now);
            debug_assert_eq!(packet.dst.index(), node, "packet ejected at wrong node");
            out.push(packet);
        }
    }

    /// Barrier-based global frame recycling. The head frame retires
    /// only when **no flit tagged with it remains anywhere** — in
    /// routers *or in source queues*. This is the global coupling the
    /// LOFT paper criticizes: one congested region holds the window
    /// for every node.
    fn recycle_frames(&mut self, now: u64) {
        match self.barrier_due {
            Some(due) => {
                if now >= due {
                    self.head_frame += 1;
                    self.recycles += 1;
                    self.barrier_due = None;
                    self.retag_backlog();
                }
            }
            None => {
                let head_empty = !self.frame_alive.contains_key(&self.head_frame);
                if head_empty {
                    self.barrier_due = Some(now + self.cfg.barrier_delay);
                }
            }
        }
    }
}

impl Network for GsfNetwork {
    fn num_nodes(&self) -> usize {
        self.routers.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue(&mut self, packet: Packet) {
        assert!(
            packet.id.flow.index() < self.flows.len(),
            "packet flow id outside configured reservations"
        );
        let node = packet.src.index();
        let id = packet.id;
        self.inflight.insert(id, packet);
        // GSF tags packets with frames as they enter the source
        // queue, consuming the flow's quota up-front; packets that
        // find every active frame exhausted wait untagged.
        let fid = id.flow.index() as u32;
        let has_untagged = self.nics[node]
            .untagged
            .get(&fid)
            .is_some_and(|q| !q.is_empty());
        if has_untagged || !self.tag_packet(id) {
            self.nics[node]
                .untagged
                .entry(fid)
                .or_default()
                .push_back(id);
        }
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        self.debug_verify_worklists();
        let now = self.cycle;
        self.deliver_arrivals(now);
        self.apply_credits(now);
        self.recycle_frames(now);
        self.nic_inject(now);
        self.route_compute();
        self.vc_allocate();
        self.switch_traverse(now, out);
        self.cycle = now + 1;
    }

    fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::FlowId;

    fn packet(flow: u32, seq: u64, src: u32, dst: u32, at: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(src),
            NodeId::new(dst),
            4,
            at,
        )
    }

    fn drain(net: &mut GsfNetwork, limit: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < limit, "network failed to drain in {limit} cycles");
        }
        out
    }

    #[test]
    fn single_packet_delivered() {
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        net.enqueue(packet(0, 0, 0, 63, 0));
        let out = drain(&mut net, 1_000);
        assert_eq!(out.len(), 1);
        assert!(out[0].total_latency().unwrap() >= 14 * 3);
    }

    #[test]
    fn quota_throttles_flow() {
        // Reservation of 4 flits/frame = 1 packet per frame; with a
        // window of 6 the source can burst 6 packets, then must wait
        // for recycles.
        let cfg = GsfConfig::default();
        let mut net = GsfNetwork::new(cfg, &[4]);
        for seq in 0..12 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 12);
        let recycles = net.recycles();
        // 12 packets with 1/frame and a burst window of 6 requires at
        // least 6 window shifts.
        assert!(recycles >= 6, "only {recycles} recycles");
    }

    #[test]
    fn frames_recycle_when_idle() {
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        let mut out = Vec::new();
        for _ in 0..200 {
            net.step(&mut out);
        }
        // With an empty network the barrier fires continuously.
        assert!(net.recycles() >= 5);
    }

    #[test]
    fn older_frames_win_arbitration() {
        // Two flows to the same destination; flow 0 has a tiny quota,
        // flow 1 a huge one. Flow 1 floods first; flow 0's packet is
        // tagged with the head frame and must not starve.
        let cfg = GsfConfig::default();
        let mut net = GsfNetwork::new(cfg, &[2000, 2000]);
        for seq in 0..100 {
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        net.enqueue(packet(0, 0, 0, 9, 0));
        let out = drain(&mut net, 50_000);
        let victim = out.iter().find(|p| p.id.flow == FlowId::new(0)).unwrap();
        // All are frame 0; the victim shares the bandwidth instead of
        // waiting behind the whole flood.
        assert!(
            victim.ejected_at.unwrap() < 350,
            "victim finished at {}",
            victim.ejected_at.unwrap()
        );
    }

    #[test]
    fn no_vc_sharing_between_packets() {
        // The debug_assert in deliver_arrivals checks the invariant;
        // run a congested workload to exercise it.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[500, 500, 500]);
        for seq in 0..50 {
            net.enqueue(packet(0, seq, 0, 63, 0));
            net.enqueue(packet(1, seq, 48, 63, 0));
            net.enqueue(packet(2, seq, 56, 63, 0));
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 150);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut net = GsfNetwork::new(GsfConfig::default(), &[500, 500]);
            for seq in 0..30 {
                net.enqueue(packet(0, seq, 0, 63, 0));
                net.enqueue(packet(1, seq, 7, 56, 0));
            }
            drain(&mut net, 100_000)
                .iter()
                .map(|p| (p.id, p.ejected_at.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "reservations must be positive")]
    fn zero_reservation_rejected() {
        let _ = GsfNetwork::new(GsfConfig::default(), &[0]);
    }

    #[test]
    fn backlog_tags_up_front_and_drains_in_frame_order() {
        // Quota of 8 flits = 2 packets per frame; a 30-packet backlog
        // tags 12 packets (window of 6 frames), parks the rest
        // untagged, and everything still delivers.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[8]);
        for seq in 0..30 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let out = drain(&mut net, 200_000);
        assert_eq!(out.len(), 30);
        // Delivery respects enqueue order for a single flow (frames
        // are claimed in order).
        let mut ejects: Vec<(u64, u64)> = out
            .iter()
            .map(|p| (p.id.seq, p.ejected_at.unwrap()))
            .collect();
        ejects.sort_unstable();
        for w in ejects.windows(2) {
            assert!(w[0].1 <= w[1].1, "seq {} overtook {}", w[1].0, w[0].0);
        }
    }

    #[test]
    fn untagged_backlog_throttles_source_throughput() {
        // With the head frame held open by a congested ejection link,
        // the per-frame quota bounds a flow's accepted rate.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[40, 2000]);
        // Flow 1 floods the destination, slowing frame recycling.
        for seq in 0..300 {
            net.enqueue(packet(1, seq, 8, 9, 0));
        }
        for seq in 0..100 {
            net.enqueue(packet(0, seq, 0, 9, 0));
        }
        let out = drain(&mut net, 400_000);
        assert_eq!(out.len(), 400);
        // Flow 0's quota is 40 flits = 10 packets/frame: with ~2000
        // flits of flow 1 per frame window ahead of it, flow 0 cannot
        // finish before several window turns.
        let last_f0 = out
            .iter()
            .filter(|p| p.id.flow == FlowId::new(0))
            .map(|p| p.ejected_at.unwrap())
            .max()
            .unwrap();
        assert!(
            last_f0 > 1_000,
            "flow 0 finished implausibly fast: {last_f0}"
        );
    }

    #[test]
    fn link_flits_probe_counts_traffic() {
        use noc_sim::routing::Direction;
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        net.enqueue(packet(0, 0, 0, 2, 0));
        let _ = drain(&mut net, 10_000);
        assert_eq!(net.link_flits(NodeId::new(0), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(2), Direction::Local), 4);
        assert_eq!(net.link_flits(NodeId::new(5), Direction::East), 0);
    }

    #[test]
    fn barrier_delay_paces_idle_recycling() {
        let fast = {
            let mut net = GsfNetwork::new(
                GsfConfig {
                    barrier_delay: 1,
                    ..GsfConfig::default()
                },
                &[100],
            );
            let mut out = Vec::new();
            for _ in 0..1_000 {
                net.step(&mut out);
            }
            net.recycles()
        };
        let slow = {
            let mut net = GsfNetwork::new(
                GsfConfig {
                    barrier_delay: 100,
                    ..GsfConfig::default()
                },
                &[100],
            );
            let mut out = Vec::new();
            for _ in 0..1_000 {
                net.step(&mut out);
            }
            net.recycles()
        };
        assert!(
            fast > 5 * slow,
            "barrier delay not respected: {fast} vs {slow}"
        );
    }
}
