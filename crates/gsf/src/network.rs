//! The GSF network model: a frame-priority policy over the shared VC
//! fabric ([`noc_sim::fabric::VcFabric`]).
//!
//! Structurally GSF is a credit-based VC wormhole network; the fabric
//! owns that datapath, and this policy supplies the three GSF-specific
//! changes:
//!
//! 1. **Source framing** — each packet is stamped with the earliest
//!    active frame in which its flow still has quota (see
//!    [`crate::framing`]); a flow whose quota is exhausted in every
//!    active frame stalls at the source.
//! 2. **Frame-priority arbitration** — both VC allocation and switch
//!    allocation prefer flits of older frames.
//! 3. **Strict VC separation** — a virtual channel is reallocated
//!    only after it has completely drained (credits fully returned),
//!    so flits of different packets never share a VC
//!    ([`RouterPolicy::DRAIN_BEFORE_REUSE`]). This models the
//!    flow-control inefficiency the paper's Figure 6 attributes to
//!    GSF.
//!
//! The head frame is recycled by a modeled barrier network: once no
//! flit of the oldest frame remains in the network, the window slides
//! after `barrier_delay` cycles. While the barrier is in flight the
//! head frame is closed to new injections.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use noc_sim::fabric::{
    PolicyCtx, RouterPolicy, SwitchGrant, VcFabric, VcParams, VcRouter, LOCAL, PORTS,
};
use noc_sim::flit::{NodeId, Packet};
use noc_sim::routing::Direction;
use noc_sim::slab::PacketRef;
use noc_sim::telemetry::{NoopProbe, Probe};
use noc_sim::Network;

use crate::config::GsfConfig;
use crate::framing::Framing;

/// One node's frame-tagged source queue: packets awaiting streaming,
/// min-ordered by (frame, arrival sequence) — GSF streams oldest
/// frames first. The (frame, seq) key is unique, so the handle never
/// takes part in an ordering decision.
type TaggedHeap = BinaryHeap<Reverse<(u64, u64, PacketRef)>>;

/// Per-shard VC-allocation scratch, reused every cycle.
#[derive(Debug, Default, Clone)]
struct GsfScratch {
    /// Per-output VC-allocation requests: (frame, input slot).
    req: Vec<(u64, usize)>,
    /// Free downstream VCs for one output.
    free: Vec<usize>,
}

/// The GSF scheduling policy: frame-tagged source queues drained
/// oldest frame first, frame-priority VC and switch allocation, strict
/// VC separation.
///
/// The tagged source heaps are the fabric-owned
/// [`RouterPolicy::Source`]s; everything here is global window state
/// touched only by the serial hooks.
#[derive(Debug, Clone)]
struct GsfPolicy {
    framing: Framing,
    /// Packets that could not be tagged yet (every active frame's
    /// quota exhausted), per node and flow, FIFO. Each node's list is
    /// sorted by flow id, so the retag scan is deterministic with no
    /// per-shift sort. Drained queues stay in the list with their
    /// capacity — a flow that backs up once tends to back up again.
    untagged: Vec<Vec<(u32, VecDeque<PacketRef>)>>,
    /// Arrival sequence counter for FIFO tie-breaks within a frame.
    tag_seq: u64,
}

impl GsfPolicy {
    /// Tags a freshly enqueued or previously untagged packet with the
    /// earliest active frame that has quota, charging the flow's
    /// reservation and registering its flits as alive in that frame.
    fn tag_packet(&mut self, pref: PacketRef, ctx: &mut PolicyCtx<'_, TaggedHeap>) -> bool {
        let (flow, len, node) = {
            let p = ctx.packets.packet(pref);
            (p.id.flow, p.len_flits, p.src.index())
        };
        let Some(frame) = self.framing.claim(flow, len) else {
            return false;
        };
        let seq = self.tag_seq;
        self.tag_seq += 1;
        ctx.sources[node].push(Reverse((frame, seq, pref)));
        ctx.woken.push(node);
        true
    }

    /// After a window shift, untagged backlog may fit the fresh frame.
    /// Flows retag in ascending flow-id order (the list is sorted), so
    /// the frame-tag sequence is deterministic.
    fn retag_backlog(&mut self, ctx: &mut PolicyCtx<'_, TaggedHeap>) {
        for node in 0..self.untagged.len() {
            for fi in 0..self.untagged[node].len() {
                while let Some(&pref) = self.untagged[node][fi].1.front() {
                    if !self.tag_packet(pref, ctx) {
                        break;
                    }
                    self.untagged[node][fi].1.pop_front();
                }
            }
        }
    }
}

impl RouterPolicy for GsfPolicy {
    type Tag = u64;
    type Source = TaggedHeap;
    type Scratch = GsfScratch;
    const DRAIN_BEFORE_REUSE: bool = true;

    fn new_source(&self) -> TaggedHeap {
        BinaryHeap::new()
    }

    fn pre_inject(&mut self, now: u64, ctx: &mut PolicyCtx<'_, TaggedHeap>) {
        if self.framing.recycle(now) {
            self.retag_backlog(ctx);
        }
    }

    fn on_enqueue(&mut self, node: usize, pref: PacketRef, ctx: &mut PolicyCtx<'_, TaggedHeap>) {
        let flow = ctx.packets.packet(pref).id.flow;
        assert!(
            flow.index() < self.framing.num_flows(),
            "packet flow id outside configured reservations"
        );
        // GSF tags packets with frames as they enter the source
        // queue, consuming the flow's quota up-front; packets that
        // find every active frame exhausted wait untagged.
        let fid = flow.index() as u32;
        // A nonempty per-flow queue means a packet of this flow is
        // already parked; tagging out of order would reorder the flow.
        let at = self.untagged[node].binary_search_by_key(&fid, |&(f, _)| f);
        let parked = matches!(at, Ok(i) if !self.untagged[node][i].1.is_empty());
        if parked || !self.tag_packet(pref, ctx) {
            match at {
                Ok(i) => self.untagged[node][i].1.push_back(pref),
                Err(i) => self.untagged[node].insert(i, (fid, VecDeque::from([pref]))),
            }
        }
    }

    fn peek_source(source: &TaggedHeap) -> Option<PacketRef> {
        source.peek().map(|&Reverse((_, _, pref))| pref)
    }

    fn pop_source(source: &mut TaggedHeap) -> (PacketRef, u64) {
        let Reverse((frame, _, pref)) = source.pop().expect("peeked source packet");
        (pref, frame)
    }

    fn source_idle(source: &TaggedHeap) -> bool {
        source.is_empty()
    }

    /// VC allocation with frame priority: per output port, requests
    /// are served oldest frame first.
    fn vc_allocate(scratch: &mut GsfScratch, router: &mut VcRouter<u64>, num_vcs: usize) {
        for out in 0..PORTS {
            // The request mask enumerates pending heads routed here
            // in ascending slot order — the order the old full scan
            // collected them in.
            if router.va_req[out] == 0 {
                continue;
            }
            scratch.req.clear();
            for slot in router.va_requests(out) {
                scratch
                    .req
                    .push((router.inputs[slot].head_tag().expect("nonempty"), slot));
            }
            scratch.req.sort_unstable();
            let base = out * num_vcs;
            scratch.free.clear();
            scratch
                .free
                .extend((0..num_vcs).filter(|&v| !router.out_owner[base + v]));
            for i in 0..scratch.req.len().min(scratch.free.len()) {
                let (_, slot) = scratch.req[i];
                router.grant_vc(slot, out, scratch.free[i], num_vcs);
            }
        }
    }

    /// Switch allocation with frame priority: the oldest-frame
    /// candidate wins, round-robin order breaking ties.
    fn pick_winner(router: &VcRouter<u64>, out_port: usize, num_vcs: usize) -> Option<SwitchGrant> {
        // The ready mask is scanned in rotating-priority order from
        // the round-robin pointer, so the strict `<` keeps the first
        // oldest-frame candidate in that order — the same winner the
        // old full rotating scan picked.
        let mut winner: Option<(u64, usize, usize)> = None;
        for slot in router.sa_candidates(out_port, router.rr_sa[out_port]) {
            let buf = &router.inputs[slot];
            let ov = buf.out_vc.expect("ready slot has a VC");
            if out_port != LOCAL && router.credits[out_port * num_vcs + ov] == 0 {
                continue;
            }
            let frame = buf.head_tag().expect("nonempty");
            if winner.is_none_or(|(wf, _, _)| frame < wf) {
                winner = Some((frame, slot, ov));
            }
        }
        winner.map(|(_, slot, ov)| SwitchGrant {
            in_port: slot / num_vcs,
            in_vc: slot % num_vcs,
            out_vc: ov,
            slot,
        })
    }

    fn on_eject_flit(&mut self, flit: &noc_sim::fabric::VcFlit<u64>) {
        self.framing.on_flit_ejected(flit.tag);
    }

    /// With the fabric quiescent the only per-cycle work left is frame
    /// recycling, and with nothing untagged each window shift's retag
    /// pass is a no-op — so `cycles` idle [`GsfPolicy::pre_inject`]
    /// calls reduce to the framing window's closed-form idle jump.
    fn fast_forward(&mut self, now: u64, cycles: u64) {
        debug_assert!(
            self.untagged.iter().flatten().all(|(_, q)| q.is_empty()),
            "untagged backlog during a quiescent jump"
        );
        self.framing.fast_forward_idle(now, cycles);
    }
}

/// The Globally-Synchronized Frames network.
///
/// Construct with [`GsfNetwork::new`], providing per-flow frame
/// reservations in flits (usually from
/// [`noc_traffic::Scenario::reservations`] with the configured
/// [`GsfConfig::frame_size`]).
#[derive(Debug, Clone)]
pub struct GsfNetwork<Pr: Probe = NoopProbe> {
    cfg: GsfConfig,
    fabric: VcFabric<GsfPolicy, Pr>,
}

impl GsfNetwork {
    /// Builds the network for flows with the given per-frame
    /// reservations (flits per frame, indexed by flow id), with
    /// telemetry disabled.
    ///
    /// # Panics
    ///
    /// Panics if any reservation is zero or exceeds the frame size.
    pub fn new(cfg: GsfConfig, reservations: &[u32]) -> Self {
        Self::with_probe(cfg, reservations, NoopProbe)
    }
}

impl<Pr: Probe> GsfNetwork<Pr> {
    /// Like [`GsfNetwork::new`], additionally reporting telemetry
    /// events to `probe`; retrieve the merged probe with
    /// [`GsfNetwork::into_probe`] after the run.
    pub fn with_probe(cfg: GsfConfig, reservations: &[u32], probe: Pr) -> Self {
        let n = cfg.topo.num_nodes();
        let params = VcParams {
            topo: cfg.topo,
            routing: cfg.routing,
            num_vcs: cfg.num_vcs,
            vc_capacity: cfg.vc_capacity,
            hop_latency: cfg.hop_latency,
            credit_delay: cfg.credit_delay,
            threads: cfg.threads,
        };
        let policy = GsfPolicy {
            framing: Framing::new(
                reservations,
                cfg.frame_size,
                cfg.frame_window,
                cfg.barrier_delay,
            ),
            untagged: vec![Vec::new(); n],
            tag_seq: 0,
        };
        GsfNetwork {
            cfg,
            fabric: VcFabric::with_probe(params, policy, probe),
        }
    }

    /// Consumes the network, returning the telemetry probe with every
    /// shard fork merged in deterministic order.
    #[must_use]
    pub fn into_probe(self) -> Pr {
        self.fabric.into_probe()
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &GsfConfig {
        &self.cfg
    }

    /// Current head (oldest active) frame number.
    pub fn head_frame(&self) -> u64 {
        self.fabric.policy().framing.head_frame()
    }

    /// Completed global window shifts so far.
    pub fn recycles(&self) -> u64 {
        self.fabric.policy().framing.recycles()
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.fabric.link_flits(node, dir)
    }
}

impl<Pr: Probe> Network for GsfNetwork<Pr> {
    fn num_nodes(&self) -> usize {
        self.fabric.num_nodes()
    }

    fn cycle(&self) -> u64 {
        self.fabric.cycle()
    }

    fn enqueue(&mut self, packet: Packet) {
        self.fabric.enqueue(packet);
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        self.fabric.step(out);
    }

    fn fast_forward(&mut self, cycles: u64) -> u64 {
        self.fabric.fast_forward(cycles)
    }

    fn in_flight(&self) -> usize {
        self.fabric.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::{FlowId, PacketId};

    fn packet(flow: u32, seq: u64, src: u32, dst: u32, at: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(src),
            NodeId::new(dst),
            4,
            at,
        )
    }

    fn drain(net: &mut GsfNetwork, limit: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < limit, "network failed to drain in {limit} cycles");
        }
        out
    }

    #[test]
    fn single_packet_delivered() {
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        net.enqueue(packet(0, 0, 0, 63, 0));
        let out = drain(&mut net, 1_000);
        assert_eq!(out.len(), 1);
        assert!(out[0].total_latency().unwrap() >= 14 * 3);
    }

    #[test]
    fn quota_throttles_flow() {
        // Reservation of 4 flits/frame = 1 packet per frame; with a
        // window of 6 the source can burst 6 packets, then must wait
        // for recycles.
        let cfg = GsfConfig::default();
        let mut net = GsfNetwork::new(cfg, &[4]);
        for seq in 0..12 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 12);
        let recycles = net.recycles();
        // 12 packets with 1/frame and a burst window of 6 requires at
        // least 6 window shifts.
        assert!(recycles >= 6, "only {recycles} recycles");
    }

    #[test]
    fn frames_recycle_when_idle() {
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        let mut out = Vec::new();
        for _ in 0..200 {
            net.step(&mut out);
        }
        // With an empty network the barrier fires continuously.
        assert!(net.recycles() >= 5);
    }

    #[test]
    fn older_frames_win_arbitration() {
        // Two flows to the same destination; flow 0 has a tiny quota,
        // flow 1 a huge one. Flow 1 floods first; flow 0's packet is
        // tagged with the head frame and must not starve.
        let cfg = GsfConfig::default();
        let mut net = GsfNetwork::new(cfg, &[2000, 2000]);
        for seq in 0..100 {
            net.enqueue(packet(1, seq, 1, 9, 0));
        }
        net.enqueue(packet(0, 0, 0, 9, 0));
        let out = drain(&mut net, 50_000);
        let victim = out.iter().find(|p| p.id.flow == FlowId::new(0)).unwrap();
        // All are frame 0; the victim shares the bandwidth instead of
        // waiting behind the whole flood.
        assert!(
            victim.ejected_at.unwrap() < 350,
            "victim finished at {}",
            victim.ejected_at.unwrap()
        );
    }

    #[test]
    fn no_vc_sharing_between_packets() {
        // The debug_assert in the fabric's arrival path checks the
        // invariant; run a congested workload to exercise it.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[500, 500, 500]);
        for seq in 0..50 {
            net.enqueue(packet(0, seq, 0, 63, 0));
            net.enqueue(packet(1, seq, 48, 63, 0));
            net.enqueue(packet(2, seq, 56, 63, 0));
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 150);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut net = GsfNetwork::new(GsfConfig::default(), &[500, 500]);
            for seq in 0..30 {
                net.enqueue(packet(0, seq, 0, 63, 0));
                net.enqueue(packet(1, seq, 7, 56, 0));
            }
            drain(&mut net, 100_000)
                .iter()
                .map(|p| (p.id, p.ejected_at.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "reservations must be positive")]
    fn zero_reservation_rejected() {
        let _ = GsfNetwork::new(GsfConfig::default(), &[0]);
    }

    #[test]
    fn backlog_tags_up_front_and_drains_in_frame_order() {
        // Quota of 8 flits = 2 packets per frame; a 30-packet backlog
        // tags 12 packets (window of 6 frames), parks the rest
        // untagged, and everything still delivers.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[8]);
        for seq in 0..30 {
            net.enqueue(packet(0, seq, 0, 1, 0));
        }
        let out = drain(&mut net, 200_000);
        assert_eq!(out.len(), 30);
        // Delivery respects enqueue order for a single flow (frames
        // are claimed in order).
        let mut ejects: Vec<(u64, u64)> = out
            .iter()
            .map(|p| (p.id.seq, p.ejected_at.unwrap()))
            .collect();
        ejects.sort_unstable();
        for w in ejects.windows(2) {
            assert!(w[0].1 <= w[1].1, "seq {} overtook {}", w[1].0, w[0].0);
        }
    }

    #[test]
    fn untagged_backlog_throttles_source_throughput() {
        // With the head frame held open by a congested ejection link,
        // the per-frame quota bounds a flow's accepted rate.
        let mut net = GsfNetwork::new(GsfConfig::default(), &[40, 2000]);
        // Flow 1 floods the destination, slowing frame recycling.
        for seq in 0..300 {
            net.enqueue(packet(1, seq, 8, 9, 0));
        }
        for seq in 0..100 {
            net.enqueue(packet(0, seq, 0, 9, 0));
        }
        let out = drain(&mut net, 400_000);
        assert_eq!(out.len(), 400);
        // Flow 0's quota is 40 flits = 10 packets/frame: with ~2000
        // flits of flow 1 per frame window ahead of it, flow 0 cannot
        // finish before several window turns.
        let last_f0 = out
            .iter()
            .filter(|p| p.id.flow == FlowId::new(0))
            .map(|p| p.ejected_at.unwrap())
            .max()
            .unwrap();
        assert!(
            last_f0 > 1_000,
            "flow 0 finished implausibly fast: {last_f0}"
        );
    }

    #[test]
    fn link_flits_probe_counts_traffic() {
        use noc_sim::routing::Direction;
        let mut net = GsfNetwork::new(GsfConfig::default(), &[100]);
        net.enqueue(packet(0, 0, 0, 2, 0));
        let _ = drain(&mut net, 10_000);
        assert_eq!(net.link_flits(NodeId::new(0), Direction::East), 4);
        assert_eq!(net.link_flits(NodeId::new(2), Direction::Local), 4);
        assert_eq!(net.link_flits(NodeId::new(5), Direction::East), 0);
    }

    #[test]
    fn fast_forward_matches_idle_stepping() {
        let mut stepped = GsfNetwork::new(GsfConfig::default(), &[100]);
        let mut jumped = GsfNetwork::new(GsfConfig::default(), &[100]);
        let mut out = Vec::new();
        // Mix jump sizes so the barrier is caught in every phase.
        for k in [1u64, 3, 17, 64, 200, 999] {
            for _ in 0..k {
                stepped.step(&mut out);
            }
            assert_eq!(jumped.fast_forward(k), k);
            assert_eq!(jumped.cycle(), stepped.cycle());
            assert_eq!(jumped.head_frame(), stepped.head_frame());
            assert_eq!(jumped.recycles(), stepped.recycles());
        }
        assert!(out.is_empty());
        assert!(jumped.recycles() > 10);
    }

    #[test]
    fn barrier_delay_paces_idle_recycling() {
        let fast = {
            let mut net = GsfNetwork::new(
                GsfConfig {
                    barrier_delay: 1,
                    ..GsfConfig::default()
                },
                &[100],
            );
            let mut out = Vec::new();
            for _ in 0..1_000 {
                net.step(&mut out);
            }
            net.recycles()
        };
        let slow = {
            let mut net = GsfNetwork::new(
                GsfConfig {
                    barrier_delay: 100,
                    ..GsfConfig::default()
                },
                &[100],
            );
            let mut out = Vec::new();
            for _ in 0..1_000 {
                net.step(&mut out);
            }
            net.recycles()
        };
        assert!(
            fast > 5 * slow,
            "barrier delay not respected: {fast} vs {slow}"
        );
    }
}
