//! # noc-gsf — Globally-Synchronized Frames comparison network
//!
//! A reimplementation of GSF (Lee, Ng & Asanović, ISCA 2008), the QoS
//! NoC the LOFT paper compares against, following the description in
//! the LOFT paper (Sections 2.2 and 3.1) and the published GSF
//! algorithm:
//!
//! * time is quantized into large **frames** (2000 flits in the
//!   paper's setup); every flow holds a reservation of `R_ij` flits
//!   per frame and sources inject each packet into the earliest
//!   active frame with remaining quota,
//! * a window of `W` frames (6) is active at once; a flow that has
//!   exhausted its quota in every active frame stalls in its (large)
//!   source queue,
//! * routers arbitrate virtual channels and the switch by **frame
//!   priority**: flits of older frames always win,
//! * flits of different packets may never share a virtual channel, so
//!   a VC is only reallocated after it has fully drained (this is the
//!   flow-control inefficiency the paper highlights in Figure 6),
//! * the head frame is **recycled globally**: when no flit of the
//!   oldest frame remains in the network, a barrier network detects
//!   this with a fixed delay (16 cycles) and the whole window slides.
//!
//! The global synchronization is GSF's weakness: one congested region
//! slows frame recycling for *every* node (the paper's Figure 1 /
//! Case Study II), which LOFT's per-output-port frames avoid.
//!
//! # Example
//!
//! ```
//! use noc_sim::{Simulation, RunConfig};
//! use noc_traffic::Scenario;
//! use noc_gsf::{GsfConfig, GsfNetwork};
//!
//! let scenario = Scenario::hotspot(0.01);
//! let cfg = GsfConfig::default();
//! let reservations = scenario.reservations(cfg.frame_size)?;
//! let network = GsfNetwork::new(cfg, &reservations);
//! let report = Simulation::new(network, scenario.workload(7), RunConfig::short()).run();
//! assert!(report.flits_delivered > 0);
//! # Ok::<(), noc_sim::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod framing;
mod network;

pub use config::GsfConfig;
pub use network::GsfNetwork;
