//! Global frame-window accounting: quotas, frame liveness, and the
//! barrier-based window shift.
//!
//! This is the *source framing* half of GSF, independent of the router
//! datapath: which frame a packet may inject into (consuming its
//! flow's per-frame quota), how many flits of each frame are still
//! alive anywhere in the network, and when the barrier network may
//! retire the head frame. The router-side policy in
//! [`crate::network`] consumes this through a handful of calls.

use noc_sim::flit::FlowId;

/// Per-flow GSF injection state (quota tracking).
#[derive(Debug, Clone)]
struct FlowInj {
    reservation: u32,
    inject_frame: u64,
    remaining: u32,
}

/// The global frame window: per-flow quotas, per-frame flit liveness,
/// and the barrier that slides the window.
///
/// The head frame retires only when **no flit tagged with it remains
/// anywhere** — in routers *or in source queues*. This is the global
/// coupling the LOFT paper criticizes: one congested region holds the
/// window for every node.
#[derive(Debug, Clone)]
pub struct Framing {
    flows: Vec<FlowInj>,
    frame_window: u64,
    barrier_delay: u64,
    /// Flits alive (tagged and not yet ejected) per frame, as a ring
    /// of `frame_window` counters indexed by `frame % frame_window`:
    /// claims land only in `[head, head + window)` and a frame drains
    /// to zero before its slot is reused, so the ring is exact. The
    /// head frame can only be recycled once its counter reaches zero
    /// — including flits still waiting in source queues.
    frame_alive: Vec<u32>,
    head_frame: u64,
    barrier_due: Option<u64>,
    /// Number of completed window shifts (for tests/diagnostics).
    recycles: u64,
}

impl Framing {
    /// Builds the window for flows with the given per-frame
    /// reservations (flits per frame, indexed by flow id).
    ///
    /// # Panics
    ///
    /// Panics if any reservation is zero or exceeds the frame size.
    pub fn new(
        reservations: &[u32],
        frame_size: u32,
        frame_window: u32,
        barrier_delay: u64,
    ) -> Self {
        let flows = reservations
            .iter()
            .map(|&r| {
                assert!(r > 0, "reservations must be positive");
                assert!(r <= frame_size, "reservation exceeds frame size");
                FlowInj {
                    reservation: r,
                    inject_frame: 0,
                    remaining: r,
                }
            })
            .collect();
        Framing {
            flows,
            frame_window: frame_window as u64,
            barrier_delay,
            frame_alive: vec![0; frame_window as usize],
            head_frame: 0,
            barrier_due: None,
            recycles: 0,
        }
    }

    /// Number of configured flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Current head (oldest active) frame number.
    pub fn head_frame(&self) -> u64 {
        self.head_frame
    }

    /// Completed global window shifts so far.
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Picks the frame for the next packet of `flow`, consuming quota
    /// and registering `len` flits as alive in that frame. Returns
    /// `None` when every active frame is exhausted (stall).
    pub fn claim(&mut self, flow: FlowId, len: u16) -> Option<u64> {
        let head = self.head_frame;
        let window = self.frame_window;
        // While the barrier is in flight the head frame is closed.
        let earliest = if self.barrier_due.is_some() {
            head + 1
        } else {
            head
        };
        let st = &mut self.flows[flow.index()];
        if st.inject_frame < earliest {
            st.inject_frame = earliest;
            st.remaining = st.reservation;
        }
        loop {
            // A reservation smaller than one packet would deadlock the
            // flow; allow a full-quota frame to emit one packet anyway.
            let fits = st.remaining >= len as u32
                || (st.remaining == st.reservation && st.reservation < len as u32);
            if fits {
                st.remaining = st.remaining.saturating_sub(len as u32);
                let frame = st.inject_frame;
                debug_assert!(
                    (head..head + window).contains(&frame),
                    "claim outside the active window"
                );
                self.frame_alive[(frame % window) as usize] += len as u32;
                return Some(frame);
            }
            if st.inject_frame + 1 < head + window {
                st.inject_frame += 1;
                st.remaining = st.reservation;
            } else {
                return None;
            }
        }
    }

    /// One flit of `frame` was ejected at its destination.
    pub fn on_flit_ejected(&mut self, frame: u64) {
        let count = &mut self.frame_alive[(frame % self.frame_window) as usize];
        debug_assert!(*count > 0, "ejected flit was counted");
        *count -= 1;
    }

    /// Closed-form equivalent of `cycles` consecutive idle
    /// [`Framing::recycle`] calls at `now, now + 1, ..`: with no flit
    /// alive in any frame, recycling follows a fixed rhythm — the
    /// barrier arms, waits `barrier_delay`, shifts, and re-arms one
    /// cycle later — so the number of shifts in the span is computable
    /// in O(1). Ends in the exact state the per-cycle calls would
    /// (head frame, recycle count, and in-flight barrier included).
    ///
    /// # Panics
    ///
    /// Debug builds panic if any frame still has live flits (the
    /// closed form is only valid for a fully idle window).
    pub fn fast_forward_idle(&mut self, now: u64, cycles: u64) {
        debug_assert!(
            self.frame_alive.iter().all(|&a| a == 0),
            "idle fast-forward with live flits"
        );
        if cycles == 0 {
            return;
        }
        let end = now + cycles;
        let d = self.barrier_delay;
        // A shift lands `max(d, 1)` cycles after the barrier arms
        // (the arming cycle itself never shifts, even at delay 0),
        // and re-arming costs one more idle cycle.
        let period = d.max(1) + 1;
        let first = match self.barrier_due {
            Some(due) => due.max(now),
            None => now + d.max(1),
        };
        if first >= end {
            // No shift completes inside the span; at most the barrier
            // arms on the first idle cycle.
            if self.barrier_due.is_none() {
                self.barrier_due = Some(now + d);
            }
            return;
        }
        let num = (end - 1 - first) / period + 1;
        self.head_frame += num;
        self.recycles += num;
        let last = first + (num - 1) * period;
        // After the final shift the barrier re-arms on the next cycle
        // if the span still covers it.
        self.barrier_due = (last + 1 < end).then(|| last + 1 + d);
    }

    /// Barrier-based global frame recycling: called once per cycle.
    /// Returns `true` when the window just shifted (callers retag any
    /// untagged backlog against the fresh frame).
    pub fn recycle(&mut self, now: u64) -> bool {
        match self.barrier_due {
            Some(due) => {
                if now >= due {
                    self.head_frame += 1;
                    self.recycles += 1;
                    self.barrier_due = None;
                    return true;
                }
            }
            None => {
                let head_empty =
                    self.frame_alive[(self.head_frame % self.frame_window) as usize] == 0;
                if head_empty {
                    self.barrier_due = Some(now + self.barrier_delay);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_spans_the_window_then_stalls() {
        // 4 flits/frame, window 3: three 4-flit packets fit, then stall.
        let mut f = Framing::new(&[4], 100, 3, 16);
        assert_eq!(f.claim(FlowId::new(0), 4), Some(0));
        assert_eq!(f.claim(FlowId::new(0), 4), Some(1));
        assert_eq!(f.claim(FlowId::new(0), 4), Some(2));
        assert_eq!(f.claim(FlowId::new(0), 4), None);
    }

    #[test]
    fn undersized_reservation_still_emits_one_packet_per_frame() {
        let mut f = Framing::new(&[2], 100, 2, 16);
        assert_eq!(f.claim(FlowId::new(0), 4), Some(0));
        assert_eq!(f.claim(FlowId::new(0), 4), Some(1));
        assert_eq!(f.claim(FlowId::new(0), 4), None);
    }

    #[test]
    fn barrier_waits_then_shifts() {
        let mut f = Framing::new(&[4], 100, 3, 10);
        // Nothing alive: cycle 0 arms the barrier, due at 10.
        assert!(!f.recycle(0));
        assert!(!f.recycle(9));
        assert!(f.recycle(10));
        assert_eq!(f.head_frame(), 1);
        assert_eq!(f.recycles(), 1);
    }

    #[test]
    fn live_flits_hold_the_head_frame() {
        let mut f = Framing::new(&[4], 100, 3, 1);
        assert_eq!(f.claim(FlowId::new(0), 4), Some(0));
        for now in 0..50 {
            assert!(!f.recycle(now), "head frame retired while flits live");
        }
        for _ in 0..4 {
            f.on_flit_ejected(0);
        }
        assert!(!f.recycle(50)); // arms the barrier
        assert!(f.recycle(51));
    }

    #[test]
    fn head_frame_closed_while_barrier_in_flight() {
        let mut f = Framing::new(&[4], 100, 3, 10);
        assert!(!f.recycle(0)); // barrier armed
                                // New claims skip the closing head frame.
        assert_eq!(f.claim(FlowId::new(0), 4), Some(1));
    }

    /// The closed-form idle jump must land in the exact state the
    /// per-cycle `recycle` loop reaches, for every barrier delay,
    /// barrier phase at the jump start, and span length.
    #[test]
    fn idle_fast_forward_matches_stepped_recycling() {
        for d in [0u64, 1, 3, 10] {
            for pre in [0u64, 1, 2, 5, 12] {
                for k in [1u64, 2, 3, 7, 11, 50, 1_000] {
                    let build = || Framing::new(&[4], 100, 3, d);
                    let mut stepped = build();
                    let mut jumped = build();
                    // Reach an arbitrary barrier phase first.
                    for now in 0..pre {
                        stepped.recycle(now);
                        jumped.recycle(now);
                    }
                    for now in pre..pre + k {
                        stepped.recycle(now);
                    }
                    jumped.fast_forward_idle(pre, k);
                    let ctx = format!("d={d} pre={pre} k={k}");
                    assert_eq!(stepped.head_frame, jumped.head_frame, "head {ctx}");
                    assert_eq!(stepped.recycles, jumped.recycles, "recycles {ctx}");
                    assert_eq!(stepped.barrier_due, jumped.barrier_due, "barrier {ctx}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "reservations must be positive")]
    fn zero_reservation_rejected() {
        let _ = Framing::new(&[0], 100, 3, 16);
    }

    #[test]
    #[should_panic(expected = "reservation exceeds frame size")]
    fn oversized_reservation_rejected() {
        let _ = Framing::new(&[200], 100, 3, 16);
    }
}
