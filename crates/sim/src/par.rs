//! Deterministic sharded parallel stepping: the persistent worker
//! pool, contiguous shard partitioning, and double-buffered
//! cross-shard mailboxes.
//!
//! A cycle-accurate NoC simulation is parallelizable *within* one
//! cycle because every cross-router interaction — flits on links,
//! credit returns, look-ahead quanta — traverses
//! [`DelayedWires`](crate::fabric::DelayedWires) or
//! [`TimedFifo`](crate::fabric::TimedFifo) with at least one cycle of
//! delay: what router A does in cycle `t` becomes visible to router B
//! no earlier than `t + 1`. Partition the node index space into
//! contiguous ranges (*shards*), give each shard exclusive ownership
//! of its nodes' state, and every phase of a cycle can run on all
//! shards concurrently; only the effects that cross a shard boundary
//! (a flit entering another shard's wire, a credit returning to an
//! upstream router in another shard) are deferred into per-(src, dst)
//! [`Mailbox`] lanes and merged at the cycle barrier — in ascending
//! global link index order, so the merged arrival order is
//! bit-for-bit identical to the single-threaded engine.
//!
//! The [`WorkerPool`] is persistent: threads are spawned once and
//! parked on a condvar between cycles, so the steady state performs
//! no thread spawns and no heap allocation at the barrier (the
//! mailbox lanes retain their capacity across cycles).
//!
//! # Determinism contract
//!
//! Work items are claimed off an atomic cursor, so *which thread*
//! runs a shard is nondeterministic — but shards own disjoint state
//! and cross-shard traffic is merged in a fixed order at the barrier,
//! so the simulation outcome never depends on the schedule. The
//! golden determinism pins run at 1, 2, and 4 shards to hold that
//! contract.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A contiguous range of node indices owned by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First node index (inclusive).
    pub lo: usize,
    /// One past the last node index (exclusive).
    pub hi: usize,
}

impl ShardRange {
    /// Number of nodes in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the range holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `node` belongs to this shard.
    #[must_use]
    pub fn contains(&self, node: usize) -> bool {
        self.lo <= node && node < self.hi
    }
}

/// Splits `n` nodes into `shards` contiguous ranges whose sizes
/// differ by at most one (larger ranges first). `shards` is clamped
/// to `1..=n` (for `n > 0`), so every returned range is nonempty.
#[must_use]
pub fn partition(n: usize, shards: usize) -> Vec<ShardRange> {
    let k = shards.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut lo = 0;
    for s in 0..k {
        let size = base + usize::from(s < extra);
        ranges.push(ShardRange { lo, hi: lo + size });
        lo += size;
    }
    ranges
}

/// The node → shard index map for a partition from [`partition`].
#[must_use]
pub fn shard_map(ranges: &[ShardRange]) -> Vec<u32> {
    let n = ranges.last().map_or(0, |r| r.hi);
    let mut map = vec![0u32; n];
    for (s, r) in ranges.iter().enumerate() {
        map[r.lo..r.hi].fill(s as u32);
    }
    map
}

/// Double-buffered per-destination mailbox lanes for cross-shard
/// traffic.
///
/// Each shard owns one `Mailbox` per kind of cross-shard effect (wire
/// pushes, credit returns). During the parallel phase the shard
/// pushes into the *fill* bank; at the cycle barrier the coordinator
/// [`Mailbox::flip`]s every mailbox and drains the *drain* bank, so
/// the bank being merged is never the bank being written. Lanes keep
/// their capacity across cycles — the steady state allocates nothing.
#[derive(Debug)]
pub struct Mailbox<T> {
    fill: Vec<Vec<T>>,
    drain: Vec<Vec<T>>,
}

impl<T: Clone> Clone for Mailbox<T> {
    /// Capacity-preserving (see [`crate::checkpoint::clone_vec`]):
    /// lanes keep their capacity across cycles by design, and forked
    /// runs must inherit it rather than re-pay the growth.
    fn clone(&self) -> Self {
        let lanes = |bank: &Vec<Vec<T>>| bank.iter().map(crate::checkpoint::clone_vec).collect();
        Mailbox {
            fill: lanes(&self.fill),
            drain: lanes(&self.drain),
        }
    }
}

impl<T> Mailbox<T> {
    /// A mailbox with `lanes` destination lanes per bank.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        Mailbox {
            fill: (0..lanes).map(|_| Vec::new()).collect(),
            drain: (0..lanes).map(|_| Vec::new()).collect(),
        }
    }

    /// Queues `item` for destination `lane` (parallel-phase side).
    #[inline]
    pub fn push(&mut self, lane: usize, item: T) {
        self.fill[lane].push(item);
    }

    /// Swaps the fill and drain banks (barrier side). After the flip,
    /// [`Mailbox::lane_mut`] exposes what the parallel phase pushed.
    pub fn flip(&mut self) {
        debug_assert!(
            self.drain.iter().all(Vec::is_empty),
            "mailbox drain bank not emptied at the previous barrier"
        );
        std::mem::swap(&mut self.fill, &mut self.drain);
    }

    /// The drain-bank lane for destination `lane`; the barrier merge
    /// empties it in place (keeping its capacity).
    pub fn lane_mut(&mut self, lane: usize) -> &mut Vec<T> {
        &mut self.drain[lane]
    }

    /// Whether both banks are empty (between-cycles invariant for
    /// tests).
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.fill.iter().all(Vec::is_empty) && self.drain.iter().all(Vec::is_empty)
    }
}

/// A raw pointer that may be smuggled into pool tasks.
///
/// Sharded stepping splits global per-node arrays into disjoint
/// per-shard slices *inside* the pool closure (safe `split_at_mut`
/// chains cannot cross the closure boundary). `SendPtr` carries the
/// base pointer across threads; the `T: Send` bound on its `Send`/
/// `Sync` impls keeps the compiler enforcing that the pointee itself
/// may move between threads.
///
/// # Safety contract for users
///
/// Dereferencing (e.g. via `std::slice::from_raw_parts_mut`) is only
/// sound if concurrent tasks touch disjoint index ranges and no
/// access outlives the borrow the pointer was created from —
/// [`WorkerPool::run`] returning strictly after every task (and every
/// worker) has left the job provides the lifetime half.
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wraps `ptr`.
    #[must_use]
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer.
    #[must_use]
    pub fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> std::fmt::Debug for SendPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendPtr({:p})", self.0)
    }
}

// SAFETY: moving/sharing the pointer value is only hazardous through
// dereferences, whose obligations are documented on `SendPtr`; the
// `T: Send` bound preserves the compiler's check that the pointee may
// be accessed from another thread.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// A type-erased job: `call(data, i)` runs task `i` of the closure
/// behind `data`.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer targets a `Fn(usize) + Sync` closure that
// `WorkerPool::run` keeps alive (and exclusively published) until
// every worker has left the job.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per `run`; workers use it to recognize new jobs.
    epoch: u64,
    job: Option<Job>,
    /// Number of tasks in the current job.
    tasks: usize,
    /// Workers currently inside the current job's claim loop.
    active: usize,
    shutdown: bool,
    /// First panic payload caught from a task this run.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that a new job (or shutdown) is available.
    work: Condvar,
    /// Signals the coordinator that the job completed.
    done: Condvar,
    /// Next unclaimed task index of the current job.
    cursor: AtomicUsize,
    /// Completed tasks of the current job.
    finished: AtomicUsize,
    /// Lock-free mirror of `epoch` for the workers' pre-park spin.
    epoch_hint: AtomicU64,
}

/// How long workers (and the coordinator) spin on the lock-free
/// epoch/finished mirrors before parking on a condvar. Back-to-back
/// simulation cycles re-dispatch within microseconds, so a short spin
/// usually catches the next cycle without a futex round trip; the
/// bound keeps the waste negligible when the pool goes idle.
const SPIN: u32 = 256;

/// A persistent pool of worker threads executing indexed task batches
/// with a completion barrier.
///
/// [`WorkerPool::run`] publishes a closure and a task count; workers
/// (plus the calling thread) claim task indices off a shared atomic
/// cursor and `run` returns only when every task has finished *and*
/// every worker has left the job — so the closure may borrow local
/// state, and the next `run` can never race a straggler. Between runs
/// the workers park on a condvar after a short spin; the steady state
/// allocates nothing.
///
/// `run` takes `&mut self`: one job at a time, enforced at compile
/// time.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Clone for WorkerPool {
    /// A *fresh* pool of the same width. A pool holds no simulation
    /// state — only parked threads — so snapshotting a network that
    /// owns one (see `noc_sim::checkpoint`) just needs an equivalent
    /// pool, not the same threads. The clone spawns its own workers;
    /// the original's keep running undisturbed.
    fn clone(&self) -> Self {
        WorkerPool::new(self.workers())
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

unsafe fn call_thunk<F: Fn(usize)>(data: *const (), i: usize) {
    // SAFETY: `data` was produced from `&F` in `run`, which outlives
    // the job (see `Job`'s safety comment).
    let f = unsafe { &*data.cast::<F>() };
    f(i);
}

impl WorkerPool {
    /// A pool with `workers` background threads. `run` also executes
    /// tasks on the calling thread, so a pool for `k`-way parallelism
    /// wants `k - 1` workers; `workers == 0` is valid and makes `run`
    /// purely sequential.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                tasks: 0,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            epoch_hint: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("noc-par-worker".into())
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of background worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(i)` for every `i in 0..tasks`, in parallel across the
    /// pool plus the calling thread, returning when all tasks are
    /// done. Tasks are claimed dynamically, so which thread runs
    /// which index is unspecified — callers must make task outcomes
    /// schedule-independent (disjoint state per index).
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is resumed on the calling thread
    /// after the batch completes (remaining tasks still run).
    pub fn run<F: Fn(usize) + Sync>(&mut self, tasks: usize, f: &F) {
        if tasks == 0 {
            return;
        }
        let job = Job {
            data: std::ptr::from_ref(f).cast::<()>(),
            call: call_thunk::<F>,
        };
        self.shared.cursor.store(0, Ordering::SeqCst);
        self.shared.finished.store(0, Ordering::SeqCst);
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            debug_assert!(st.job.is_none(), "WorkerPool::run re-entered");
            st.job = Some(job);
            st.tasks = tasks;
            st.epoch += 1;
            self.shared.epoch_hint.store(st.epoch, Ordering::Release);
        }
        self.shared.work.notify_all();
        // The coordinator participates in the claim loop.
        Self::work_batch(&self.shared, job, tasks);
        // Wait until every task finished AND every worker left the
        // claim loop: only then is it safe to invalidate `job` (and
        // for the caller's borrows to end).
        for _ in 0..SPIN {
            if self.shared.finished.load(Ordering::Acquire) == tasks {
                break;
            }
            std::hint::spin_loop();
        }
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        while self.shared.finished.load(Ordering::Acquire) != tasks || st.active != 0 {
            st = self.shared.done.wait(st).expect("pool lock poisoned");
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }

    /// The shared claim loop: grab the next unclaimed index, run it,
    /// count it finished; signal `done` on the last one.
    fn work_batch(shared: &PoolShared, job: Job, tasks: usize) {
        loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: `job` is live for the duration of the batch
                // (see `Job`).
                unsafe { (job.call)(job.data, i) }
            }));
            if let Err(payload) = outcome {
                let mut st = shared.state.lock().expect("pool lock poisoned");
                st.panic.get_or_insert(payload);
            }
            if shared.finished.fetch_add(1, Ordering::AcqRel) + 1 == tasks {
                // Empty critical section: pairs with the coordinator's
                // check-then-wait under the same lock.
                drop(shared.state.lock().expect("pool lock poisoned"));
                shared.done.notify_all();
            }
        }
    }

    fn worker_loop(shared: &PoolShared) {
        let mut seen_epoch = 0u64;
        loop {
            // Lock-free pre-park spin: back-to-back cycles republish
            // within microseconds.
            for _ in 0..SPIN {
                if shared.epoch_hint.load(Ordering::Acquire) != seen_epoch {
                    break;
                }
                std::hint::spin_loop();
            }
            let (job, tasks) = {
                let mut st = shared.state.lock().expect("pool lock poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch != seen_epoch {
                        if let Some(job) = st.job {
                            seen_epoch = st.epoch;
                            st.active += 1;
                            break (job, st.tasks);
                        }
                        // The job already completed; skip this epoch.
                        seen_epoch = st.epoch;
                    }
                    st = shared.work.wait(st).expect("pool lock poisoned");
                }
            };
            Self::work_batch(shared, job, tasks);
            let mut st = shared.state.lock().expect("pool lock poisoned");
            st.active -= 1;
            if st.active == 0 {
                drop(st);
                shared.done.notify_all();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A write-once result slot shared across pool workers.
///
/// Safety rests on the pool's claim discipline: each index is handed
/// to exactly one worker, which is the only writer of that slot, and
/// `run` returning happens-after every task.
struct MapSlot<T>(UnsafeCell<Option<T>>);

// SAFETY: see `MapSlot` — disjoint per-index access, joined before read.
unsafe impl<T: Send> Sync for MapSlot<T> {}

/// Maps `f` over `items` on `pool`, preserving input order in the
/// output. Items are claimed dynamically (long items pipeline with
/// short ones); each is processed exactly once.
pub fn pool_map<T, R, F>(pool: &mut WorkerPool, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let inputs: Vec<MapSlot<T>> = items
        .into_iter()
        .map(|t| MapSlot(UnsafeCell::new(Some(t))))
        .collect();
    let outputs: Vec<MapSlot<R>> = (0..n).map(|_| MapSlot(UnsafeCell::new(None))).collect();
    pool.run(n, &|i| {
        // SAFETY: the pool hands index `i` to exactly one task, so
        // this is the only access to either slot `i` during the run.
        let item = unsafe { &mut *inputs[i].0.get() }
            .take()
            .expect("item claimed twice");
        let result = f(item);
        unsafe { *outputs[i].0.get() = Some(result) };
    });
    outputs
        .into_iter()
        .map(|slot| slot.0.into_inner().expect("task finished without a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_contiguously() {
        for n in [1usize, 2, 7, 64, 65] {
            for k in [1usize, 2, 3, 4, 7, 100] {
                let ranges = partition(n, k);
                assert_eq!(ranges[0].lo, 0);
                assert_eq!(ranges.last().unwrap().hi, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].hi, w[1].lo);
                    assert!(w[0].len() >= w[1].len());
                    assert!(w[0].len() - w[1].len() <= 1);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let map = shard_map(&ranges);
                for (node, &s) in map.iter().enumerate() {
                    assert!(ranges[s as usize].contains(node));
                }
            }
        }
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let mut pool = WorkerPool::new(3);
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(counts.len(), &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn pool_with_zero_workers_is_sequential() {
        let mut pool = WorkerPool::new(0);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_map_preserves_order() {
        let mut pool = WorkerPool::new(2);
        let out = pool_map(&mut pool, (0..64u64).rev().collect(), |x| x * 2);
        assert_eq!(out, (0..64u64).rev().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_propagates_task_panics() {
        let mut pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                assert!(i != 5, "boom");
            });
        }));
        assert!(caught.is_err());
        // The pool survives and runs the next batch normally.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn mailbox_flip_exposes_pushed_items() {
        let mut m: Mailbox<u32> = Mailbox::new(2);
        m.push(1, 7);
        m.push(0, 3);
        m.flip();
        assert_eq!(m.lane_mut(0).drain(..).collect::<Vec<_>>(), vec![3]);
        assert_eq!(m.lane_mut(1).drain(..).collect::<Vec<_>>(), vec![7]);
        assert!(m.is_clear());
    }
}
