//! Deterministic routing algorithms.
//!
//! The paper evaluates LOFT with dimension-order (XY) routing on an
//! 8×8 mesh. We also provide YX order; both are deadlock-free on
//! meshes. Routing is *deterministic*: the paper relies on every flow
//! using the same path for all its traffic so that per-link frame
//! reservations are meaningful.

use crate::flit::NodeId;
use crate::topology::Topology;

/// One of a router's five ports.
///
/// `Local` is the port facing the processing element (injection on the
/// input side, ejection on the output side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards decreasing y.
    North,
    /// Towards increasing x.
    East,
    /// Towards increasing y.
    South,
    /// Towards decreasing x.
    West,
    /// The processing-element port.
    Local,
}

impl Direction {
    /// The four router-to-router directions, in index order.
    pub const CARDINALS: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// All five ports, in index order (`Local` last).
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
    ];

    /// Number of ports on a router.
    pub const COUNT: usize = 5;

    /// Returns the opposite direction.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Direction::Local`], which has no
    /// opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => panic!("the local port has no opposite"),
        }
    }

    /// Stable index in `0..5` for array-indexed port state.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 5`.
    pub fn from_index(idx: usize) -> Direction {
        Direction::ALL[idx]
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A deterministic routing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Routing {
    /// Dimension-order routing, x dimension first (the paper's choice).
    #[default]
    XY,
    /// Dimension-order routing, y dimension first.
    YX,
}

impl Routing {
    /// Returns the output port taken at the router of `current` for a
    /// packet headed to `dst`.
    ///
    /// Returns [`Direction::Local`] when `current == dst` (the packet
    /// ejects). On tori the shorter wrap direction is chosen, ties
    /// resolved towards East/South.
    pub fn next_hop(self, topo: &Topology, current: NodeId, dst: NodeId) -> Direction {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        match self {
            Routing::XY => {
                if cx != dx {
                    Self::x_step(topo, cx, dx)
                } else if cy != dy {
                    Self::y_step(topo, cy, dy)
                } else {
                    Direction::Local
                }
            }
            Routing::YX => {
                if cy != dy {
                    Self::y_step(topo, cy, dy)
                } else if cx != dx {
                    Self::x_step(topo, cx, dx)
                } else {
                    Direction::Local
                }
            }
        }
    }

    fn x_step(topo: &Topology, cx: u16, dx: u16) -> Direction {
        let w = topo.width() as i32;
        let diff = dx as i32 - cx as i32;
        if matches!(topo, Topology::Torus { .. }) {
            // Choose the shorter wrap direction; ties go East.
            let east = diff.rem_euclid(w);
            if east <= w - east {
                Direction::East
            } else {
                Direction::West
            }
        } else if diff > 0 {
            Direction::East
        } else {
            Direction::West
        }
    }

    fn y_step(topo: &Topology, cy: u16, dy: u16) -> Direction {
        let h = topo.height() as i32;
        let diff = dy as i32 - cy as i32;
        if matches!(topo, Topology::Torus { .. }) {
            let south = diff.rem_euclid(h);
            if south <= h - south {
                Direction::South
            } else {
                Direction::North
            }
        } else if diff > 0 {
            Direction::South
        } else {
            Direction::North
        }
    }

    /// Returns the full path of a packet as the list of nodes visited,
    /// starting with `src` and ending with `dst` (inclusive).
    ///
    /// # Example
    ///
    /// ```
    /// use noc_sim::topology::Topology;
    /// use noc_sim::routing::Routing;
    ///
    /// let m = Topology::mesh(8, 8);
    /// let path = Routing::XY.path(&m, m.node(0, 0), m.node(2, 1));
    /// let ids: Vec<u32> = path.iter().map(|n| n.index() as u32).collect();
    /// assert_eq!(ids, vec![0, 1, 2, 10]);
    /// ```
    pub fn path(self, topo: &Topology, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut nodes = vec![src];
        let mut cur = src;
        while cur != dst {
            let dir = self.next_hop(topo, cur, dst);
            cur = topo
                .neighbor(cur, dir)
                .expect("routing stepped off the topology");
            nodes.push(cur);
            assert!(nodes.len() <= topo.num_nodes() + 1, "routing loop detected");
        }
        nodes
    }

    /// Returns the sequence of (router, output direction) pairs a
    /// packet traverses, ending with the ejection `(dst, Local)` hop.
    pub fn port_path(self, topo: &Topology, src: NodeId, dst: NodeId) -> Vec<(NodeId, Direction)> {
        let mut hops = Vec::new();
        let mut cur = src;
        loop {
            let dir = self.next_hop(topo, cur, dst);
            hops.push((cur, dir));
            if dir == Direction::Local {
                return hops;
            }
            cur = topo
                .neighbor(cur, dir)
                .expect("routing stepped off the topology");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Direction::CARDINALS {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_has_no_opposite() {
        let _ = Direction::Local.opposite();
    }

    #[test]
    fn xy_goes_x_first() {
        let m = Topology::mesh(8, 8);
        let path = Routing::XY.path(&m, m.node(0, 0), m.node(3, 2));
        // x sweep then y sweep.
        let coords: Vec<(u16, u16)> = path.iter().map(|&n| m.coords(n)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn yx_goes_y_first() {
        let m = Topology::mesh(8, 8);
        let path = Routing::YX.path(&m, m.node(0, 0), m.node(2, 2));
        let coords: Vec<(u16, u16)> = path.iter().map(|&n| m.coords(n)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]);
    }

    #[test]
    fn path_length_matches_hop_distance() {
        let m = Topology::mesh(8, 8);
        for a in [0u32, 5, 17, 63] {
            for b in [0u32, 9, 42, 63] {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                let path = Routing::XY.path(&m, a, b);
                assert_eq!(path.len() as u32 - 1, m.hop_distance(a, b));
            }
        }
    }

    #[test]
    fn port_path_ends_at_local() {
        let m = Topology::mesh(4, 4);
        let hops = Routing::XY.port_path(&m, m.node(0, 0), m.node(3, 3));
        assert_eq!(hops.last(), Some(&(m.node(3, 3), Direction::Local)));
        assert_eq!(hops.len(), 7); // 6 link hops + ejection
    }

    #[test]
    fn self_route_is_immediate_ejection() {
        let m = Topology::mesh(4, 4);
        let n = m.node(2, 2);
        assert_eq!(Routing::XY.next_hop(&m, n, n), Direction::Local);
        assert_eq!(Routing::XY.path(&m, n, n), vec![n]);
    }

    #[test]
    fn torus_prefers_shorter_wrap() {
        let t = Topology::torus(8, 8);
        // 0 -> 7 on a ring of 8 is 1 hop West via wrap.
        assert_eq!(
            Routing::XY.next_hop(&t, t.node(0, 0), t.node(7, 0)),
            Direction::West
        );
        // 0 -> 3 is 3 hops East.
        assert_eq!(
            Routing::XY.next_hop(&t, t.node(0, 0), t.node(3, 0)),
            Direction::East
        );
        let path = Routing::XY.path(&t, t.node(0, 0), t.node(7, 7));
        assert_eq!(path.len(), 3); // wrap west + wrap north
    }
}
