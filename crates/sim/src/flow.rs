//! QoS flow specifications and frame-reservation assignment.
//!
//! The paper models QoS demand as a set of *flows*: unidirectional
//! source→destination streams, each with a bandwidth share. In both
//! GSF and LOFT a flow `flow_ij` is assigned a reservation `R_ij` —
//! the number of slots it may claim per frame — and on every link the
//! sum of reservations must not exceed the frame size `F`
//! (Section 3.1). With deterministic routing the paper further assumes
//! a flow uses the *same* reservation on every link of its path
//! (Section 5.1); [`FlowSet::assign_reservations`] implements exactly
//! that policy, scaling relative weights to the most contended link.

use crate::error::ConfigError;
use crate::flit::{FlowId, NodeId};
use crate::routing::{Direction, Routing};
use crate::topology::Topology;

/// A scheduling point a flow's traffic passes through.
///
/// Every link in the network is an output port of something: the
/// source NIC (injection), or a router (the four cardinal ports plus
/// the ejection `Local` port at the destination router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Link {
    /// The NIC→router injection link at `NodeId`.
    Injection(NodeId),
    /// A router output port.
    Output(NodeId, Direction),
}

/// One QoS flow: a unidirectional stream with a relative bandwidth
/// weight.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// The flow's identifier (index into the owning [`FlowSet`]).
    pub id: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Relative bandwidth weight; reservations are proportional to it.
    pub weight: f64,
}

/// An immutable collection of flows over one topology + routing,
/// with helpers to compute paths, link loads, and reservations.
///
/// # Example
///
/// ```
/// use noc_sim::topology::Topology;
/// use noc_sim::routing::Routing;
/// use noc_sim::flow::FlowSet;
///
/// let mesh = Topology::mesh(8, 8);
/// let mut flows = FlowSet::new(mesh, Routing::XY);
/// // All other nodes send to node 63 (hotspot traffic).
/// for n in mesh.nodes().filter(|n| n.index() != 63) {
///     flows.add(n, mesh.node(7, 7), 1.0);
/// }
/// let r = flows.assign_reservations(128)?;
/// // 63 equal flows share the ejection link of 128 quantum slots: 2 each.
/// assert!(r.iter().all(|&ri| ri == 2));
/// # Ok::<(), noc_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowSet {
    topo: Topology,
    routing: Routing,
    flows: Vec<FlowSpec>,
}

impl FlowSet {
    /// Creates an empty flow set for the given topology and routing.
    pub fn new(topo: Topology, routing: Routing) -> Self {
        FlowSet {
            topo,
            routing,
            flows: Vec::new(),
        }
    }

    /// Adds a flow and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (a flow must cross at least the
    /// injection and ejection links of distinct nodes), or if `weight`
    /// is not strictly positive and finite.
    pub fn add(&mut self, src: NodeId, dst: NodeId, weight: f64) -> FlowId {
        assert!(src != dst, "flows must connect distinct nodes");
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be positive and finite"
        );
        let id = FlowId::new(self.flows.len() as u32);
        self.flows.push(FlowSpec {
            id,
            src,
            dst,
            weight,
        });
        id
    }

    /// The topology the flows live on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing algorithm used for all paths.
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the set contains no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Returns the flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flow(&self, id: FlowId) -> &FlowSpec {
        &self.flows[id.index()]
    }

    /// Iterates over all flows in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, FlowSpec> {
        self.flows.iter()
    }

    /// The ordered list of links (scheduling points) flow `id`
    /// traverses: injection link, then each router output port ending
    /// with the destination's ejection port.
    pub fn links(&self, id: FlowId) -> Vec<Link> {
        let f = self.flow(id);
        let mut links = vec![Link::Injection(f.src)];
        for (node, dir) in self.routing.port_path(&self.topo, f.src, f.dst) {
            links.push(Link::Output(node, dir));
        }
        links
    }

    /// Sum of flow weights crossing each link, for links used by at
    /// least one flow.
    pub fn link_loads(&self) -> std::collections::BTreeMap<Link, f64> {
        let mut loads = std::collections::BTreeMap::new();
        for f in &self.flows {
            for link in self.links(f.id) {
                *loads.entry(link).or_insert(0.0) += f.weight;
            }
        }
        loads
    }

    /// Assigns per-flow reservations `R_ij` (in frame slots) such that
    /// reservations are proportional to weights and on every link the
    /// sum of reservations is at most `frame_capacity` slots.
    ///
    /// The same reservation is used on every link of a flow's path, as
    /// assumed by the paper (Section 5.1).
    ///
    /// # Errors
    ///
    /// Returns an error if the set is empty, or if scaling to the most
    /// contended link would leave some flow with a zero reservation
    /// (its weight is too small for the frame capacity).
    pub fn assign_reservations(&self, frame_capacity: u32) -> Result<Vec<u32>, ConfigError> {
        if self.flows.is_empty() {
            return Err(ConfigError::new("flow set is empty"));
        }
        if frame_capacity == 0 {
            return Err(ConfigError::new("frame capacity must be positive"));
        }
        let loads = self.link_loads();
        let max_load = loads.values().fold(0.0_f64, |a, &b| a.max(b));
        debug_assert!(max_load > 0.0);
        let scale = frame_capacity as f64 / max_load;
        let mut out = Vec::with_capacity(self.flows.len());
        for f in &self.flows {
            let r = (f.weight * scale).floor() as u32;
            if r == 0 {
                return Err(ConfigError::new(format!(
                    "flow {} weight {} too small: its reservation would be zero \
                     with frame capacity {}",
                    f.id, f.weight, frame_capacity
                )));
            }
            out.push(r);
        }
        // Floor rounding can only decrease per-link sums below the
        // capacity bound, so the result is always feasible.
        debug_assert!(self.check_reservations(&out, frame_capacity).is_ok());
        Ok(out)
    }

    /// Validates explicit reservations: every flow positive, and the
    /// per-link sums within `frame_capacity`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first oversubscribed link, or the
    /// first flow with a zero reservation, or a length mismatch.
    pub fn check_reservations(
        &self,
        reservations: &[u32],
        frame_capacity: u32,
    ) -> Result<(), ConfigError> {
        if reservations.len() != self.flows.len() {
            return Err(ConfigError::new(format!(
                "expected {} reservations, got {}",
                self.flows.len(),
                reservations.len()
            )));
        }
        if let Some(idx) = reservations.iter().position(|&r| r == 0) {
            return Err(ConfigError::new(format!(
                "flow f{idx} has a zero reservation"
            )));
        }
        let mut sums: std::collections::BTreeMap<Link, u64> = std::collections::BTreeMap::new();
        for f in &self.flows {
            for link in self.links(f.id) {
                *sums.entry(link).or_insert(0) += reservations[f.id.index()] as u64;
            }
        }
        for (link, sum) in sums {
            if sum > frame_capacity as u64 {
                return Err(ConfigError::new(format!(
                    "link {link:?} oversubscribed: total reservation {sum} \
                     exceeds frame capacity {frame_capacity}"
                )));
            }
        }
        Ok(())
    }

    /// Ideal throughput share of each flow on its most contended link,
    /// in slots per slot-time (`R_ij / F` of the paper's model), given
    /// explicit reservations.
    pub fn ideal_share(&self, reservations: &[u32], frame_capacity: u32) -> Vec<f64> {
        self.flows
            .iter()
            .map(|f| reservations[f.id.index()] as f64 / frame_capacity as f64)
            .collect()
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = &'a FlowSpec;
    type IntoIter = std::slice::Iter<'a, FlowSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Topology {
        Topology::mesh(8, 8)
    }

    #[test]
    fn links_include_injection_and_ejection() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        let id = fs.add(m.node(0, 0), m.node(1, 0), 1.0);
        let links = fs.links(id);
        assert_eq!(
            links,
            vec![
                Link::Injection(m.node(0, 0)),
                Link::Output(m.node(0, 0), Direction::East),
                Link::Output(m.node(1, 0), Direction::Local),
            ]
        );
    }

    #[test]
    fn hotspot_equal_allocation_matches_paper() {
        // 63 flows to node 63 over a 128-quantum frame: R = 2 each.
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        for n in m.nodes() {
            if n.index() != 63 {
                fs.add(n, NodeId::new(63), 1.0);
            }
        }
        let r = fs.assign_reservations(128).unwrap();
        assert_eq!(r.len(), 63);
        assert!(r.iter().all(|&x| x == 2));
        fs.check_reservations(&r, 128).unwrap();
    }

    #[test]
    fn weighted_allocation_is_proportional() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        // Two flows sharing the same ejection link with 3:1 weights.
        fs.add(NodeId::new(0), NodeId::new(63), 3.0);
        fs.add(NodeId::new(56), NodeId::new(63), 1.0);
        let r = fs.assign_reservations(128).unwrap();
        assert_eq!(r, vec![96, 32]);
    }

    #[test]
    fn zero_reservation_rejected() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        fs.add(NodeId::new(0), NodeId::new(63), 1.0);
        fs.add(NodeId::new(56), NodeId::new(63), 1e-9);
        let err = fs.assign_reservations(128).unwrap_err();
        assert!(err.message().contains("zero"));
    }

    #[test]
    fn oversubscription_detected() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        fs.add(NodeId::new(0), NodeId::new(63), 1.0);
        fs.add(NodeId::new(56), NodeId::new(63), 1.0);
        let err = fs.check_reservations(&[100, 100], 128).unwrap_err();
        assert!(err.message().contains("oversubscribed"));
        fs.check_reservations(&[64, 64], 128).unwrap();
    }

    #[test]
    fn disjoint_flows_each_get_full_frame() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        fs.add(m.node(0, 0), m.node(1, 0), 1.0);
        fs.add(m.node(0, 7), m.node(1, 7), 1.0);
        let r = fs.assign_reservations(128).unwrap();
        assert_eq!(r, vec![128, 128]);
    }

    #[test]
    fn link_loads_accumulate() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        fs.add(m.node(0, 0), m.node(2, 0), 1.0);
        fs.add(m.node(1, 0), m.node(2, 0), 2.0);
        let loads = fs.link_loads();
        // Link (1,0)->E is shared by both flows.
        let shared = Link::Output(m.node(1, 0), Direction::East);
        assert_eq!(loads.get(&shared), Some(&3.0));
        // Ejection at (2,0) also shared.
        let eject = Link::Output(m.node(2, 0), Direction::Local);
        assert_eq!(loads.get(&eject), Some(&3.0));
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn self_flow_rejected() {
        let m = mesh8();
        let mut fs = FlowSet::new(m, Routing::XY);
        fs.add(NodeId::new(5), NodeId::new(5), 1.0);
    }

    #[test]
    fn empty_set_errors() {
        let fs = FlowSet::new(mesh8(), Routing::XY);
        assert!(fs.assign_reservations(128).is_err());
        assert!(fs.is_empty());
    }
}
