//! A fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! The per-cycle loops key maps with small integers and integer
//! tuples (`(flow, qid)`, packet ids). `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per lookup — pure overhead
//! here, where every key is simulator-generated. This is the
//! FxHash/firefox mixer: fold each word into the state with a
//! multiply by a large odd constant and a rotate. No external
//! dependency; plugs into `std::collections::HashMap` through
//! [`BuildHasherDefault`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (derived from the golden ratio,
/// `2^64 / phi`), chosen to spread consecutive integers across the
/// high bits that `HashMap` uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The mixer state. One `u64`; each written word rotates and
/// multiplies it.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`] — for simulator-internal integer
/// keys only (not attacker-controlled input).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_tuple_keys() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for f in 0..64u32 {
            for q in 0..64u64 {
                m.insert((f, q), u64::from(f) * 1000 + q);
            }
        }
        assert_eq!(m.len(), 64 * 64);
        for f in 0..64u32 {
            for q in 0..64u64 {
                assert_eq!(m.remove(&(f, q)), Some(u64::from(f) * 1000 + q));
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn consecutive_keys_spread() {
        // Consecutive integers must not collapse onto a few buckets:
        // check the low 6 finish bits take many distinct values.
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            seen.insert(h.finish() >> 58);
        }
        assert!(
            seen.len() > 32,
            "only {} distinct high-bit patterns",
            seen.len()
        );
    }
}
