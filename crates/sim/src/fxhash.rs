//! A fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! The per-cycle loops key maps with small integers and integer
//! tuples (`(flow, qid)`, packet ids). `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per lookup — pure overhead
//! here, where every key is simulator-generated. This is the
//! FxHash/firefox mixer: fold each word into the state with a
//! multiply by a large odd constant and a rotate. No external
//! dependency; plugs into `std::collections::HashMap` through
//! [`BuildHasherDefault`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (derived from the golden ratio,
/// `2^64 / phi`), chosen to spread consecutive integers across the
/// high bits that `HashMap` uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The mixer state. One `u64`; each written word rotates and
/// multiplies it.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`] — for simulator-internal integer
/// keys only (not attacker-controlled input).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_tuple_keys() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for f in 0..64u32 {
            for q in 0..64u64 {
                m.insert((f, q), u64::from(f) * 1000 + q);
            }
        }
        assert_eq!(m.len(), 64 * 64);
        for f in 0..64u32 {
            for q in 0..64u64 {
                assert_eq!(m.remove(&(f, q)), Some(u64::from(f) * 1000 + q));
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        // No per-instance or per-process seeding: the same key always
        // hashes to the same value (a prerequisite for reproducible
        // map iteration avoidance bugs to stay reproducible).
        let hash = |k: u64| {
            let mut h = FxHasher::default();
            h.write_u64(k);
            h.finish()
        };
        for k in [0, 1, 42, u64::MAX] {
            assert_eq!(hash(k), hash(k));
        }
        assert_ne!(hash(1), hash(2));
    }

    #[test]
    fn write_order_distinguishes_tuples() {
        // (a, b) and (b, a) must hash differently in general — the
        // rotate before each multiply makes the mix order-sensitive.
        let pair = |a: u64, b: u64| {
            let mut h = FxHasher::default();
            h.write_u64(a);
            h.write_u64(b);
            h.finish()
        };
        assert_ne!(pair(1, 2), pair(2, 1));
        assert_ne!(pair(0, 7), pair(7, 0));
    }

    #[test]
    fn byte_writes_match_word_padding() {
        // write() folds bytes in little-endian 8-byte chunks,
        // zero-padding the tail: a 3-byte slice equals the padded
        // word written directly.
        let mut bytes = FxHasher::default();
        bytes.write(&[0xAA, 0xBB, 0xCC]);
        let mut word = FxHasher::default();
        word.write_u64(u64::from_le_bytes([0xAA, 0xBB, 0xCC, 0, 0, 0, 0, 0]));
        assert_eq!(bytes.finish(), word.finish());
    }

    #[test]
    fn set_deduplicates_packet_like_keys() {
        let mut s: FxHashSet<(u32, u64)> = FxHashSet::default();
        for q in 0..100u64 {
            assert!(s.insert((3, q)));
            assert!(!s.insert((3, q)), "duplicate admitted");
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn consecutive_keys_spread() {
        // Consecutive integers must not collapse onto a few buckets:
        // check the low 6 finish bits take many distinct values.
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            seen.insert(h.finish() >> 58);
        }
        assert!(
            seen.len() > 32,
            "only {} distinct high-bit patterns",
            seen.len()
        );
    }
}
