//! # noc-sim — cycle-accurate network-on-chip simulation substrate
//!
//! This crate is the foundation of the LOFT reproduction (Ouyang & Xie,
//! MICRO 2010). It provides everything a flit-level, cycle-driven NoC
//! simulator needs and that every network model in this workspace
//! (wormhole baseline, GSF, LOFT) shares:
//!
//! * [`topology`] — mesh / torus / ring topologies with a fixed
//!   five-port router model (N/E/S/W/Local),
//! * [`routing`] — deterministic dimension-order routing,
//! * [`flit`] — packets, flits, flow identifiers,
//! * [`flow`] — QoS flow specifications and frame-reservation
//!   assignment (the `R_ij` of the paper),
//! * [`stats`] — latency/throughput statistics with warmup handling,
//! * [`telemetry`] — the zero-cost [`telemetry::Probe`] interface:
//!   per-link/per-buffer/per-flow observability monomorphized into
//!   the fabric, free when disabled ([`telemetry::NoopProbe`]) and
//!   shard-mergeable when live ([`telemetry::LiveProbe`]),
//! * [`rng`] — small deterministic RNGs so every run is reproducible,
//! * [`fxhash`] / [`worklist`] — allocation-light primitives for the
//!   per-cycle hot loops (fast integer hashing, active-index bitsets),
//! * [`engine`] — the [`engine::Network`] trait every network model
//!   implements plus the [`engine::Simulation`] driver that ties a
//!   traffic source, a network, and statistics together,
//! * [`checkpoint`] — warmup-once/fork-many: freeze a simulation at
//!   its warmup boundary ([`checkpoint::Checkpoint`]) and fork
//!   bit-identical measurement runs from it,
//! * [`fabric`] — the shared router fabric: one cycle-accurate
//!   datapath (links, credits, NICs, ejection, worklists) with
//!   pluggable [`fabric::RouterPolicy`] scheduling and an optional
//!   look-ahead channel for flit-reservation policies,
//! * [`slab`] — the generational [`slab::PacketStore`] that owns every
//!   in-flight packet; the datapaths move `Copy`-able
//!   [`slab::PacketRef`] handles instead of structs.
//!
//! # Example
//!
//! ```
//! use noc_sim::topology::Topology;
//! use noc_sim::routing::{Routing, Direction};
//!
//! let mesh = Topology::mesh(8, 8);
//! let route = Routing::XY;
//! // Node 0 is (0,0); node 63 is (7,7): XY routing goes East first.
//! let dir = route.next_hop(&mesh, mesh.node(0, 0), mesh.node(7, 7));
//! assert_eq!(dir, Direction::East);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod flit;
pub mod flow;
pub mod fxhash;
pub mod par;
pub mod rng;
pub mod routing;
pub mod slab;
pub mod stats;
pub mod telemetry;
pub mod topology;
pub mod worklist;

pub use checkpoint::Checkpoint;
pub use engine::{Network, RunConfig, RunInfo, Simulation, TrafficSource};
pub use error::ConfigError;
pub use flit::{FlowId, NodeId, Packet, PacketId};
pub use flow::{FlowSet, FlowSpec};
pub use fxhash::{FxHashMap, FxHashSet};
pub use routing::{Direction, Routing};
pub use slab::{PacketRef, PacketStore};
pub use stats::SimReport;
pub use telemetry::{LiveProbe, NoopProbe, PacketProbe, Probe, TelemetryReport};
pub use topology::Topology;
pub use worklist::ActiveSet;
