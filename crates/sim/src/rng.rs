//! Small deterministic random number generators.
//!
//! Every stochastic decision in this workspace flows from a single
//! `u64` seed so that experiments are exactly reproducible. We use
//! SplitMix64 for seeding and xoshiro256** for the stream — both tiny,
//! fast, and well studied. (The substrate keeps its own implementation
//! so the simulation core has no external dependencies; higher layers
//! may still use the `rand` crate for distributions.)

/// SplitMix64: used to expand one seed into independent stream seeds.
///
/// # Example
///
/// ```
/// use noc_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse stream generator.
///
/// # Example
///
/// ```
/// use noc_sim::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(7);
/// let p = rng.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by expanding `seed` with SplitMix64, per
    /// the xoshiro authors' recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent stream for component `stream_id` of a
    /// simulation seeded with `seed` (e.g. one stream per node).
    pub fn for_stream(seed: u64, stream_id: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn a few outputs so nearby stream ids decorrelate.
        sm.next_u64();
        let s2 = sm.next_u64();
        Xoshiro256::seed_from(s2)
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// Values of `p` outside `[0, 1]` are clamped.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (cross-checked against the public
        // reference implementation).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(123);
        let mut b = Xoshiro256::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Xoshiro256::for_stream(1, 0);
        let mut b = Xoshiro256::for_stream(1, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = Xoshiro256::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256::seed_from(2);
        assert!(rng.bernoulli(1.5));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(0.0));
    }
}
