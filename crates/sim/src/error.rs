//! Error types shared by the simulation substrate.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a network or flow builder.
///
/// Returned by constructors that validate their arguments, e.g. flow
/// sets whose reservations oversubscribe a link, or topologies with a
/// zero dimension.
///
/// # Example
///
/// ```
/// use noc_sim::ConfigError;
///
/// let err = ConfigError::new("frame size must be positive");
/// assert_eq!(err.to_string(), "frame size must be positive");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    ///
    /// Messages follow the Rust convention: lowercase, no trailing
    /// punctuation.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Returns the human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let err = ConfigError::new("bad");
        assert_eq!(format!("{err}"), "bad");
        assert_eq!(err.message(), "bad");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn clone_and_eq() {
        let a = ConfigError::new("x");
        let b = a.clone();
        assert_eq!(a, b);
    }
}
