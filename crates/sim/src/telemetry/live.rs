//! The collecting probe: dense counters, windowed series, and
//! occupancy accumulators, designed for zero steady-state allocation
//! (all vectors grow on first touch and are reused thereafter).

use crate::fabric::PORTS;
use crate::flit::Packet;
use crate::stats::{Histogram, RunningStats};

use super::report::{
    jain_index, FlowTelemetry, TelemetryReport, WindowPoint, TELEMETRY_SCHEMA_VERSION,
};
use super::{BufKind, PacketProbe, Probe};

/// Per-flow accumulation while the run is live.
#[derive(Debug, Clone, Default)]
struct FlowAcc {
    packets: u64,
    flits: u64,
    latency: RunningStats,
    series: Vec<WindowPoint>,
}

/// The live telemetry probe: subscribes to every [`Probe`] event and
/// accumulates per-link counters, occupancy statistics, and per-flow
/// windowed series. [`LiveProbe::finish`] freezes the accumulation
/// into a [`TelemetryReport`].
///
/// All storage is dense vectors grown on demand (never a hash map),
/// so recording an event is an index bump and the steady state
/// allocates nothing once every index has been touched — the probe
/// passes the same `--alloc-budget` gate as the fabric itself.
#[derive(Debug, Clone)]
pub struct LiveProbe {
    /// Sampling / series window width in cycles.
    window: u64,
    /// Cycles observed so far (`last on_cycle argument + 1`).
    cycles: u64,
    link_flits: Vec<u64>,
    link_stalls: Vec<u64>,
    sched_book: Vec<u64>,
    sched_deny: Vec<u64>,
    link_resets: Vec<u64>,
    nic_stalls: Vec<u64>,
    occupancy: Vec<Vec<RunningStats>>,
    flows: Vec<FlowAcc>,
    histogram: Histogram,
}

impl LiveProbe {
    /// Creates a probe sampling occupancy (and bucketing flow series)
    /// every `window` cycles. Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "telemetry window must be at least one cycle");
        LiveProbe {
            window,
            cycles: 0,
            link_flits: Vec::new(),
            link_stalls: Vec::new(),
            sched_book: Vec::new(),
            sched_deny: Vec::new(),
            link_resets: Vec::new(),
            nic_stalls: Vec::new(),
            occupancy: vec![Vec::new(); BufKind::COUNT],
            flows: Vec::new(),
            histogram: Histogram::new(),
        }
    }

    /// The configured window width in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    fn bump(vec: &mut Vec<u64>, idx: usize, by: u64) {
        if vec.len() <= idx {
            vec.resize(idx + 1, 0);
        }
        vec[idx] += by;
    }

    fn merge_counts(into: &mut Vec<u64>, from: &[u64]) {
        if into.len() < from.len() {
            into.resize(from.len(), 0);
        }
        for (dst, &src) in into.iter_mut().zip(from) {
            *dst += src;
        }
    }

    /// Folds `point` into `series`, which is kept sorted by window.
    /// Deliveries arrive in near-monotonic window order (LOFT stamps
    /// ejections ahead of the current cycle, so small backward jumps
    /// happen at quantum boundaries); the common cases are "same
    /// window as the last point" and "a later window", with a binary
    /// search fallback for the rare out-of-order delivery.
    fn fold_point(series: &mut Vec<WindowPoint>, point: WindowPoint) {
        match series.last_mut() {
            Some(last) if last.window == point.window => {
                last.packets += point.packets;
                last.flits += point.flits;
                last.latency_sum += point.latency_sum;
            }
            Some(last) if last.window < point.window => series.push(point),
            None => series.push(point),
            _ => {
                let i = series.partition_point(|p| p.window < point.window);
                if let Some(p) = series.get_mut(i).filter(|p| p.window == point.window) {
                    p.packets += point.packets;
                    p.flits += point.flits;
                    p.latency_sum += point.latency_sum;
                } else {
                    series.insert(i, point);
                }
            }
        }
    }

    /// Freezes the accumulation into a [`TelemetryReport`]: pads the
    /// per-link tables to a common length, derives per-flow
    /// throughput and min service rate, and computes the QoS roll-up.
    #[must_use]
    pub fn finish(mut self) -> TelemetryReport {
        let links = [
            self.link_flits.len(),
            self.link_stalls.len(),
            self.sched_book.len(),
            self.sched_deny.len(),
            self.link_resets.len(),
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        for v in [
            &mut self.link_flits,
            &mut self.link_stalls,
            &mut self.sched_book,
            &mut self.sched_deny,
            &mut self.link_resets,
        ] {
            v.resize(links, 0);
        }

        let cycles = self.cycles;
        let window = self.window;
        let flows: Vec<FlowTelemetry> = self
            .flows
            .into_iter()
            .map(|acc| {
                let throughput = if cycles == 0 {
                    0.0
                } else {
                    acc.flits as f64 / cycles as f64
                };
                // Min windowed service rate over the flow's active
                // span. A window with no deliveries inside the span
                // is a zero — the series only stores non-empty
                // windows, so a gap in window indices is starvation.
                let min_service_rate = match (acc.series.first(), acc.series.last()) {
                    (Some(first), Some(last)) => {
                        let span = last.window - first.window + 1;
                        if (acc.series.len() as u64) < span {
                            0.0
                        } else {
                            let min_flits = acc.series.iter().map(|p| p.flits).min().unwrap_or(0);
                            min_flits as f64 / window as f64
                        }
                    }
                    _ => 0.0,
                };
                FlowTelemetry {
                    packets: acc.packets,
                    flits: acc.flits,
                    latency: acc.latency,
                    throughput,
                    min_service_rate,
                    series: acc.series,
                }
            })
            .collect();

        let rates: Vec<f64> = flows.iter().map(|f| f.throughput).collect();
        let (p50, p95, p99) = (
            self.histogram.quantile_upper_bound(0.50),
            self.histogram.quantile_upper_bound(0.95),
            self.histogram.quantile_upper_bound(0.99),
        );
        TelemetryReport {
            version: TELEMETRY_SCHEMA_VERSION,
            cycles,
            window,
            ports: PORTS,
            link_flits: self.link_flits,
            link_stalls: self.link_stalls,
            sched_book: self.sched_book,
            sched_deny: self.sched_deny,
            link_resets: self.link_resets,
            nic_stalls: self.nic_stalls,
            occupancy: self.occupancy,
            flows,
            jain: jain_index(&rates),
            latency_histogram: self.histogram,
            p50,
            p95,
            p99,
        }
    }
}

impl PacketProbe for LiveProbe {
    fn on_generated(&mut self, packet: &Packet) {
        // Generation only sizes the flow table early so delivery-time
        // growth is rarer; all counting happens at delivery.
        let flow = packet.id.flow.index();
        if self.flows.len() <= flow {
            self.flows.resize(flow + 1, FlowAcc::default());
        }
    }

    fn on_delivered(&mut self, packet: &Packet) {
        let flow = packet.id.flow.index();
        if self.flows.len() <= flow {
            self.flows.resize(flow + 1, FlowAcc::default());
        }
        let ejected = packet
            .ejected_at
            .expect("delivered packet must have an ejection stamp");
        let latency = packet
            .total_latency()
            .expect("delivered packet must have a latency");
        self.histogram.record(latency);
        let acc = &mut self.flows[flow];
        acc.packets += 1;
        acc.flits += u64::from(packet.len_flits);
        acc.latency.push(latency as f64);
        Self::fold_point(
            &mut acc.series,
            WindowPoint {
                window: ejected / self.window,
                packets: 1,
                flits: u64::from(packet.len_flits),
                latency_sum: latency,
            },
        );
    }
}

impl Probe for LiveProbe {
    const ENABLED: bool = true;

    fn fork(&self) -> Self {
        LiveProbe::new(self.window)
    }

    fn absorb(&mut self, shard: Self) {
        debug_assert_eq!(self.window, shard.window, "forks share the window");
        self.cycles = self.cycles.max(shard.cycles);
        Self::merge_counts(&mut self.link_flits, &shard.link_flits);
        Self::merge_counts(&mut self.link_stalls, &shard.link_stalls);
        Self::merge_counts(&mut self.sched_book, &shard.sched_book);
        Self::merge_counts(&mut self.sched_deny, &shard.sched_deny);
        Self::merge_counts(&mut self.link_resets, &shard.link_resets);
        Self::merge_counts(&mut self.nic_stalls, &shard.nic_stalls);
        for (kind, shard_occ) in shard.occupancy.into_iter().enumerate() {
            let occ = &mut self.occupancy[kind];
            if occ.len() < shard_occ.len() {
                occ.resize(shard_occ.len(), RunningStats::new());
            }
            for (dst, src) in occ.iter_mut().zip(&shard_occ) {
                dst.merge(src);
            }
        }
        if self.flows.len() < shard.flows.len() {
            self.flows.resize(shard.flows.len(), FlowAcc::default());
        }
        for (flow, acc) in shard.flows.into_iter().enumerate() {
            let dst = &mut self.flows[flow];
            dst.packets += acc.packets;
            dst.flits += acc.flits;
            dst.latency.merge(&acc.latency);
            for point in acc.series {
                Self::fold_point(&mut dst.series, point);
            }
        }
        self.histogram.merge(&shard.histogram);
    }

    fn sample_due(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.window)
    }

    fn on_link_flits(&mut self, link: usize, flits: u32) {
        Self::bump(&mut self.link_flits, link, u64::from(flits));
    }

    fn on_link_stall(&mut self, link: usize) {
        Self::bump(&mut self.link_stalls, link, 1);
    }

    fn on_nic_stall(&mut self, node: usize) {
        Self::bump(&mut self.nic_stalls, node, 1);
    }

    fn on_sched_book(&mut self, link: usize) {
        Self::bump(&mut self.sched_book, link, 1);
    }

    fn on_sched_deny(&mut self, link: usize) {
        Self::bump(&mut self.sched_deny, link, 1);
    }

    fn on_link_reset(&mut self, link: usize) {
        Self::bump(&mut self.link_resets, link, 1);
    }

    fn on_occupancy(&mut self, kind: BufKind, index: usize, occupied: u32) {
        let table = &mut self.occupancy[kind.index()];
        if table.len() <= index {
            table.resize(index + 1, RunningStats::new());
        }
        table[index].push(f64::from(occupied));
    }

    fn on_cycle(&mut self, cycle: u64) {
        self.cycles = self.cycles.max(cycle + 1);
    }

    fn tick_many(&mut self, from: u64, count: u64) {
        // `on_cycle` is a pure clock update, so the batch collapses to
        // its last cycle — bit-identical to replaying every tick.
        if count > 0 {
            self.cycles = self.cycles.max(from + count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, Packet, PacketId};

    fn delivered(flow: u32, seq: u64, created: u64, ejected: u64, len: u16) -> Packet {
        let mut p = Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq,
            },
            NodeId::new(0),
            NodeId::new(1),
            len,
            created,
        );
        p.injected_at = Some(created);
        p.ejected_at = Some(ejected);
        p
    }

    #[test]
    fn windowed_series_accumulates_in_order() {
        let mut probe = LiveProbe::new(10);
        probe.on_delivered(&delivered(0, 0, 0, 5, 4)); // window 0
        probe.on_delivered(&delivered(0, 1, 1, 9, 4)); // window 0
        probe.on_delivered(&delivered(0, 2, 2, 25, 4)); // window 2 (gap at 1)
        probe.on_cycle(29);
        let report = probe.finish();
        let flow = &report.flows[0];
        assert_eq!(flow.series.len(), 2);
        assert_eq!(
            flow.series[0],
            WindowPoint {
                window: 0,
                packets: 2,
                flits: 8,
                latency_sum: 5 + 8
            }
        );
        assert_eq!(
            flow.series[1],
            WindowPoint {
                window: 2,
                packets: 1,
                flits: 4,
                latency_sum: 23
            }
        );
        // The gap at window 1 forces the min service rate to zero.
        assert_eq!(flow.min_service_rate, 0.0);
        assert_eq!(flow.packets, 3);
        assert_eq!(report.cycles, 30);
    }

    #[test]
    fn out_of_order_delivery_folds_into_existing_window() {
        let mut probe = LiveProbe::new(10);
        probe.on_delivered(&delivered(0, 0, 0, 5, 1)); // window 0
        probe.on_delivered(&delivered(0, 1, 0, 25, 1)); // window 2
        probe.on_delivered(&delivered(0, 2, 0, 7, 1)); // back to window 0
        probe.on_delivered(&delivered(0, 3, 0, 15, 1)); // insert window 1
        let report = probe.finish();
        let series = &report.flows[0].series;
        assert_eq!(
            series.iter().map(|p| p.window).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(series[0].packets, 2);
        // Contiguous windows 0..=2, min flits 1 → rate 1/window.
        assert_eq!(report.flows[0].min_service_rate, 0.1);
    }

    #[test]
    fn min_service_rate_single_window() {
        let mut probe = LiveProbe::new(100);
        probe.on_delivered(&delivered(0, 0, 0, 10, 4));
        probe.on_delivered(&delivered(0, 1, 0, 20, 4));
        let report = probe.finish();
        // One active window holding 8 flits: 8 / 100 cycles.
        assert_eq!(report.flows[0].min_service_rate, 0.08);
    }

    #[test]
    fn empty_flow_has_empty_window_series() {
        let mut probe = LiveProbe::new(10);
        // Generated but never delivered: flow exists, series empty.
        let p = delivered(0, 0, 0, 5, 4);
        probe.on_generated(&p);
        let report = probe.finish();
        assert_eq!(report.flows.len(), 1);
        assert!(report.flows[0].series.is_empty());
        assert_eq!(report.flows[0].min_service_rate, 0.0);
        assert_eq!(report.flows[0].throughput, 0.0);
        // No flows delivered anything: vacuously fair.
        assert_eq!(report.jain, 1.0);
    }

    #[test]
    fn absorb_merges_forks_deterministically() {
        let mut main = LiveProbe::new(10);
        main.on_link_flits(3, 2);
        main.on_cycle(99);
        let mut a = main.fork();
        let mut b = main.fork();
        a.on_link_flits(3, 1);
        a.on_link_stall(0);
        a.on_occupancy(BufKind::Vc, 2, 4);
        b.on_link_flits(7, 5);
        b.on_occupancy(BufKind::Vc, 2, 6);
        main.absorb(a);
        main.absorb(b);
        let report = main.finish();
        assert_eq!(report.link_flits[3], 3);
        assert_eq!(report.link_flits[7], 5);
        assert_eq!(report.link_stalls[0], 1);
        let occ = report.occupancy(BufKind::Vc, 2);
        assert_eq!(occ.count(), 2);
        assert_eq!(occ.mean(), 5.0);
        assert_eq!(report.cycles, 100);
    }

    #[test]
    fn tick_many_matches_per_cycle_ticks() {
        let mut batched = LiveProbe::new(10);
        let mut stepped = LiveProbe::new(10);
        batched.tick_many(5, 20);
        for c in 5..25 {
            stepped.on_cycle(c);
        }
        assert_eq!(batched.cycles, stepped.cycles);
        // An empty batch is a no-op, even from a cycle beyond the
        // probe's current clock.
        batched.tick_many(1_000, 0);
        assert_eq!(batched.cycles, 25);
    }

    #[test]
    fn sampling_cadence_follows_window() {
        let probe = LiveProbe::new(50);
        assert!(probe.sample_due(0));
        assert!(!probe.sample_due(49));
        assert!(probe.sample_due(50));
        assert!(probe.sample_due(100));
    }
}
