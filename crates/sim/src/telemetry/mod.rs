//! Unified zero-cost telemetry: one probe interface for every layer.
//!
//! Every component that does interesting work — the [`VcFabric`]
//! phases, the LOFT link schedulers and reservation ports, the NICs,
//! and the simulation driver itself — reports through a single
//! [`Probe`] trait instead of growing its own counters. The trait is
//! monomorphized into the fabric, so the telemetry-off configuration
//! ([`NoopProbe`], the default type parameter everywhere) compiles to
//! literally nothing: every hook is an empty `#[inline]` function and
//! every sampling scan is gated on the associated
//! [`Probe::ENABLED`] constant, which the optimizer resolves at
//! compile time. Telemetry-off runs are bit-identical to a build
//! without the probe plumbing.
//!
//! The live implementation ([`LiveProbe`]) turns the event stream
//! into the observability document a serving stack wants: per-link
//! utilization and stall counters, buffer-occupancy summaries sampled
//! on a configurable window, per-flow windowed latency/throughput
//! series, and QoS roll-ups (latency percentiles, Jain fairness, min
//! service rate). [`LiveProbe::finish`] freezes it into a
//! [`TelemetryReport`] with a versioned JSON export.
//!
//! # Sharding
//!
//! Probes compose with `--threads N` the same way the fabric does:
//! each shard owns a [`Probe::fork`] of the main probe and only
//! records events for its own node range, and the owner merges the
//! forks back with [`Probe::absorb`] in ascending shard order — a
//! fixed order, so floating-point accumulators merge deterministically
//! and every counter is invariant across shard counts. Serial-phase
//! events (packet generation, ejection, end-of-cycle) go straight to
//! the main probe.
//!
//! [`VcFabric`]: crate::fabric::VcFabric

mod live;
mod report;

pub use live::LiveProbe;
pub use report::{
    jain_index, FlowTelemetry, TelemetryReport, WindowPoint, TELEMETRY_SCHEMA_VERSION,
};

use crate::flit::Packet;

/// The buffer classes whose occupancy the probes sample.
///
/// The meaning of the sample index depends on the class: buffer kinds
/// attached to a link use the global link index (`node * PORTS +
/// port`), per-node kinds use the node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BufKind {
    /// A virtual-channel input buffer (VC networks; occupancy in
    /// flits, indexed by the input link it sits on).
    Vc,
    /// LOFT's non-speculative central buffer (occupancy in quanta,
    /// indexed by the input link it serves).
    NonSpec,
    /// LOFT's speculative buffer (occupancy in quanta, indexed by the
    /// input link it serves).
    Spec,
    /// A source NIC's backlog — staged plus queued packets waiting to
    /// enter the network (indexed by node).
    Source,
}

impl BufKind {
    /// Number of buffer classes (for dense per-kind tables).
    pub const COUNT: usize = 4;

    /// Dense index of this class, `0..COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case class name used in the JSON export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BufKind::Vc => "vc",
            BufKind::NonSpec => "nonspec",
            BufKind::Spec => "spec",
            BufKind::Source => "source",
        }
    }
}

/// Packet-level telemetry events, shared by every consumer of the
/// simulation's output: the statistics collector behind [`SimReport`]
/// implements exactly this trait, and every full [`Probe`] extends
/// it. Defaults are empty so implementors opt into the events they
/// care about.
///
/// [`SimReport`]: crate::stats::SimReport
pub trait PacketProbe {
    /// A packet entered a source queue (called once per packet, at
    /// creation time).
    fn on_generated(&mut self, packet: &Packet) {
        let _ = packet;
    }

    /// A packet fully left the network (its last flit or quantum was
    /// ejected and the packet reassembled).
    fn on_delivered(&mut self, packet: &Packet) {
        let _ = packet;
    }
}

/// The fabric-level probe interface, monomorphized into the networks.
///
/// All event hooks default to empty bodies; [`NoopProbe`] overrides
/// nothing, so a telemetry-off network inlines every call away.
/// Components gate *scans* (work done only to produce telemetry, like
/// walking every buffer for an occupancy sample) on
/// [`Probe::ENABLED`] so the disabled configuration does not even
/// loop.
///
/// Link arguments are global link indices: `node * PORTS + port`,
/// with `port` the *output* direction at `node` (see
/// [`crate::fabric::PORTS`]).
pub trait Probe: PacketProbe + std::fmt::Debug + Send {
    /// Whether this probe observes anything at all. `false` lets the
    /// fabric skip telemetry-only work at compile time.
    const ENABLED: bool;

    /// Creates the per-shard instance handed to a parallel shard.
    /// Forks start empty but share configuration (e.g. the sampling
    /// window) with their parent.
    #[must_use]
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Merges a shard instance back into the owner. Callers absorb
    /// shards in ascending shard order, so order-sensitive
    /// accumulators stay deterministic and shard-count invariant (each
    /// shard only records events for its own disjoint node range).
    fn absorb(&mut self, shard: Self)
    where
        Self: Sized;

    /// Whether buffer occupancy should be sampled at `cycle`.
    /// Components ask once per cycle and emit [`Probe::on_occupancy`]
    /// for every buffer they own when it returns `true`.
    #[must_use]
    fn sample_due(&self, cycle: u64) -> bool {
        let _ = cycle;
        false
    }

    /// `flits` flits crossed `link` this cycle (LOFT reports whole
    /// data quanta, so its per-event count is `flits_per_quantum`).
    fn on_link_flits(&mut self, link: usize, flits: u32) {
        let _ = (link, flits);
    }

    /// An output link with traffic ready to go could not forward this
    /// cycle (switch allocation failed, or LOFT's buffer-space check
    /// denied the move).
    fn on_link_stall(&mut self, link: usize) {
        let _ = link;
    }

    /// A source NIC with a packet to inject was blocked this cycle
    /// (no credit, or no free central-buffer slot).
    fn on_nic_stall(&mut self, node: usize) {
        let _ = node;
    }

    /// A link scheduler booked a reservation on `link` (LOFT's LSF
    /// accepting a lookahead).
    fn on_sched_book(&mut self, link: usize) {
        let _ = link;
    }

    /// A link scheduler had lookahead work queued for `link` but
    /// could not book it this pass.
    fn on_sched_deny(&mut self, link: usize) {
        let _ = link;
    }

    /// `link` performed a local status reset (LOFT's idle-link
    /// resynchronization).
    fn on_link_reset(&mut self, link: usize) {
        let _ = link;
    }

    /// An occupancy sample: the buffer of class `kind` at `index`
    /// currently holds `occupied` units (flits, quanta, or packets —
    /// see [`BufKind`]).
    fn on_occupancy(&mut self, kind: BufKind, index: usize, occupied: u32) {
        let _ = (kind, index, occupied);
    }

    /// Cycle `cycle` finished. Lets the probe track elapsed time for
    /// utilization denominators without a side channel.
    fn on_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// Cycles `from..from + count` finished with no events — the
    /// batched form of [`Probe::on_cycle`] used by the quiescence
    /// fast-forward path. The default replays `on_cycle` per cycle so
    /// every implementation stays exactly equivalent to cycle-by-cycle
    /// stepping; probes whose `on_cycle` is a pure clock update (like
    /// [`LiveProbe`]) override it with the O(1) closed form.
    fn tick_many(&mut self, from: u64, count: u64) {
        for cycle in from..from + count {
            self.on_cycle(cycle);
        }
    }
}

/// The telemetry-off probe: a zero-sized type whose hooks are all the
/// trait's empty defaults. With `ENABLED = false` every
/// telemetry-only scan is statically skipped, so a
/// `VcFabric<_, NoopProbe>` compiles to the same hot loop as a build
/// with no probe plumbing at all — the golden determinism pins hold
/// bit-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl PacketProbe for NoopProbe {}

impl Probe for NoopProbe {
    const ENABLED: bool = false;

    #[inline]
    fn fork(&self) -> Self {
        NoopProbe
    }

    #[inline]
    fn absorb(&mut self, _shard: Self) {}

    #[inline]
    fn tick_many(&mut self, _from: u64, _count: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufkind_indices_are_dense() {
        let kinds = [
            BufKind::Vc,
            BufKind::NonSpec,
            BufKind::Spec,
            BufKind::Source,
        ];
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(kinds.len(), BufKind::COUNT);
    }

    #[test]
    fn noop_probe_defaults_are_inert() {
        let mut p = NoopProbe;
        const { assert!(!NoopProbe::ENABLED) };
        assert!(!p.sample_due(0));
        p.on_link_flits(0, 1);
        p.on_cycle(7);
        let fork = p.fork();
        p.absorb(fork);
        assert_eq!(p, NoopProbe);
    }
}
