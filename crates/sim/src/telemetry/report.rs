//! The frozen output of a telemetry run: merged counters, QoS
//! summaries, and the versioned JSON export.

use crate::stats::{Histogram, RunningStats};

use super::BufKind;

/// Version of the JSON document produced by
/// [`TelemetryReport::to_json`]. Bump on any breaking change to field
/// names or semantics; consumers check `telemetry_version` before
/// parsing anything else.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Jain's fairness index over per-flow service rates:
/// `J = (Σx)² / (n · Σx²)`, in `(0, 1]`, where `1` is perfectly fair
/// and `1/n` is one flow taking everything.
///
/// Degenerate inputs are *vacuously fair*: an empty slice (no flows
/// competing), a single flow, and all-zero rates (nobody served, but
/// nobody favored) all return `1.0`.
#[must_use]
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * sum_sq)
}

/// One window of one flow's delivery series. Windows are `window`
/// cycles wide (see [`TelemetryReport::window`]); `window` index `w`
/// covers ejection cycles `[w·window, (w+1)·window)`. Windows in
/// which a flow delivered nothing are omitted from the series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPoint {
    /// Window index (ejection cycle divided by the window width).
    pub window: u64,
    /// Packets delivered in this window.
    pub packets: u64,
    /// Flits delivered in this window.
    pub flits: u64,
    /// Sum of total latencies of the packets delivered in this
    /// window, for a per-window latency mean without extra state.
    pub latency_sum: u64,
}

impl WindowPoint {
    /// Mean total latency of the packets delivered in this window
    /// (`0.0` for an empty window).
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }
}

/// Per-flow telemetry summary: whole-run aggregates plus the windowed
/// delivery series behind them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTelemetry {
    /// Packets delivered over the whole run.
    pub packets: u64,
    /// Flits delivered over the whole run.
    pub flits: u64,
    /// Total-latency accumulator over delivered packets.
    pub latency: RunningStats,
    /// Whole-run accepted throughput in flits/cycle.
    pub throughput: f64,
    /// Minimum windowed service rate in flits/cycle, taken over the
    /// span from the flow's first to its last delivery window.
    /// Windows inside the span with no deliveries count as zero, so a
    /// starved flow shows `0.0` even if its averages look healthy.
    pub min_service_rate: f64,
    /// The non-empty delivery windows, in ascending window order.
    pub series: Vec<WindowPoint>,
}

/// A finished telemetry run: every counter merged across shards,
/// occupancy summaries, per-flow series, and QoS roll-ups.
///
/// Derives `PartialEq` so shard-invariance tests can compare whole
/// documents; all floating-point fields are produced by merges in a
/// fixed order, so equality is exact, not approximate.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Schema version of the JSON export
    /// ([`TELEMETRY_SCHEMA_VERSION`]).
    pub version: u32,
    /// Cycles the driver stepped (the utilization denominator).
    pub cycles: u64,
    /// Width in cycles of the occupancy-sampling and flow-series
    /// windows.
    pub window: u64,
    /// Output ports per router, for decoding link indices
    /// (`link = node * ports + port`).
    pub ports: usize,
    /// Flits forwarded per link, indexed by global link index.
    pub link_flits: Vec<u64>,
    /// Cycles each link had traffic ready but could not forward.
    pub link_stalls: Vec<u64>,
    /// Scheduler bookings per link (LOFT's LSF).
    pub sched_book: Vec<u64>,
    /// Scheduler denials per link (lookahead queued but not booked).
    pub sched_deny: Vec<u64>,
    /// Idle-link status resets per link (LOFT).
    pub link_resets: Vec<u64>,
    /// Cycles each node's source NIC was blocked from injecting.
    pub nic_stalls: Vec<u64>,
    /// Occupancy summaries, `occupancy[kind.index()][index]`; entries
    /// with zero samples mean that buffer class/index was never
    /// sampled (e.g. LOFT kinds on a VC network).
    pub occupancy: Vec<Vec<RunningStats>>,
    /// Per-flow summaries, indexed by flow id.
    pub flows: Vec<FlowTelemetry>,
    /// Power-of-two histogram of total latency over every delivered
    /// packet in the run.
    pub latency_histogram: Histogram,
    /// Median total-latency upper bound from the histogram.
    pub p50: u64,
    /// 95th-percentile total-latency upper bound.
    pub p95: u64,
    /// 99th-percentile total-latency upper bound.
    pub p99: u64,
    /// Jain fairness index over per-flow whole-run throughput.
    pub jain: f64,
}

impl TelemetryReport {
    /// Fraction of cycles `link` spent moving flits (`0.0` when the
    /// run had no cycles or the link index was never seen).
    #[must_use]
    pub fn link_utilization(&self, link: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let flits = self.link_flits.get(link).copied().unwrap_or(0);
        flits as f64 / self.cycles as f64
    }

    /// Occupancy summary of buffer class `kind` at `index`
    /// (empty [`RunningStats`] if never sampled).
    #[must_use]
    pub fn occupancy(&self, kind: BufKind, index: usize) -> RunningStats {
        self.occupancy[kind.index()]
            .get(index)
            .copied()
            .unwrap_or_default()
    }

    /// Serializes the whole report as one versioned JSON document.
    ///
    /// Per-link and per-node arrays are emitted sparsely (only
    /// entries with at least one nonzero counter or sample), keyed by
    /// their index, so an 8×8 mesh at low load stays compact. The
    /// schema is documented in DESIGN.md and versioned by the
    /// top-level `telemetry_version` field.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"telemetry_version\":{},\"cycles\":{},\"window\":{},\"ports\":{}",
            self.version, self.cycles, self.window, self.ports
        ));

        // Links: one object per link that saw any activity.
        out.push_str(",\"links\":[");
        let mut first = true;
        let links = [
            self.link_flits.len(),
            self.link_stalls.len(),
            self.sched_book.len(),
            self.sched_deny.len(),
            self.link_resets.len(),
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        for link in 0..links {
            let at = |v: &Vec<u64>| v.get(link).copied().unwrap_or(0);
            let (flits, stalls) = (at(&self.link_flits), at(&self.link_stalls));
            let (book, deny) = (at(&self.sched_book), at(&self.sched_deny));
            let resets = at(&self.link_resets);
            if flits + stalls + book + deny + resets == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"link\":{link},\"node\":{},\"port\":{},\"flits\":{flits},\
                 \"stalls\":{stalls},\"sched_book\":{book},\"sched_deny\":{deny},\
                 \"resets\":{resets},\"utilization\":{}}}",
                link / self.ports.max(1),
                link % self.ports.max(1),
                json_f64(self.link_utilization(link)),
            ));
        }
        out.push(']');

        // NIC stalls, sparse by node.
        out.push_str(",\"nics\":[");
        let mut first = true;
        for (node, &stalls) in self.nic_stalls.iter().enumerate() {
            if stalls == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{{\"node\":{node},\"stalls\":{stalls}}}"));
        }
        out.push(']');

        // Occupancy summaries, sparse by (kind, index).
        out.push_str(",\"occupancy\":[");
        let mut first = true;
        let kinds = [
            BufKind::Vc,
            BufKind::NonSpec,
            BufKind::Spec,
            BufKind::Source,
        ];
        for kind in kinds {
            for (index, s) in self.occupancy[kind.index()].iter().enumerate() {
                if s.count() == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"kind\":\"{}\",\"index\":{index},\"samples\":{},\
                     \"mean\":{},\"max\":{}}}",
                    kind.name(),
                    s.count(),
                    json_f64(s.mean()),
                    json_f64(s.max()),
                ));
            }
        }
        out.push(']');

        // QoS roll-up.
        out.push_str(&format!(
            ",\"qos\":{{\"delivered_packets\":{},\"p50\":{},\"p95\":{},\
             \"p99\":{},\"jain\":{}}}",
            self.latency_histogram.count(),
            self.p50,
            self.p95,
            self.p99,
            json_f64(self.jain),
        ));

        // Per-flow summaries with their windowed series. Series
        // points are compact arrays: [window, packets, flits,
        // latency_sum].
        out.push_str(",\"flows\":[");
        let mut first = true;
        for (flow, f) in self.flows.iter().enumerate() {
            if f.packets == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"flow\":{flow},\"packets\":{},\"flits\":{},\
                 \"throughput\":{},\"mean_latency\":{},\"min_service_rate\":{},\
                 \"series\":[",
                f.packets,
                f.flits,
                json_f64(f.throughput),
                json_f64(f.latency.mean()),
                json_f64(f.min_service_rate),
            ));
            for (i, p) in f.series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "[{},{},{},{}]",
                    p.window, p.packets, p.flits, p.latency_sum
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Formats a float for JSON: plain decimal, never NaN/inf (callers
/// only feed finite values; a non-finite input falls back to `0`, the
/// least-surprising valid JSON).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_handles_degenerate_inputs() {
        // Zero flows and all-zero rates are vacuously fair.
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0, 0.0]), 1.0);
        // A single flow is trivially fair.
        assert_eq!(jain_index(&[0.25]), 1.0);
    }

    #[test]
    fn jain_matches_closed_forms() {
        // Equal rates: exactly 1.
        assert!((jain_index(&[0.5, 0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        // One of n flows taking everything: exactly 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // 2:1 split of two flows: (3)^2 / (2 * 5) = 0.9.
        assert!((jain_index(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn window_point_latency_mean() {
        let p = WindowPoint {
            window: 3,
            packets: 4,
            flits: 16,
            latency_sum: 100,
        };
        assert_eq!(p.avg_latency(), 25.0);
        let empty = WindowPoint {
            window: 0,
            packets: 0,
            flits: 0,
            latency_sum: 0,
        };
        assert_eq!(empty.avg_latency(), 0.0);
    }

    #[test]
    fn json_export_is_versioned_and_sparse() {
        let report = TelemetryReport {
            version: TELEMETRY_SCHEMA_VERSION,
            cycles: 100,
            window: 10,
            ports: 5,
            link_flits: vec![0, 50, 0],
            link_stalls: vec![0, 5],
            sched_book: Vec::new(),
            sched_deny: Vec::new(),
            link_resets: Vec::new(),
            nic_stalls: vec![0, 0, 3],
            occupancy: vec![Vec::new(); BufKind::COUNT],
            flows: vec![FlowTelemetry::default()],
            latency_histogram: Histogram::new(),
            p50: 0,
            p95: 0,
            p99: 0,
            jain: 1.0,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"telemetry_version\":1,"));
        // Sparse: only link 1 and node 2 appear.
        assert!(json.contains("\"link\":1"));
        assert!(!json.contains("\"link\":0"));
        assert!(json.contains("\"node\":2,\"stalls\":3"));
        // Zero-packet flows are elided.
        assert!(json.contains("\"flows\":[]"));
        // Utilization of link 1: 50 flits over 100 cycles.
        assert!(json.contains("\"utilization\":0.500000"));
    }
}
