//! The simulation driver: couples a traffic source to a network model
//! and gathers statistics.
//!
//! Each network architecture in this workspace (wormhole, GSF, LOFT)
//! implements [`Network`]; workload generators implement
//! [`TrafficSource`]. [`Simulation::run`] then executes the standard
//! methodology: warmup, a measurement window, and a bounded drain
//! phase, producing a [`SimReport`].

use crate::flit::Packet;
use crate::stats::{SimReport, StatsCollector};
use crate::telemetry::PacketProbe;

/// A cycle-driven network model.
///
/// Implementations own their source queues: [`Network::enqueue`]
/// places a freshly generated packet into the source NIC, and
/// [`Network::step`] advances the whole network one cycle, appending
/// any packets whose last flit reached its destination PE to
/// `delivered` (with `injected_at`/`ejected_at` filled in).
pub trait Network {
    /// Number of nodes in the network.
    fn num_nodes(&self) -> usize;

    /// Current cycle (number of completed [`Network::step`] calls).
    fn cycle(&self) -> u64;

    /// Queues a packet in the source queue of `packet.src`.
    ///
    /// Source queues are unbounded, matching the methodology of the
    /// paper (offered load beyond saturation accumulates at sources
    /// and shows up as source-queue latency).
    fn enqueue(&mut self, packet: Packet);

    /// Advances one cycle; delivered packets are appended to `out`.
    fn step(&mut self, out: &mut Vec<Packet>);

    /// Number of packets currently inside the network or its source
    /// queues (used to terminate the drain phase early).
    fn in_flight(&self) -> usize;

    /// Attempts to advance `cycles` cycles at once while the network
    /// is quiescent, returning how many cycles were actually jumped
    /// (`0` declines the jump and the driver falls back to
    /// [`Network::step`]).
    ///
    /// The contract is bit-identity: a successful jump must leave the
    /// network in exactly the state `cycles` idle `step` calls would
    /// have produced — including every time-dependent side effect
    /// (frame-window recycling, slot-pointer advancement, telemetry
    /// clock ticks and due occupancy samples). Implementations only
    /// accept when they can prove quiescence (nothing in flight, no
    /// wire/credit/worklist activity); the default declines always,
    /// so custom networks are unaffected until they opt in.
    fn fast_forward(&mut self, cycles: u64) -> u64 {
        let _ = cycles;
        0
    }
}

/// A workload: generates packets cycle by cycle.
pub trait TrafficSource {
    /// Number of flows this source generates for (flow ids are dense
    /// in `0..num_flows`).
    fn num_flows(&self) -> usize;

    /// Appends the packets generated at `cycle` to `out`, with
    /// `created_at == cycle`.
    fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>);

    /// Returns the earliest cycle in `from..limit` at which this
    /// source will generate a packet, or `limit` if it stays silent
    /// for the whole span — consuming exactly the per-cycle RNG draws
    /// [`TrafficSource::generate`] would have consumed for the cycles
    /// it rules out, so a subsequent `generate` at the returned cycle
    /// (and beyond) produces the identical packet stream.
    ///
    /// The default returns `from` ("might fire right now"), which
    /// disables idle skipping without constraining implementations.
    fn next_active_cycle(&mut self, from: u64, limit: u64) -> u64 {
        let _ = limit;
        from
    }
}

/// Phases of a simulation run, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Cycles before measurement starts (network reaches steady state).
    pub warmup: u64,
    /// Length of the measurement window.
    pub measure: u64,
    /// Maximum extra cycles after the window during which traffic
    /// keeps being generated and in-flight packets may still complete
    /// (bounds latency samples for packets created late in the
    /// window).
    pub drain: u64,
}

impl RunConfig {
    /// A short configuration suitable for unit tests.
    pub fn short() -> Self {
        RunConfig {
            warmup: 1_000,
            measure: 5_000,
            drain: 5_000,
        }
    }

    /// The paper-scale configuration used by the experiment harness.
    pub fn paper() -> Self {
        RunConfig {
            warmup: 20_000,
            measure: 100_000,
            drain: 50_000,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::short()
    }
}

/// Bookkeeping about how a run executed (as opposed to what it
/// measured — that is the [`SimReport`]). Deliberately *not* part of
/// the report: a fast-forwarded run and a stepped run produce equal
/// reports, and this is where the difference between them is allowed
/// to show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunInfo {
    /// Idle cycles jumped by quiescence fast-forward instead of being
    /// stepped (0 when disabled or never quiescent).
    pub skipped_cycles: u64,
    /// The cycle at which the run terminated: the full
    /// warmup+measure+drain span, or earlier when the drain phase
    /// found the network empty.
    pub end_cycle: u64,
}

/// Drives one network with one traffic source.
///
/// # Example
///
/// See the `noc-wormhole`, `noc-gsf`, and `loft` crates for concrete
/// networks; each of their crate-level docs contains a full
/// `Simulation` example.
#[derive(Debug)]
pub struct Simulation<N, T> {
    network: N,
    traffic: T,
    config: RunConfig,
    fast_forward: bool,
}

impl<N: Network, T: TrafficSource> Simulation<N, T> {
    /// Creates a simulation. Quiescence fast-forward is enabled by
    /// default — it is bit-identical to plain stepping, so there is
    /// no observable difference beyond wall-clock time; disable it
    /// with [`Simulation::with_fast_forward`] to measure that claim.
    pub fn new(network: N, traffic: T, config: RunConfig) -> Self {
        Simulation {
            network,
            traffic,
            config,
            fast_forward: true,
        }
    }

    /// Enables or disables quiescence fast-forward (see
    /// [`Simulation::run_full`]).
    #[must_use]
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Runs warmup + measurement + drain and returns the report.
    ///
    /// During warmup and measurement the traffic source is consulted
    /// every cycle; during drain it continues to run (keeping the
    /// network in steady state) but newly created packets no longer
    /// fall inside the measurement window. The drain phase ends early
    /// once the network is empty.
    pub fn run(self) -> SimReport {
        self.run_hooked(|| {})
    }

    /// Like [`Simulation::run`], additionally invoking `after_warmup`
    /// once at the warmup/measurement boundary, before the first
    /// measured cycle. The allocation-counting perf harness uses this
    /// to zero its counters after the network's buffers and slabs
    /// have grown to steady state, so only steady-state allocations
    /// are attributed to the measurement window.
    pub fn run_hooked(self, after_warmup: impl FnMut()) -> SimReport {
        self.run_into_parts(after_warmup).0
    }

    /// Like [`Simulation::run_hooked`], additionally handing the
    /// network back alongside the report. Telemetry callers use this
    /// to extract a probe threaded through the network (via its
    /// `into_probe`) after the run completes.
    ///
    /// The driver feeds packet events to the statistics collector
    /// through the [`PacketProbe`] interface — the same event stream
    /// a network-level telemetry probe sees — so every consumer of
    /// run results observes identical packet lifecycles.
    pub fn run_into_parts(self, after_warmup: impl FnMut()) -> (SimReport, N) {
        let (report, network, _) = self.run_full(after_warmup);
        (report, network)
    }

    /// Like [`Simulation::run_into_parts`], additionally returning a
    /// [`RunInfo`] with the run's execution bookkeeping (cycles
    /// skipped by fast-forward, drain-termination cycle).
    ///
    /// # Quiescence fast-forward
    ///
    /// Whenever the network reports nothing in flight, the driver
    /// asks the traffic source for its next active cycle (a scan that
    /// consumes exactly the per-cycle RNG draws plain generation
    /// would) and offers the network the whole idle span via
    /// [`Network::fast_forward`]. Jump targets are clamped to the
    /// warmup/measure/drain phase boundaries, so the warmup hook
    /// fires at the same cycle and the drain-termination check runs
    /// against the same states as a plain run. A network may decline
    /// (residual wire or credit activity); the driver then steps
    /// normally and retries next cycle. Results are bit-identical
    /// either way — only `RunInfo::skipped_cycles` and the wall clock
    /// differ.
    pub fn run_full(self, mut after_warmup: impl FnMut()) -> (SimReport, N, RunInfo) {
        let mut state = self.into_engine_state();
        state.drive(u64::MAX, &mut after_warmup);
        state.finish()
    }

    /// Runs the warmup phase and freezes the simulation at the
    /// warmup/measurement boundary as a
    /// [`Checkpoint`](crate::checkpoint::Checkpoint): the network,
    /// traffic source, and statistics state are all captured, so the
    /// checkpoint can be forked into any number of measurement runs
    /// that each resume from the identical warmed-up state — each
    /// bit-identical to a from-scratch run with the same settings.
    pub fn run_to_checkpoint(self) -> crate::checkpoint::Checkpoint<N, T> {
        crate::checkpoint::Checkpoint::capture(self)
    }

    /// Decomposes into the resumable engine state, positioned at
    /// cycle 0 with a fresh statistics collector.
    pub(crate) fn into_engine_state(self) -> EngineState<N, T> {
        let stats = StatsCollector::new(
            self.traffic.num_flows(),
            self.network.num_nodes(),
            self.config.warmup,
            self.config.measure,
        );
        EngineState {
            network: self.network,
            traffic: self.traffic,
            config: self.config,
            fast_forward: self.fast_forward,
            stats,
            cycle: 0,
            skipped_cycles: 0,
        }
    }

    /// Consumes the simulation, returning the network (for
    /// inspection in tests).
    pub fn into_network(self) -> N {
        self.network
    }
}

/// The mid-run state of a simulation: everything [`Simulation::run_full`]'s
/// loop owns, factored out so a run can stop at a phase boundary, be
/// cloned, and resumed later (the substrate of
/// [`crate::checkpoint::Checkpoint`]).
///
/// `Clone` (available when the network and traffic source are
/// `Clone`) snapshots the *entire* observable simulation — slab,
/// wires, RNG streams, statistics, clocks — so a clone resumed from
/// here is indistinguishable from the original continuing.
#[derive(Debug, Clone)]
pub(crate) struct EngineState<N, T> {
    pub(crate) network: N,
    pub(crate) traffic: T,
    pub(crate) config: RunConfig,
    pub(crate) fast_forward: bool,
    pub(crate) stats: StatsCollector,
    pub(crate) cycle: u64,
    pub(crate) skipped_cycles: u64,
}

impl<N: Network, T: TrafficSource> EngineState<N, T> {
    /// Advances the run up to (not past) cycle `stop`, or to the
    /// run's natural end — the drain bound, or the first drain cycle
    /// that starts with an empty network — whichever comes first.
    ///
    /// The loop body is exactly the pre-checkpoint `run_full` loop;
    /// `stop` only tightens the loop bound. Stopping at the warmup
    /// boundary exits *before* the `cycle == warmup` iteration runs,
    /// so `after_warmup` has not fired yet and a later `drive` call
    /// fires it at the same cycle a straight-through run would —
    /// splitting a run at any cycle is unobservable in the results.
    /// Fast-forward jump targets are clamped to phase boundaries,
    /// which `stop` always is for checkpoints, so a jump never
    /// overshoots `stop` either.
    pub(crate) fn drive(&mut self, stop: u64, after_warmup: &mut dyn FnMut()) {
        let mut fresh = Vec::new();
        let mut delivered = Vec::new();
        let warmup = self.config.warmup;
        let horizon = warmup + self.config.measure;
        let end = (horizon + self.config.drain).min(stop);
        while self.cycle < end {
            if self.cycle == warmup {
                after_warmup();
            }
            // Drain termination: decided on the state the previous
            // cycle's delivered batch left behind, before this cycle
            // generates anything — a drain-phase packet created this
            // cycle cannot resurrect an already-empty network.
            if self.cycle >= horizon && self.network.in_flight() == 0 {
                break;
            }
            if self.fast_forward && self.network.in_flight() == 0 {
                // An empty network in the drain phase broke out
                // above, so only the warmup and measure phases can
                // fast-forward — and never across their boundaries.
                debug_assert!(self.cycle < horizon);
                let bound = if self.cycle < warmup { warmup } else { horizon };
                let target = self.traffic.next_active_cycle(self.cycle, bound);
                debug_assert!(
                    (self.cycle..=bound).contains(&target),
                    "next_active_cycle out of range"
                );
                if target > self.cycle {
                    let jumped = self.network.fast_forward(target - self.cycle);
                    debug_assert!(jumped <= target - self.cycle, "network overshot the jump");
                    if jumped > 0 {
                        self.skipped_cycles += jumped;
                        self.cycle += jumped;
                        continue;
                    }
                }
            }
            fresh.clear();
            self.traffic.generate(self.cycle, &mut fresh);
            for p in fresh.drain(..) {
                debug_assert_eq!(p.created_at, self.cycle);
                self.stats.on_generated(&p);
                self.network.enqueue(p);
            }
            delivered.clear();
            self.network.step(&mut delivered);
            for p in delivered.drain(..) {
                self.stats.on_delivered(&p);
            }
            self.cycle += 1;
        }
    }

    /// Finalizes into the run's results.
    pub(crate) fn finish(self) -> (SimReport, N, RunInfo) {
        (
            self.stats.finish(),
            self.network,
            RunInfo {
                skipped_cycles: self.skipped_cycles,
                end_cycle: self.cycle,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, Packet, PacketId};

    /// A trivial network: fixed 10-cycle pipeline per packet.
    #[derive(Debug, Default)]
    struct DelayLine {
        cycle: u64,
        queue: Vec<Packet>,
    }

    impl Network for DelayLine {
        fn num_nodes(&self) -> usize {
            2
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn enqueue(&mut self, mut packet: Packet) {
            packet.injected_at = Some(self.cycle);
            self.queue.push(packet);
        }
        fn step(&mut self, out: &mut Vec<Packet>) {
            self.cycle += 1;
            let cycle = self.cycle;
            let mut i = 0;
            while i < self.queue.len() {
                if cycle >= self.queue[i].created_at + 10 {
                    let mut p = self.queue.swap_remove(i);
                    p.ejected_at = Some(cycle);
                    out.push(p);
                } else {
                    i += 1;
                }
            }
        }
        fn in_flight(&self) -> usize {
            self.queue.len()
        }
    }

    /// One packet every `period` cycles on flow 0.
    #[derive(Debug)]
    struct Periodic {
        period: u64,
        seq: u64,
    }

    impl TrafficSource for Periodic {
        fn num_flows(&self) -> usize {
            1
        }
        fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            if cycle.is_multiple_of(self.period) {
                out.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(0),
                        seq: self.seq,
                    },
                    NodeId::new(0),
                    NodeId::new(1),
                    4,
                    cycle,
                ));
                self.seq += 1;
            }
        }
    }

    #[test]
    fn delay_line_latency_is_ten() {
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic { period: 20, seq: 0 },
            RunConfig {
                warmup: 100,
                measure: 1_000,
                drain: 100,
            },
        );
        let report = sim.run();
        assert_eq!(report.avg_latency(), 10.0);
        assert_eq!(report.total_latency.count(), 50);
        // 50 packets * 4 flits / 1000 cycles / 2 nodes
        assert!((report.throughput_per_node() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn drain_bound_is_respected() {
        // A network that never delivers must still terminate at the
        // drain bound.
        #[derive(Debug, Default)]
        struct BlackHole {
            cycle: u64,
            swallowed: usize,
        }
        impl Network for BlackHole {
            fn num_nodes(&self) -> usize {
                1
            }
            fn cycle(&self) -> u64 {
                self.cycle
            }
            fn enqueue(&mut self, _p: Packet) {
                self.swallowed += 1;
            }
            fn step(&mut self, _out: &mut Vec<Packet>) {
                self.cycle += 1;
            }
            fn in_flight(&self) -> usize {
                self.swallowed
            }
        }
        let report = Simulation::new(
            BlackHole::default(),
            Periodic { period: 10, seq: 0 },
            RunConfig {
                warmup: 0,
                measure: 100,
                drain: 50,
            },
        )
        .run();
        assert_eq!(report.total_latency.count(), 0);
        assert_eq!(report.flits_delivered, 0);
    }

    #[test]
    fn hook_fires_once_at_measurement_start() {
        let mut fired = 0;
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic { period: 20, seq: 0 },
            RunConfig {
                warmup: 100,
                measure: 1_000,
                drain: 100,
            },
        );
        let report = sim.run_hooked(|| fired += 1);
        assert_eq!(fired, 1, "hook must fire exactly once");
        // The hooked run produces the same report as a plain run.
        assert_eq!(report.avg_latency(), 10.0);
        assert_eq!(report.total_latency.count(), 50);
    }

    /// Drain termination is part of the pinned observable behaviour:
    /// the run must end at the first drain cycle that starts with an
    /// empty network (a packet generated *during* drain keeps the
    /// drain alive, but cannot resurrect a network already observed
    /// empty). These counts gate the loop restructure that added
    /// fast-forward.
    #[test]
    fn drain_termination_cycles_are_pinned() {
        // Packet at cycle 0 delivers at cycle 10; the drain check at
        // cycle 10 sees an empty network and stops, long before the
        // drain bound and before the period-20 source fires again.
        let (report, _, info) = Simulation::new(
            DelayLine::default(),
            Periodic { period: 20, seq: 0 },
            RunConfig {
                warmup: 0,
                measure: 10,
                drain: 1_000_000,
            },
        )
        .run_full(|| {});
        assert_eq!(info.end_cycle, 10);
        assert_eq!(report.total_latency.count(), 1);

        // Packets at 0, 7, 14: the one created at 7 is still in
        // flight when the drain bound (cycle 15) lands, so the run
        // uses the whole drain allowance.
        let (_, _, info) = Simulation::new(
            DelayLine::default(),
            Periodic { period: 7, seq: 0 },
            RunConfig {
                warmup: 0,
                measure: 10,
                drain: 5,
            },
        )
        .run_full(|| {});
        assert_eq!(info.end_cycle, 15);
    }

    /// A delay line that accepts quiescence jumps, plus a periodic
    /// source with a closed-form next-active scan: the fast-forwarded
    /// run must reproduce the stepped run's report exactly while
    /// actually skipping cycles.
    #[test]
    fn fast_forward_matches_stepped_run() {
        #[derive(Debug, Default)]
        struct FfDelayLine(DelayLine);
        impl Network for FfDelayLine {
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn cycle(&self) -> u64 {
                self.0.cycle()
            }
            fn enqueue(&mut self, packet: Packet) {
                self.0.enqueue(packet);
            }
            fn step(&mut self, out: &mut Vec<Packet>) {
                self.0.step(out);
            }
            fn in_flight(&self) -> usize {
                self.0.in_flight()
            }
            fn fast_forward(&mut self, cycles: u64) -> u64 {
                assert!(self.0.queue.is_empty(), "jumped a busy network");
                self.0.cycle += cycles;
                cycles
            }
        }

        #[derive(Debug)]
        struct ScanPeriodic(Periodic);
        impl TrafficSource for ScanPeriodic {
            fn num_flows(&self) -> usize {
                self.0.num_flows()
            }
            fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>) {
                self.0.generate(cycle, out);
            }
            fn next_active_cycle(&mut self, from: u64, limit: u64) -> u64 {
                let next = from.div_ceil(self.0.period) * self.0.period;
                next.min(limit)
            }
        }

        let run = RunConfig {
            warmup: 100,
            measure: 1_000,
            drain: 100,
        };
        let make = |ff| {
            Simulation::new(
                FfDelayLine::default(),
                ScanPeriodic(Periodic { period: 20, seq: 0 }),
                run,
            )
            .with_fast_forward(ff)
        };
        let (stepped, _, stepped_info) = make(false).run_full(|| {});
        let (jumped, _, jumped_info) = make(true).run_full(|| {});
        assert_eq!(stepped, jumped, "fast-forward changed the report");
        assert_eq!(stepped_info.skipped_cycles, 0);
        assert!(
            jumped_info.skipped_cycles > 400,
            "only skipped {} cycles",
            jumped_info.skipped_cycles
        );
        assert_eq!(stepped_info.end_cycle, jumped_info.end_cycle);
        assert_eq!(jumped.avg_latency(), 10.0);
    }

    #[test]
    fn drain_stops_when_empty() {
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic {
                period: 1_000_000,
                seq: 0,
            },
            RunConfig {
                warmup: 0,
                measure: 10,
                drain: 1_000_000,
            },
        );
        // Must terminate promptly despite the huge drain bound.
        let report = sim.run();
        assert_eq!(report.total_latency.count(), 1);
    }
}
