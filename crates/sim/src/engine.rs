//! The simulation driver: couples a traffic source to a network model
//! and gathers statistics.
//!
//! Each network architecture in this workspace (wormhole, GSF, LOFT)
//! implements [`Network`]; workload generators implement
//! [`TrafficSource`]. [`Simulation::run`] then executes the standard
//! methodology: warmup, a measurement window, and a bounded drain
//! phase, producing a [`SimReport`].

use crate::flit::Packet;
use crate::stats::{SimReport, StatsCollector};
use crate::telemetry::PacketProbe;

/// A cycle-driven network model.
///
/// Implementations own their source queues: [`Network::enqueue`]
/// places a freshly generated packet into the source NIC, and
/// [`Network::step`] advances the whole network one cycle, appending
/// any packets whose last flit reached its destination PE to
/// `delivered` (with `injected_at`/`ejected_at` filled in).
pub trait Network {
    /// Number of nodes in the network.
    fn num_nodes(&self) -> usize;

    /// Current cycle (number of completed [`Network::step`] calls).
    fn cycle(&self) -> u64;

    /// Queues a packet in the source queue of `packet.src`.
    ///
    /// Source queues are unbounded, matching the methodology of the
    /// paper (offered load beyond saturation accumulates at sources
    /// and shows up as source-queue latency).
    fn enqueue(&mut self, packet: Packet);

    /// Advances one cycle; delivered packets are appended to `out`.
    fn step(&mut self, out: &mut Vec<Packet>);

    /// Number of packets currently inside the network or its source
    /// queues (used to terminate the drain phase early).
    fn in_flight(&self) -> usize;
}

/// A workload: generates packets cycle by cycle.
pub trait TrafficSource {
    /// Number of flows this source generates for (flow ids are dense
    /// in `0..num_flows`).
    fn num_flows(&self) -> usize;

    /// Appends the packets generated at `cycle` to `out`, with
    /// `created_at == cycle`.
    fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>);
}

/// Phases of a simulation run, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Cycles before measurement starts (network reaches steady state).
    pub warmup: u64,
    /// Length of the measurement window.
    pub measure: u64,
    /// Maximum extra cycles after the window during which traffic
    /// keeps being generated and in-flight packets may still complete
    /// (bounds latency samples for packets created late in the
    /// window).
    pub drain: u64,
}

impl RunConfig {
    /// A short configuration suitable for unit tests.
    pub fn short() -> Self {
        RunConfig {
            warmup: 1_000,
            measure: 5_000,
            drain: 5_000,
        }
    }

    /// The paper-scale configuration used by the experiment harness.
    pub fn paper() -> Self {
        RunConfig {
            warmup: 20_000,
            measure: 100_000,
            drain: 50_000,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::short()
    }
}

/// Drives one network with one traffic source.
///
/// # Example
///
/// See the `noc-wormhole`, `noc-gsf`, and `loft` crates for concrete
/// networks; each of their crate-level docs contains a full
/// `Simulation` example.
#[derive(Debug)]
pub struct Simulation<N, T> {
    network: N,
    traffic: T,
    config: RunConfig,
}

impl<N: Network, T: TrafficSource> Simulation<N, T> {
    /// Creates a simulation.
    pub fn new(network: N, traffic: T, config: RunConfig) -> Self {
        Simulation {
            network,
            traffic,
            config,
        }
    }

    /// Runs warmup + measurement + drain and returns the report.
    ///
    /// During warmup and measurement the traffic source is consulted
    /// every cycle; during drain it continues to run (keeping the
    /// network in steady state) but newly created packets no longer
    /// fall inside the measurement window. The drain phase ends early
    /// once the network is empty.
    pub fn run(self) -> SimReport {
        self.run_hooked(|| {})
    }

    /// Like [`Simulation::run`], additionally invoking `after_warmup`
    /// once at the warmup/measurement boundary, before the first
    /// measured cycle. The allocation-counting perf harness uses this
    /// to zero its counters after the network's buffers and slabs
    /// have grown to steady state, so only steady-state allocations
    /// are attributed to the measurement window.
    pub fn run_hooked(self, after_warmup: impl FnMut()) -> SimReport {
        self.run_into_parts(after_warmup).0
    }

    /// Like [`Simulation::run_hooked`], additionally handing the
    /// network back alongside the report. Telemetry callers use this
    /// to extract a probe threaded through the network (via its
    /// `into_probe`) after the run completes.
    ///
    /// The driver feeds packet events to the statistics collector
    /// through the [`PacketProbe`] interface — the same event stream
    /// a network-level telemetry probe sees — so every consumer of
    /// run results observes identical packet lifecycles.
    pub fn run_into_parts(mut self, mut after_warmup: impl FnMut()) -> (SimReport, N) {
        let mut stats = StatsCollector::new(
            self.traffic.num_flows(),
            self.network.num_nodes(),
            self.config.warmup,
            self.config.measure,
        );
        let mut fresh = Vec::new();
        let mut delivered = Vec::new();
        let horizon = self.config.warmup + self.config.measure;
        for cycle in 0..horizon + self.config.drain {
            if cycle == self.config.warmup {
                after_warmup();
            }
            if cycle >= horizon && self.network.in_flight() == 0 {
                break;
            }
            fresh.clear();
            self.traffic.generate(cycle, &mut fresh);
            for p in fresh.drain(..) {
                debug_assert_eq!(p.created_at, cycle);
                stats.on_generated(&p);
                self.network.enqueue(p);
            }
            delivered.clear();
            self.network.step(&mut delivered);
            for p in delivered.drain(..) {
                stats.on_delivered(&p);
            }
        }
        (stats.finish(), self.network)
    }

    /// Consumes the simulation, returning the network (for
    /// inspection in tests).
    pub fn into_network(self) -> N {
        self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, Packet, PacketId};

    /// A trivial network: fixed 10-cycle pipeline per packet.
    #[derive(Debug, Default)]
    struct DelayLine {
        cycle: u64,
        queue: Vec<Packet>,
    }

    impl Network for DelayLine {
        fn num_nodes(&self) -> usize {
            2
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn enqueue(&mut self, mut packet: Packet) {
            packet.injected_at = Some(self.cycle);
            self.queue.push(packet);
        }
        fn step(&mut self, out: &mut Vec<Packet>) {
            self.cycle += 1;
            let cycle = self.cycle;
            let mut i = 0;
            while i < self.queue.len() {
                if cycle >= self.queue[i].created_at + 10 {
                    let mut p = self.queue.swap_remove(i);
                    p.ejected_at = Some(cycle);
                    out.push(p);
                } else {
                    i += 1;
                }
            }
        }
        fn in_flight(&self) -> usize {
            self.queue.len()
        }
    }

    /// One packet every `period` cycles on flow 0.
    #[derive(Debug)]
    struct Periodic {
        period: u64,
        seq: u64,
    }

    impl TrafficSource for Periodic {
        fn num_flows(&self) -> usize {
            1
        }
        fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            if cycle.is_multiple_of(self.period) {
                out.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(0),
                        seq: self.seq,
                    },
                    NodeId::new(0),
                    NodeId::new(1),
                    4,
                    cycle,
                ));
                self.seq += 1;
            }
        }
    }

    #[test]
    fn delay_line_latency_is_ten() {
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic { period: 20, seq: 0 },
            RunConfig {
                warmup: 100,
                measure: 1_000,
                drain: 100,
            },
        );
        let report = sim.run();
        assert_eq!(report.avg_latency(), 10.0);
        assert_eq!(report.total_latency.count(), 50);
        // 50 packets * 4 flits / 1000 cycles / 2 nodes
        assert!((report.throughput_per_node() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn drain_bound_is_respected() {
        // A network that never delivers must still terminate at the
        // drain bound.
        #[derive(Debug, Default)]
        struct BlackHole {
            cycle: u64,
            swallowed: usize,
        }
        impl Network for BlackHole {
            fn num_nodes(&self) -> usize {
                1
            }
            fn cycle(&self) -> u64 {
                self.cycle
            }
            fn enqueue(&mut self, _p: Packet) {
                self.swallowed += 1;
            }
            fn step(&mut self, _out: &mut Vec<Packet>) {
                self.cycle += 1;
            }
            fn in_flight(&self) -> usize {
                self.swallowed
            }
        }
        let report = Simulation::new(
            BlackHole::default(),
            Periodic { period: 10, seq: 0 },
            RunConfig {
                warmup: 0,
                measure: 100,
                drain: 50,
            },
        )
        .run();
        assert_eq!(report.total_latency.count(), 0);
        assert_eq!(report.flits_delivered, 0);
    }

    #[test]
    fn hook_fires_once_at_measurement_start() {
        let mut fired = 0;
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic { period: 20, seq: 0 },
            RunConfig {
                warmup: 100,
                measure: 1_000,
                drain: 100,
            },
        );
        let report = sim.run_hooked(|| fired += 1);
        assert_eq!(fired, 1, "hook must fire exactly once");
        // The hooked run produces the same report as a plain run.
        assert_eq!(report.avg_latency(), 10.0);
        assert_eq!(report.total_latency.count(), 50);
    }

    #[test]
    fn drain_stops_when_empty() {
        let sim = Simulation::new(
            DelayLine::default(),
            Periodic {
                period: 1_000_000,
                seq: 0,
            },
            RunConfig {
                warmup: 0,
                measure: 10,
                drain: 1_000_000,
            },
        );
        // Must terminate promptly despite the huge drain bound.
        let report = sim.run();
        assert_eq!(report.total_latency.count(), 1);
    }
}
