//! In-flight item queues: per-link delayed wires and the global
//! timed event FIFO.

use std::collections::VecDeque;

use crate::worklist::ActiveSet;

/// Per-link FIFO queues of in-flight items, each stamped with the
/// cycle (or slot) at which it becomes available downstream.
///
/// `DelayedWires` owns the worklist tracking which links have items
/// in flight: [`DelayedWires::push`] registers the link and
/// [`DelayedWires::drain_due`] deregisters it once empty, so callers
/// never touch the bitset directly. Drains visit links in ascending
/// index order with live worklist semantics — bit-identical to a full
/// `0..n` scan (see [`crate::worklist`]).
#[derive(Debug)]
pub struct DelayedWires<T> {
    wires: Vec<VecDeque<(u64, T)>>,
    work: ActiveSet,
}

impl<T: Clone> Clone for DelayedWires<T> {
    /// Capacity-preserving (see [`crate::checkpoint::clone_deque`]):
    /// wires are pre-sized to their link-delay bound, and forked runs
    /// must not re-pay that growth in their steady state.
    fn clone(&self) -> Self {
        DelayedWires {
            wires: self
                .wires
                .iter()
                .map(crate::checkpoint::clone_deque)
                .collect(),
            work: self.work.clone(),
        }
    }
}

impl<T> DelayedWires<T> {
    /// Empty wires for `num_links` links.
    #[must_use]
    pub fn new(num_links: usize) -> Self {
        DelayedWires::with_capacity(num_links, 0)
    }

    /// Empty wires for `num_links` links, each pre-sized for
    /// `per_link` in-flight items (one flit per cycle for a link
    /// delay of `per_link - 1` cycles) so warmup never reallocates.
    #[must_use]
    pub fn with_capacity(num_links: usize, per_link: usize) -> Self {
        DelayedWires {
            wires: (0..num_links)
                .map(|_| VecDeque::with_capacity(per_link))
                .collect(),
            work: ActiveSet::new(num_links),
        }
    }

    /// Puts `item` in flight on link `idx`, available at `due`.
    ///
    /// Items on one link must be pushed in non-decreasing `due` order
    /// (automatic when every push uses `now + constant_delay`), so the
    /// FIFO front is always the earliest.
    #[inline]
    pub fn push(&mut self, idx: usize, due: u64, item: T) {
        self.wires[idx].push_back((due, item));
        self.work.insert(idx);
    }

    /// Delivers every item due at or before `now`: ascending link
    /// order, FIFO order within a link, calling `sink(idx, item)` for
    /// each. Links left empty are removed from the worklist.
    ///
    /// The sink must not push back onto these wires mid-drain (no
    /// fabric stage does — arrivals land in buffers, not wires).
    pub fn drain_due(&mut self, now: u64, mut sink: impl FnMut(usize, T)) {
        let mut cursor = 0;
        while let Some(idx) = self.work.first_from(cursor) {
            cursor = idx + 1;
            let wire = &mut self.wires[idx];
            while wire.front().is_some_and(|e| e.0 <= now) {
                let (_, item) = wire.pop_front().expect("checked front");
                sink(idx, item);
            }
            if wire.is_empty() {
                self.work.remove(idx);
            }
        }
    }

    /// Whether link `idx` has items in flight.
    #[must_use]
    pub fn is_active(&self, idx: usize) -> bool {
        !self.wires[idx].is_empty()
    }

    /// Whether any link has items in flight (a cheap bitset check;
    /// lets callers skip a whole drain pass — or a pool dispatch —
    /// when the wires are globally empty).
    #[must_use]
    pub fn any_active(&self) -> bool {
        !self.work.is_empty()
    }

    /// Full-scan cross-check (debug builds): the worklist contains
    /// exactly the links with items in flight. Call under
    /// `#[cfg(debug_assertions)]`.
    pub fn debug_verify(&self) {
        for (i, wire) in self.wires.iter().enumerate() {
            debug_assert_eq!(
                self.work.contains(i),
                !wire.is_empty(),
                "wire worklist out of sync at link {i}"
            );
        }
    }
}

/// A single global time-ordered event queue (credit returns and the
/// like): events enter with a due cycle and leave once due.
///
/// Every producer must use the same constant delay, which makes push
/// order equal due order — the queue is then a plain FIFO with a
/// due-gate at the front.
#[derive(Debug, Clone)]
pub struct TimedFifo<T> {
    q: VecDeque<(u64, T)>,
}

impl<T> TimedFifo<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        TimedFifo { q: VecDeque::new() }
    }

    /// An empty queue pre-sized for `cap` in-flight events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        TimedFifo {
            q: VecDeque::with_capacity(cap),
        }
    }

    /// Enqueues `item`, due at `due` (must be non-decreasing across
    /// pushes; guaranteed by a constant producer delay).
    #[inline]
    pub fn push(&mut self, due: u64, item: T) {
        debug_assert!(
            self.q.back().is_none_or(|e| e.0 <= due),
            "timed events must be pushed in due order"
        );
        self.q.push_back((due, item));
    }

    /// Pops the front event if it is due at or before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        if self.q.front().is_some_and(|e| e.0 <= now) {
            self.q.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Whether no events are in flight (quiescence check for the
    /// fast-forward path).
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

impl<T> Default for TimedFifo<T> {
    fn default() -> Self {
        TimedFifo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_deliver_in_link_then_fifo_order() {
        let mut w: DelayedWires<u32> = DelayedWires::new(4);
        w.push(2, 10, 20);
        w.push(0, 10, 1);
        w.push(0, 11, 2);
        w.push(2, 12, 21);
        let mut seen = Vec::new();
        w.drain_due(11, |idx, v| seen.push((idx, v)));
        assert_eq!(seen, vec![(0, 1), (0, 2), (2, 20)]);
        assert!(!w.is_active(0));
        assert!(w.is_active(2));
        seen.clear();
        w.drain_due(12, |idx, v| seen.push((idx, v)));
        assert_eq!(seen, vec![(2, 21)]);
        w.debug_verify();
    }

    #[test]
    fn wires_hold_items_until_due() {
        let mut w: DelayedWires<&str> = DelayedWires::new(1);
        w.push(0, 5, "x");
        let mut count = 0;
        w.drain_due(4, |_, _| count += 1);
        assert_eq!(count, 0);
        assert!(w.is_active(0));
        w.drain_due(5, |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn timed_fifo_gates_on_due_cycle() {
        let mut f = TimedFifo::new();
        f.push(3, 'a');
        f.push(5, 'b');
        assert_eq!(f.pop_due(2), None);
        assert_eq!(f.pop_due(3), Some('a'));
        assert_eq!(f.pop_due(3), None);
        assert_eq!(f.pop_due(7), Some('b'));
        assert_eq!(f.pop_due(7), None);
    }
}
