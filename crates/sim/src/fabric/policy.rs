//! The policy interface of the shared VC datapath.

use crate::flit::PacketId;
use crate::slab::PacketRef;

use super::eject::EjectTracker;
use super::vc::{VcFlit, VcRouter};

/// A switch-allocation grant: which input VC forwards through an
/// output port this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchGrant {
    /// Winning input port.
    pub in_port: usize,
    /// Winning input VC.
    pub in_vc: usize,
    /// The downstream VC the flit travels on.
    pub out_vc: usize,
    /// The winner's arbitration slot (`in_port * num_vcs + in_vc`) —
    /// the flat index of the winning buffer in
    /// [`VcRouter::inputs`]; the fabric advances the port's
    /// round-robin pointer past it.
    pub slot: usize,
}

/// Fabric state a *serial* policy hook may touch
/// ([`RouterPolicy::pre_inject`], [`RouterPolicy::on_enqueue`]).
///
/// `S` is the policy's [`RouterPolicy::Source`] type; the fabric owns
/// one source per node and hands the whole slice to the hook.
#[derive(Debug)]
pub struct PolicyCtx<'a, S> {
    /// Read access to every in-flight packet (lengths, destinations).
    pub packets: &'a EjectTracker,
    /// Per-node source queues, indexed by node.
    pub sources: &'a mut [S],
    /// Nodes whose source NIC gained streamable work during this hook:
    /// push the node index here and the fabric marks the right shard's
    /// NIC worklist. (A relay rather than the worklist itself, because
    /// under sharded stepping each shard owns its own worklist.)
    pub woken: &'a mut Vec<usize>,
}

/// A scheduling/flow-control policy over the shared VC datapath
/// ([`super::VcFabric`]).
///
/// The fabric owns the invariant machinery — wires, credits, buffers,
/// NIC streaming, ejection, worklists. A policy supplies what
/// distinguishes one network from another:
///
/// * **source queueing** — what order packets leave a node's source
///   queue, and any admission stamping (e.g. GSF frame tags),
/// * **VC allocation** — which head flits get a downstream VC,
/// * **switch allocation** — which input VC each output port serves,
/// * **reuse semantics** — whether a downstream VC frees on the tail
///   flit or only after draining ([`RouterPolicy::DRAIN_BEFORE_REUSE`]),
/// * **per-cycle bookkeeping** — e.g. GSF's barrier frame recycling
///   in [`RouterPolicy::pre_inject`].
///
/// Packets are referenced by [`PacketRef`] slab handles everywhere on
/// the datapath; resolve one through [`PolicyCtx::packets`] when flow
/// or length information is needed.
///
/// # Serial vs. per-shard hooks
///
/// The fabric steps shards of nodes concurrently (see [`crate::par`]),
/// so the hooks split into two groups:
///
/// * **Serial hooks** take `&mut self` and run on the coordinator
///   between cycles or at the cycle barrier: [`RouterPolicy::pre_inject`],
///   [`RouterPolicy::on_enqueue`], [`RouterPolicy::on_eject_flit`],
///   [`RouterPolicy::on_eject_packet`]. Globally shared policy state
///   (GSF's framing window, untagged backlog, tag counter) lives in
///   `self` and is only touched here.
/// * **Per-shard hooks** are associated functions with *no* `self`:
///   they may only touch the per-node [`RouterPolicy::Source`], the
///   per-shard [`RouterPolicy::Scratch`], and the router they are
///   handed — state a shard owns exclusively. This is what makes
///   parallel stepping race-free by construction.
///
/// Flit-reservation policies that need a look-ahead channel build on
/// [`super::LookaheadQueues`] instead of this trait — see the module
/// docs for where each network sits.
pub trait RouterPolicy {
    /// Per-flit policy payload carried through the network (`()` for
    /// plain wormhole, the frame number for GSF).
    type Tag: Copy + std::fmt::Debug + Send;

    /// Per-node source-queue state: what waits to stream at a node,
    /// in the policy's order (a FIFO for wormhole, a frame-ordered
    /// heap for GSF). Owned by the node's shard during stepping.
    /// `Clone` so a fabric can be snapshotted for checkpoint/fork
    /// (see `noc_sim::checkpoint`).
    type Source: std::fmt::Debug + Send + Clone;

    /// Per-shard scratch reused across cycles by
    /// [`RouterPolicy::vc_allocate`] (e.g. GSF's request/free-VC
    /// vectors). `()` when the allocator needs none. `Clone` for the
    /// same snapshot reason as [`RouterPolicy::Source`].
    type Scratch: Default + std::fmt::Debug + Send + Clone;

    /// Reuse semantics for downstream VCs. `false`: the tail flit
    /// frees the VC immediately (wormhole). `true`: the VC stays
    /// owned until its credits fully return (GSF's strict VC
    /// separation), and NIC-side VCs drain the same way.
    const DRAIN_BEFORE_REUSE: bool;

    /// An empty source queue for one node.
    fn new_source(&self) -> Self::Source;

    /// Runs once per cycle, serially, before the shards step (GSF
    /// recycles frames here). Default: nothing.
    ///
    /// This hook must not depend on the *current* cycle's link
    /// arrivals or credit returns — under sharded stepping those are
    /// processed after it (they only touch router/NIC state, which
    /// this hook cannot reach anyway).
    fn pre_inject(&mut self, now: u64, ctx: &mut PolicyCtx<'_, Self::Source>) {
        let _ = (now, ctx);
    }

    /// A packet entered the network at `node`: queue it at the source
    /// (and push `node` into `ctx.woken` if it is ready to stream).
    /// Serial.
    fn on_enqueue(&mut self, node: usize, pref: PacketRef, ctx: &mut PolicyCtx<'_, Self::Source>);

    /// The packet that would stream next from this source queue, if
    /// any. The fabric only commits (via [`RouterPolicy::pop_source`])
    /// once a free VC is found. Per-shard.
    fn peek_source(source: &Self::Source) -> Option<PacketRef>;

    /// Removes and returns the packet just peeked, with its tag.
    /// Per-shard.
    fn pop_source(source: &mut Self::Source) -> (PacketRef, Self::Tag);

    /// Whether this source queue holds nothing ready to stream (the
    /// NIC worklist predicate, together with the streaming state the
    /// fabric tracks itself). Per-shard.
    fn source_idle(source: &Self::Source) -> bool;

    /// Virtual-channel allocation for one router: assign free
    /// downstream VCs (`router.out_owner`) to head flits waiting for
    /// one (`buf.out_vc == None`). Per-shard.
    fn vc_allocate(scratch: &mut Self::Scratch, router: &mut VcRouter<Self::Tag>, num_vcs: usize);

    /// Switch allocation for one output port: pick the input VC that
    /// forwards this cycle. Candidates need a flit routed to
    /// `out_port`, an allocated `out_vc`, and (except for ejection)
    /// downstream credit — the policy chooses among them. The fabric
    /// only calls this when `router.routed[out_port] > 0`. Per-shard.
    fn pick_winner(
        router: &VcRouter<Self::Tag>,
        out_port: usize,
        num_vcs: usize,
    ) -> Option<SwitchGrant>;

    /// A flit was ejected at its destination. Serial (ejections are
    /// deferred to the cycle barrier and applied in ascending node
    /// order). Default: nothing.
    fn on_eject_flit(&mut self, flit: &VcFlit<Self::Tag>) {
        let _ = flit;
    }

    /// A packet fully ejected (its last flit just arrived). Default:
    /// nothing.
    fn on_eject_packet(&mut self, id: PacketId) {
        let _ = id;
    }

    /// The fabric is jumping `cycles` quiescent cycles starting at
    /// `now` (see `VcFabric::fast_forward`): advance any
    /// purely time-dependent policy state in closed form, exactly as
    /// `cycles` idle [`RouterPolicy::pre_inject`] calls would have.
    /// Serial. Default: nothing (stateless policies like wormhole
    /// have no clock of their own).
    fn fast_forward(&mut self, now: u64, cycles: u64) {
        let _ = (now, cycles);
    }
}
