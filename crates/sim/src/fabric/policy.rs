//! The policy interface of the shared VC datapath.

use crate::flit::PacketId;
use crate::slab::PacketRef;
use crate::worklist::ActiveSet;

use super::eject::EjectTracker;
use super::vc::{VcFlit, VcRouter};

/// A switch-allocation grant: which input VC forwards through an
/// output port this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchGrant {
    /// Winning input port.
    pub in_port: usize,
    /// Winning input VC.
    pub in_vc: usize,
    /// The downstream VC the flit travels on.
    pub out_vc: usize,
    /// The winner's arbitration slot (`in_port * num_vcs + in_vc`) —
    /// the flat index of the winning buffer in
    /// [`VcRouter::inputs`]; the fabric advances the port's
    /// round-robin pointer past it.
    pub slot: usize,
}

/// Fabric state a policy hook may touch.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Read access to every in-flight packet (lengths, destinations).
    pub packets: &'a EjectTracker,
    /// The NIC worklist: a policy that queues work for a node's
    /// source NIC must mark the node active here.
    pub nic_work: &'a mut ActiveSet,
}

/// A scheduling/flow-control policy over the shared VC datapath
/// ([`super::VcFabric`]).
///
/// The fabric owns the invariant machinery — wires, credits, buffers,
/// NIC streaming, ejection, worklists. A policy supplies what
/// distinguishes one network from another:
///
/// * **source queueing** — what order packets leave a node's source
///   queue, and any admission stamping (e.g. GSF frame tags),
/// * **VC allocation** — which head flits get a downstream VC,
/// * **switch allocation** — which input VC each output port serves,
/// * **reuse semantics** — whether a downstream VC frees on the tail
///   flit or only after draining ([`RouterPolicy::DRAIN_BEFORE_REUSE`]),
/// * **per-cycle bookkeeping** — e.g. GSF's barrier frame recycling
///   in [`RouterPolicy::pre_inject`].
///
/// Packets are referenced by [`PacketRef`] slab handles everywhere on
/// the datapath; resolve one through [`PolicyCtx::packets`] when flow
/// or length information is needed.
///
/// Flit-reservation policies that need a look-ahead channel build on
/// [`super::LookaheadQueues`] instead of this trait — see the module
/// docs for where each network sits.
pub trait RouterPolicy {
    /// Per-flit policy payload carried through the network (`()` for
    /// plain wormhole, the frame number for GSF).
    type Tag: Copy + std::fmt::Debug;

    /// Reuse semantics for downstream VCs. `false`: the tail flit
    /// frees the VC immediately (wormhole). `true`: the VC stays
    /// owned until its credits fully return (GSF's strict VC
    /// separation), and NIC-side VCs drain the same way.
    const DRAIN_BEFORE_REUSE: bool;

    /// Runs once per cycle between credit application and NIC
    /// injection (GSF recycles frames here). Default: nothing.
    fn pre_inject(&mut self, now: u64, ctx: &mut PolicyCtx<'_>) {
        let _ = (now, ctx);
    }

    /// A packet entered the network at `node`: queue it at the source
    /// (and mark `ctx.nic_work` if it is ready to stream).
    fn on_enqueue(&mut self, node: usize, pref: PacketRef, ctx: &mut PolicyCtx<'_>);

    /// The packet that would stream next from `node`'s source queue,
    /// if any. The fabric only commits (via
    /// [`RouterPolicy::pop_source`]) once a free VC is found.
    fn peek_source(&self, node: usize) -> Option<PacketRef>;

    /// Removes and returns the packet just peeked, with its tag.
    fn pop_source(&mut self, node: usize) -> (PacketRef, Self::Tag);

    /// Whether `node`'s source queue holds nothing ready to stream
    /// (the NIC worklist predicate, together with the streaming
    /// state the fabric tracks itself).
    fn source_idle(&self, node: usize) -> bool;

    /// Virtual-channel allocation for one router: assign free
    /// downstream VCs (`router.out_owner`) to head flits waiting for
    /// one (`buf.out_vc == None`).
    fn vc_allocate(&mut self, router: &mut VcRouter<Self::Tag>, num_vcs: usize);

    /// Switch allocation for one output port: pick the input VC that
    /// forwards this cycle. Candidates need a flit routed to
    /// `out_port`, an allocated `out_vc`, and (except for ejection)
    /// downstream credit — the policy chooses among them. The fabric
    /// only calls this when `router.routed[out_port] > 0`.
    fn pick_winner(
        &self,
        router: &VcRouter<Self::Tag>,
        out_port: usize,
        num_vcs: usize,
    ) -> Option<SwitchGrant>;

    /// A flit was ejected at its destination. Default: nothing.
    fn on_eject_flit(&mut self, flit: &VcFlit<Self::Tag>) {
        let _ = flit;
    }

    /// A packet fully ejected (its last flit just arrived). Default:
    /// nothing.
    fn on_eject_packet(&mut self, id: PacketId) {
        let _ = id;
    }
}
