//! The shared router-fabric layer: one datapath, pluggable policies.
//!
//! Every network model in this workspace moves flits over the same
//! physical substrate — links with a traversal delay, credit/event
//! return paths, per-node source NICs, ejection ports, and the
//! active-set worklists that keep per-cycle cost proportional to
//! activity. Before this module existed, the wormhole, GSF, and LOFT
//! networks each hand-rolled that substrate; now it lives here, once,
//! and the networks differ only in *scheduling and flow-control
//! policy*:
//!
//! ```text
//!                    ┌────────────────────────────┐
//!                    │        network crates      │
//!                    │ wormhole │  GSF  │  LOFT   │
//!                    │  policy  │ policy│ policy  │
//!                    └────┬─────┴───┬───┴────┬────┘
//!        RouterPolicy ────┘         │        │ LSF schedulers +
//!        (VC datapath hooks)        │        │ reservation tables
//!                    ┌──────────────┴──┐  ┌──┴──────────────────┐
//!                    │  VcFabric<P>    │  │  look-ahead channel │
//!                    │  credit-based   │  │  (LookaheadQueues)  │
//!                    │  VC datapath    │  │  + quantum wires    │
//!                    └───────┬─────────┘  └──────────┬──────────┘
//!                            │      fabric substrate │
//!                    ┌───────┴───────────────────────┴──────────┐
//!                    │ LinkMap · DelayedWires · TimedFifo ·     │
//!                    │ EjectTracker · ActiveSet worklists       │
//!                    └──────────────────────────────────────────┘
//! ```
//!
//! * [`LinkMap`] wires a [`Topology`](crate::topology::Topology) and a
//!   routing function into the flat `node × port` link index space
//!   every per-link array uses, and resolves upstream/downstream
//!   neighbors for credit returns and link traversal.
//! * [`DelayedWires`] models in-flight traversal on every link: items
//!   pushed with a due time, drained in deterministic ascending link
//!   order once due, with worklist registration built in.
//! * [`TimedFifo`] is the global in-order event queue used for credit
//!   returns.
//! * [`EjectTracker`] owns every in-flight packet in a generational
//!   slab ([`crate::slab::PacketStore`]) — the datapaths move
//!   [`crate::slab::PacketRef`] handles, not packet structs — and
//!   enforces the fabric-level invariant that every packet is
//!   delivered exactly once.
//! * [`LookaheadQueues`] is the *optional look-ahead channel* used by
//!   flit-reservation (FRS) policies: per-output-port queues with
//!   per-flow fair bypass, tombstone extraction, and epoch-stamped
//!   failed-flow skipping.
//! * [`VcFabric`] is the complete credit-based virtual-channel
//!   datapath (link arrivals, credits, NIC streaming, route compute,
//!   and switch traversal), parameterized by a [`RouterPolicy`] that
//!   supplies VC allocation, switch-allocation winner selection,
//!   source queueing, and reuse semantics.
//!
//! # Determinism contract
//!
//! Everything here iterates in ascending link/node index order with
//! live worklist semantics (see [`crate::worklist`]), exactly like the
//! full scans it replaced. The golden determinism tests pin the
//! networks built on this fabric bit-for-bit against their
//! pre-refactor behaviour.

use crate::flit::Packet;
use crate::routing::Direction;

mod eject;
mod link;
mod lookahead;
mod policy;
mod vc;
mod wires;

pub use eject::EjectTracker;
pub use link::LinkMap;
pub use lookahead::LookaheadQueues;
pub use policy::{PolicyCtx, RouterPolicy, SwitchGrant};
pub use vc::{MaskIter, Streaming, VcBuf, VcFabric, VcFlit, VcNic, VcParams, VcRouter};
pub use wires::{DelayedWires, TimedFifo};

/// Ports per router: the four cardinal directions plus the local
/// (processing-element) port.
pub const PORTS: usize = Direction::COUNT;

/// Index of the local port in every per-port array.
pub const LOCAL: usize = Direction::Local as usize;

/// Debug-build check of the fabric-level stat invariant: every packet
/// delivered during one `step` call appears in `out` exactly once.
/// `start` is `out.len()` at the top of the step.
///
/// Double-appending a delivered packet would double-count it in every
/// downstream statistic; this assert turns that silent skew into a
/// hard failure (release builds compile it away).
#[cfg(debug_assertions)]
pub fn debug_assert_delivered_once(out: &[Packet], start: usize) {
    let mut seen = crate::fxhash::FxHashSet::default();
    for p in &out[start..] {
        assert!(
            seen.insert(p.id),
            "packet {} appended to the delivery list twice in one step",
            p.id
        );
    }
}

/// Release-build stub of [`debug_assert_delivered_once`].
#[cfg(not(debug_assertions))]
pub fn debug_assert_delivered_once(_out: &[Packet], _start: usize) {}
