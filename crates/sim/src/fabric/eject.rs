//! In-flight packet ownership and ejection accounting.

use crate::flit::Packet;
use crate::slab::{PacketRef, PacketStore};

/// Owns every packet currently inside a network (source queue to last
/// ejected piece), backed by a generational [`PacketStore`].
///
/// Networks move flits or quanta carrying [`PacketRef`] handles; this
/// tracker reassembles them into delivered packets. The per-packet
/// piece counter lives in the packet's slab slot — a packet ejects at
/// exactly one node (its destination, cross-checked by a debug
/// assertion), so no per-node progress map is needed. A packet is
/// handed back exactly once, by the [`EjectTracker::on_piece`] call
/// that delivers its final piece — the fabric-level delivered-once
/// invariant ([`super::debug_assert_delivered_once`] cross-checks it
/// per step).
#[derive(Debug, Clone, Default)]
pub struct EjectTracker {
    store: PacketStore,
}

impl EjectTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        EjectTracker::default()
    }

    /// Takes ownership of a packet entering the network; returns its
    /// handle for subsequent lookups.
    pub fn admit(&mut self, packet: Packet) -> PacketRef {
        self.store.insert(packet)
    }

    /// The in-flight packet behind this handle.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight.
    #[inline]
    #[must_use]
    pub fn packet(&self, r: PacketRef) -> &Packet {
        self.store.get(r)
    }

    /// Mutable access to an in-flight packet (timestamp stamping).
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight.
    #[inline]
    pub fn packet_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.store.get_mut(r)
    }

    /// Number of packets in flight. O(1) — a maintained counter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no packet is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Records one ejected piece of `r` at `node`. On the piece that
    /// completes the packet (`total` pieces seen), removes it from
    /// flight (recycling its slab slot), stamps `ejected_at`, and
    /// returns it — exactly once per packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight when it completes.
    pub fn on_piece(
        &mut self,
        node: usize,
        r: PacketRef,
        total: u16,
        ejected_at: u64,
    ) -> Option<Packet> {
        if self.store.bump_pieces(r) != total {
            return None;
        }
        let mut packet = self.store.remove(r);
        packet.ejected_at = Some(ejected_at);
        debug_assert_eq!(packet.dst.index(), node, "packet ejected at wrong node");
        Some(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, PacketId};

    fn packet(seq: u64, dst: u32) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq,
            },
            NodeId::new(0),
            NodeId::new(dst),
            4,
            0,
        )
    }

    #[test]
    fn completes_exactly_once_after_all_pieces() {
        let mut t = EjectTracker::new();
        let r = t.admit(packet(0, 3));
        assert_eq!(t.len(), 1);
        assert!(t.on_piece(3, r, 4, 10).is_none());
        assert!(t.on_piece(3, r, 4, 11).is_none());
        assert!(t.on_piece(3, r, 4, 12).is_none());
        let done = t.on_piece(3, r, 4, 13).expect("fourth piece completes");
        assert_eq!(done.ejected_at, Some(13));
        assert!(t.is_empty());
    }

    #[test]
    fn progress_is_per_packet() {
        let mut t = EjectTracker::new();
        let a = t.admit(packet(0, 1));
        let b = t.admit(packet(1, 2));
        assert!(t.on_piece(1, a, 2, 5).is_none());
        assert!(t.on_piece(2, b, 2, 5).is_none());
        assert!(t.on_piece(1, a, 2, 6).is_some());
        assert!(t.on_piece(2, b, 2, 6).is_some());
    }

    #[test]
    fn timestamps_reach_the_delivered_packet() {
        let mut t = EjectTracker::new();
        let r = t.admit(packet(0, 1));
        t.packet_mut(r).injected_at = Some(3);
        let done = t.on_piece(1, r, 1, 9).unwrap();
        assert_eq!(done.network_latency(), Some(6));
    }

    #[test]
    fn slots_recycle_across_deliveries() {
        let mut t = EjectTracker::new();
        for seq in 0..50 {
            let r = t.admit(packet(seq, 1));
            assert!(t.on_piece(1, r, 2, 0).is_none());
            assert!(t.on_piece(1, r, 2, 1).is_some());
        }
        assert!(t.is_empty());
    }
}
