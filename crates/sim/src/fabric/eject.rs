//! In-flight packet ownership and ejection accounting.

use crate::flit::{Packet, PacketId};
use crate::fxhash::FxHashMap;

/// Owns every packet currently inside a network (source queue to last
/// ejected piece) and the per-node ejection progress counters.
///
/// Networks move flits or quanta; this tracker reassembles them into
/// delivered packets. A packet is handed back exactly once, by the
/// [`EjectTracker::on_piece`] call that delivers its final piece —
/// the fabric-level delivered-once invariant
/// ([`super::debug_assert_delivered_once`] cross-checks it per step).
#[derive(Debug, Clone)]
pub struct EjectTracker {
    inflight: FxHashMap<PacketId, Packet>,
    /// Pieces (flits or quanta) received per partially ejected
    /// packet, per destination node.
    progress: Vec<FxHashMap<PacketId, u16>>,
}

impl EjectTracker {
    /// An empty tracker for `num_nodes` destinations.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        EjectTracker {
            inflight: FxHashMap::default(),
            progress: (0..num_nodes).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Takes ownership of a packet entering the network; returns its
    /// id for subsequent lookups.
    pub fn admit(&mut self, packet: Packet) -> PacketId {
        let id = packet.id;
        self.inflight.insert(id, packet);
        id
    }

    /// The in-flight packet with this id.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight.
    #[inline]
    #[must_use]
    pub fn packet(&self, id: PacketId) -> &Packet {
        &self.inflight[&id]
    }

    /// Mutable access to an in-flight packet (timestamp stamping).
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight.
    #[inline]
    pub fn packet_mut(&mut self, id: PacketId) -> &mut Packet {
        self.inflight.get_mut(&id).expect("packet is in flight")
    }

    /// Number of packets in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no packet is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Records one ejected piece of `id` at `node`. On the piece that
    /// completes the packet (`total` pieces seen), removes it from
    /// flight, stamps `ejected_at`, and returns it — exactly once per
    /// packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not in flight when it completes.
    pub fn on_piece(
        &mut self,
        node: usize,
        id: PacketId,
        total: u16,
        ejected_at: u64,
    ) -> Option<Packet> {
        let seen = self.progress[node].entry(id).or_insert(0);
        *seen += 1;
        if *seen != total {
            return None;
        }
        self.progress[node].remove(&id);
        let mut packet = self
            .inflight
            .remove(&id)
            .expect("ejecting packet is in flight");
        packet.ejected_at = Some(ejected_at);
        debug_assert_eq!(packet.dst.index(), node, "packet ejected at wrong node");
        Some(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId};

    fn packet(seq: u64, dst: u32) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq,
            },
            NodeId::new(0),
            NodeId::new(dst),
            4,
            0,
        )
    }

    #[test]
    fn completes_exactly_once_after_all_pieces() {
        let mut t = EjectTracker::new(4);
        let id = t.admit(packet(0, 3));
        assert_eq!(t.len(), 1);
        assert!(t.on_piece(3, id, 4, 10).is_none());
        assert!(t.on_piece(3, id, 4, 11).is_none());
        assert!(t.on_piece(3, id, 4, 12).is_none());
        let done = t.on_piece(3, id, 4, 13).expect("fourth piece completes");
        assert_eq!(done.ejected_at, Some(13));
        assert!(t.is_empty());
    }

    #[test]
    fn progress_is_per_destination() {
        let mut t = EjectTracker::new(4);
        let a = t.admit(packet(0, 1));
        let b = t.admit(packet(1, 2));
        assert!(t.on_piece(1, a, 2, 5).is_none());
        assert!(t.on_piece(2, b, 2, 5).is_none());
        assert!(t.on_piece(1, a, 2, 6).is_some());
        assert!(t.on_piece(2, b, 2, 6).is_some());
    }

    #[test]
    fn timestamps_reach_the_delivered_packet() {
        let mut t = EjectTracker::new(2);
        let id = t.admit(packet(0, 1));
        t.packet_mut(id).injected_at = Some(3);
        let done = t.on_piece(1, id, 1, 9).unwrap();
        assert_eq!(done.network_latency(), Some(6));
    }
}
