//! The shared credit-based virtual-channel datapath.

use std::collections::VecDeque;

use crate::engine::Network;
use crate::flit::{FlitKind, NodeId, Packet};
use crate::routing::{Direction, Routing};
use crate::slab::PacketRef;
use crate::topology::Topology;
use crate::worklist::ActiveSet;

use super::eject::EjectTracker;
use super::link::LinkMap;
use super::policy::{PolicyCtx, RouterPolicy, SwitchGrant};
use super::wires::{DelayedWires, TimedFifo};
use super::{debug_assert_delivered_once, LOCAL, PORTS};

/// A flit inside the VC datapath, carrying the policy's per-flit tag.
///
/// Flits move a [`PacketRef`] handle, not the packet itself — the
/// packet lives in the fabric's [`EjectTracker`] slab from admission
/// to delivery.
#[derive(Debug, Clone, Copy)]
pub struct VcFlit<T> {
    /// Handle of the owning packet.
    pub pref: PacketRef,
    /// Destination node.
    pub dst: NodeId,
    /// Position within the packet (head/body/tail).
    pub kind: FlitKind,
    /// Policy payload (e.g. the GSF frame number).
    pub tag: T,
}

/// One input virtual-channel buffer.
#[derive(Debug)]
pub struct VcBuf<T> {
    /// Buffered flits, FIFO.
    pub q: VecDeque<VcFlit<T>>,
    /// Output port computed for the packet at the front, if any.
    pub route: Option<usize>,
    /// Downstream VC allocated to that packet, if any.
    pub out_vc: Option<usize>,
}

impl<T> VcBuf<T> {
    fn with_capacity(cap: usize) -> Self {
        VcBuf {
            q: VecDeque::with_capacity(cap),
            route: None,
            out_vc: None,
        }
    }
}

impl<T: Copy> VcBuf<T> {
    /// Tag of the flit at the front, if any.
    #[inline]
    #[must_use]
    pub fn head_tag(&self) -> Option<T> {
        self.q.front().map(|f| f.tag)
    }
}

/// Per-router VC state: input buffers, downstream VC ownership,
/// credits, and arbitration pointers.
///
/// This is the superset the policies need — wormhole uses `rr_va` and
/// ignores `out_draining`; GSF is the reverse. Policies index these
/// fields directly in their allocation hooks.
///
/// All per-(port, vc) state is stored flat with stride `num_vcs`: the
/// *slot* of input VC `(port, vc)` is `port * num_vcs + vc`, and the
/// same flat index addresses `out_owner`/`out_draining`/`credits` for
/// output `(port, vc)`. Arbitration scans walk slots directly, so the
/// per-candidate div/mod of a nested layout disappears from the hot
/// loops.
#[derive(Debug)]
pub struct VcRouter<T> {
    /// Input VC buffers; slot `port * num_vcs + vc`.
    pub inputs: Vec<VcBuf<T>>,
    /// Whether the downstream VC reached through output slot
    /// `port * num_vcs + vc` is currently owned by a packet.
    /// (`false` = free for allocation.)
    pub out_owner: Vec<bool>,
    /// Tail already forwarded, VC still draining: not yet reusable
    /// (only meaningful under [`RouterPolicy::DRAIN_BEFORE_REUSE`]).
    pub out_draining: Vec<bool>,
    /// Free flit slots in the downstream VC at output slot
    /// `port * num_vcs + vc`.
    pub credits: Vec<u32>,
    /// Per-output round-robin pointer for VC allocation.
    pub rr_va: [usize; PORTS],
    /// Per-output round-robin pointer for switch allocation.
    pub rr_sa: [usize; PORTS],
    /// Input VCs currently routed to each output port (maintained by
    /// the fabric). `routed[out] == 0` means no input VC can possibly
    /// request `out`, so allocation scans for it are skipped.
    pub routed: [u32; PORTS],
    /// Per-output bitmask over input slots awaiting VC allocation:
    /// bit `slot` is set iff `inputs[slot].route == Some(out)` and
    /// `inputs[slot].out_vc.is_none()`. The head flit that produced
    /// the route is still at the front of such a slot (it cannot move
    /// without a downstream VC), so every set bit is a live request.
    pub va_req: [u64; PORTS],
    /// Per-output bitmask over input slots able to request the switch:
    /// bit `slot` is set iff `inputs[slot].route == Some(out)`,
    /// `inputs[slot].out_vc.is_some()`, and the buffer is non-empty.
    /// Credit availability is *not* folded in — it changes outside the
    /// slot's own lifecycle — so arbiters still check credits per
    /// candidate.
    pub sa_ready: [u64; PORTS],
}

impl<T> VcRouter<T> {
    /// An idle router with `num_vcs` VCs per port, each `vc_capacity`
    /// flits deep. Public so arbitration equivalence tests can build
    /// routers directly; networks get theirs from [`VcFabric::new`].
    #[must_use]
    pub fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        assert!(
            PORTS * num_vcs <= 64,
            "arbitration masks hold one bit per input slot: \
             {PORTS} ports * {num_vcs} VCs must fit in a u64"
        );
        VcRouter {
            inputs: (0..PORTS * num_vcs)
                .map(|_| VcBuf::with_capacity(vc_capacity))
                .collect(),
            out_owner: vec![false; PORTS * num_vcs],
            out_draining: vec![false; PORTS * num_vcs],
            credits: vec![vc_capacity as u32; PORTS * num_vcs],
            rr_va: [0; PORTS],
            rr_sa: [0; PORTS],
            routed: [0; PORTS],
            va_req: [0; PORTS],
            sa_ready: [0; PORTS],
        }
    }

    /// Grants downstream VC `vc` at output `out` to the packet at
    /// input slot `slot`: marks the output VC owned, records the
    /// allocation on the input, and moves the slot's mask bit from
    /// the VC-allocation request mask to the switch-ready mask.
    ///
    /// The policies' VC allocators must route every grant through
    /// here so the masks stay exact.
    #[inline]
    pub fn grant_vc(&mut self, slot: usize, out: usize, vc: usize, num_vcs: usize) {
        debug_assert_eq!(self.inputs[slot].route, Some(out), "grant without route");
        debug_assert!(self.inputs[slot].out_vc.is_none(), "double VC grant");
        debug_assert!(!self.out_owner[out * num_vcs + vc], "granted an owned VC");
        debug_assert!(
            self.inputs[slot]
                .q
                .front()
                .is_some_and(|f| f.kind.is_head()),
            "VC granted to a slot whose front is not a head flit"
        );
        self.out_owner[out * num_vcs + vc] = true;
        self.inputs[slot].out_vc = Some(vc);
        let bit = 1u64 << slot;
        self.va_req[out] &= !bit;
        // The head that requested the VC is still at the front, so
        // the slot can request the switch immediately.
        self.sa_ready[out] |= bit;
    }

    /// The slots requesting a VC at output `out`, in ascending slot
    /// order.
    #[inline]
    #[must_use]
    pub fn va_requests(&self, out: usize) -> MaskIter {
        MaskIter {
            hi: self.va_req[out],
            lo: 0,
        }
    }

    /// The slots able to request the switch at output `out`, in
    /// rotating-priority order starting from slot `start`: slots
    /// `>= start` ascending, then slots `< start` ascending.
    #[inline]
    #[must_use]
    pub fn sa_candidates(&self, out: usize, start: usize) -> MaskIter {
        MaskIter::rotated(self.sa_ready[out], start)
    }
}

/// Iterator over the set bits of a u64 slot mask, optionally rotated
/// so bits at or above a start position come first (each half in
/// ascending order). Yields slot indices via `trailing_zeros`.
#[derive(Debug, Clone, Copy)]
pub struct MaskIter {
    /// Bits at or above the rotation point, drained first.
    hi: u64,
    /// Bits below the rotation point, drained second.
    lo: u64,
}

impl MaskIter {
    /// Iterates `mask` starting from bit `start`, wrapping around.
    #[inline]
    #[must_use]
    pub fn rotated(mask: u64, start: usize) -> Self {
        let hi_bits = (!0u64).checked_shl(start as u32).unwrap_or(0);
        MaskIter {
            hi: mask & hi_bits,
            lo: mask & !hi_bits,
        }
    }
}

impl Iterator for MaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let word = if self.hi != 0 {
            &mut self.hi
        } else {
            &mut self.lo
        };
        if *word == 0 {
            return None;
        }
        let slot = word.trailing_zeros() as usize;
        *word &= *word - 1;
        Some(slot)
    }
}

/// A packet streaming from a NIC into its router, one flit per cycle.
#[derive(Debug)]
pub struct Streaming<T> {
    pref: PacketRef,
    dst: NodeId,
    len: u16,
    pos: u16,
    vc: usize,
    tag: T,
}

/// Per-node source NIC state: the packet currently streaming and the
/// local-VC credit/ownership tracking. (What *waits* to stream — the
/// source queue — belongs to the policy.)
#[derive(Debug)]
pub struct VcNic<T> {
    current: Option<Streaming<T>>,
    /// Free slots in each local input VC of the attached router.
    credits: Vec<u32>,
    /// Local VCs currently owned by an in-progress NIC packet.
    owned: Vec<bool>,
    /// Local VCs whose packet finished but whose credits have not
    /// fully returned (only under `DRAIN_BEFORE_REUSE`).
    draining: Vec<bool>,
    rr: usize,
}

impl<T> VcNic<T> {
    fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        VcNic {
            current: None,
            credits: vec![vc_capacity as u32; num_vcs],
            owned: vec![false; num_vcs],
            draining: vec![false; num_vcs],
            rr: 0,
        }
    }
}

/// Physical parameters of the VC datapath, shared by every policy.
#[derive(Debug, Clone, Copy)]
pub struct VcParams {
    /// Network topology (mesh, torus, or ring).
    pub topo: Topology,
    /// Routing algorithm.
    pub routing: Routing,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Flit slots per VC buffer.
    pub vc_capacity: usize,
    /// Router pipeline + link traversal, in cycles.
    pub hop_latency: u64,
    /// Upstream credit return delay, in cycles.
    pub credit_delay: u64,
}

/// The complete credit-based VC datapath, parameterized by a
/// [`RouterPolicy`].
///
/// Cycle processing order (every router, every cycle):
///
/// 1. link arrivals are written into input VC buffers,
/// 2. returned credits are applied (releasing drained VCs under
///    [`RouterPolicy::DRAIN_BEFORE_REUSE`]),
/// 3. the policy's [`RouterPolicy::pre_inject`] hook runs,
/// 4. NICs stream source-queue packets into their router's local
///    input port (one flit/cycle, one VC per packet; packet order
///    from the policy),
/// 5. route computation for new head flits,
/// 6. VC allocation (policy),
/// 7. switch allocation (policy) + traversal: each output port
///    forwards at most one flit, consuming a credit; the freed input
///    slot's credit travels upstream with a configurable delay.
///
/// All iteration is in ascending node/link index order with live
/// worklist semantics, bit-identical to the full scans it replaced.
#[derive(Debug)]
pub struct VcFabric<P: RouterPolicy> {
    policy: P,
    params: VcParams,
    link: LinkMap,
    cycle: u64,
    routers: Vec<VcRouter<P::Tag>>,
    nics: Vec<VcNic<P::Tag>>,
    /// In-flight flits per (node, input port), as `(vc, flit)`.
    wires: DelayedWires<(usize, VcFlit<P::Tag>)>,
    /// Credit returns: `(node, port, vc)`; `port == LOCAL` means the
    /// NIC credit pool of `node`.
    credits_in_flight: TimedFifo<(usize, usize, usize)>,
    tracker: EjectTracker,
    /// Flits forwarded per output link, index `node * PORTS + port`.
    forwarded: Vec<u64>,
    /// NICs with a packet streaming or queued.
    nic_work: ActiveSet,
    /// Routers with at least one buffered input flit.
    router_work: ActiveSet,
    /// Buffered input flits per router (maintains `router_work`).
    buffered: Vec<u32>,
}

impl<P: RouterPolicy> VcFabric<P> {
    /// Builds the datapath for `params`, scheduled by `policy`.
    pub fn new(params: VcParams, policy: P) -> Self {
        let n = params.topo.num_nodes();
        // At most one flit enters a link per cycle, so a link never
        // carries more than `hop_latency` flits at once; credits obey
        // the same bound per (port, vc). Pre-sizing to those bounds
        // means warmup never reallocates.
        let per_link = params.hop_latency as usize + 1;
        let credit_cap = n * PORTS * (params.credit_delay as usize + 1);
        VcFabric {
            link: LinkMap::new(params.topo, params.routing),
            routers: (0..n)
                .map(|_| VcRouter::new(params.num_vcs, params.vc_capacity))
                .collect(),
            nics: (0..n)
                .map(|_| VcNic::new(params.num_vcs, params.vc_capacity))
                .collect(),
            wires: DelayedWires::with_capacity(n * PORTS, per_link),
            credits_in_flight: TimedFifo::with_capacity(credit_cap),
            tracker: EjectTracker::new(),
            forwarded: vec![0; n * PORTS],
            nic_work: ActiveSet::new(n),
            router_work: ActiveSet::new(n),
            buffered: vec![0; n],
            cycle: 0,
            policy,
            params,
        }
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    #[must_use]
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.forwarded[node.index() * PORTS + dir.index()]
    }

    fn deliver_arrivals(&mut self, now: u64) {
        let Self {
            wires,
            routers,
            buffered,
            router_work,
            params,
            ..
        } = self;
        let cap = params.vc_capacity;
        let num_vcs = params.num_vcs;
        wires.drain_due(now, |widx, (vc, flit)| {
            let node = widx / PORTS;
            let port = widx % PORTS;
            let router = &mut routers[node];
            let slot = port * num_vcs + vc;
            let buf: &mut VcBuf<P::Tag> = &mut router.inputs[slot];
            debug_assert!(
                buf.q.len() < cap,
                "credit protocol violated: buffer overflow"
            );
            debug_assert!(
                !P::DRAIN_BEFORE_REUSE || buf.q.iter().all(|f| f.pref == flit.pref),
                "strict VC separation forbids mixing packets in one VC"
            );
            buf.q.push_back(flit);
            let (route, allocated) = (buf.route, buf.out_vc.is_some());
            // An allocated slot that had drained empty becomes
            // switch-ready again (idempotent when already set).
            if allocated {
                if let Some(r) = route {
                    router.sa_ready[r] |= 1u64 << slot;
                }
            }
            buffered[node] += 1;
            router_work.insert(node);
        });
    }

    fn apply_credits(&mut self, now: u64) {
        let cap = self.params.vc_capacity as u32;
        let num_vcs = self.params.num_vcs;
        while let Some((node, port, vc)) = self.credits_in_flight.pop_due(now) {
            if port == LOCAL {
                let nic = &mut self.nics[node];
                nic.credits[vc] += 1;
                if P::DRAIN_BEFORE_REUSE && nic.draining[vc] && nic.credits[vc] == cap {
                    nic.draining[vc] = false;
                    nic.owned[vc] = false;
                }
            } else {
                let r = &mut self.routers[node];
                let slot = port * num_vcs + vc;
                r.credits[slot] += 1;
                if P::DRAIN_BEFORE_REUSE && r.out_draining[slot] && r.credits[slot] == cap {
                    r.out_draining[slot] = false;
                    r.out_owner[slot] = false;
                }
            }
        }
    }

    fn nic_inject(&mut self, now: u64) {
        let num_vcs = self.params.num_vcs;
        let mut cursor = 0;
        while let Some(node) = self.nic_work.first_from(cursor) {
            cursor = node + 1;
            if self.nics[node].current.is_none() && self.policy.peek_source(node).is_some() {
                // Allocate a free local VC, round-robin; only then
                // commit the packet.
                let nic = &self.nics[node];
                let free = (0..num_vcs)
                    .map(|k| (nic.rr + k) % num_vcs)
                    .find(|&v| !nic.owned[v]);
                if let Some(vc) = free {
                    let (pref, tag) = self.policy.pop_source(node);
                    let (dst, len) = {
                        let p = self.tracker.packet(pref);
                        (p.dst, p.len_flits)
                    };
                    let nic = &mut self.nics[node];
                    nic.owned[vc] = true;
                    nic.rr = (vc + 1) % num_vcs;
                    nic.current = Some(Streaming {
                        pref,
                        dst,
                        len,
                        pos: 0,
                        vc,
                        tag,
                    });
                }
            }
            let nic = &mut self.nics[node];
            if let Some(cur) = &mut nic.current {
                if nic.credits[cur.vc] > 0 {
                    let kind = FlitKind::for_position(cur.pos, cur.len);
                    let flit = VcFlit {
                        pref: cur.pref,
                        dst: cur.dst,
                        kind,
                        tag: cur.tag,
                    };
                    nic.credits[cur.vc] -= 1;
                    if cur.pos == 0 {
                        self.tracker.packet_mut(cur.pref).injected_at = Some(now);
                    }
                    cur.pos += 1;
                    let vc = cur.vc;
                    let done = cur.pos == cur.len;
                    if done {
                        if P::DRAIN_BEFORE_REUSE {
                            nic.draining[vc] = true;
                        } else {
                            nic.owned[vc] = false;
                        }
                        nic.current = None;
                    }
                    let router = &mut self.routers[node];
                    let slot = LOCAL * num_vcs + vc;
                    let buf = &mut router.inputs[slot];
                    buf.q.push_back(flit);
                    let (route, allocated) = (buf.route, buf.out_vc.is_some());
                    if allocated {
                        if let Some(r) = route {
                            router.sa_ready[r] |= 1u64 << slot;
                        }
                    }
                    self.buffered[node] += 1;
                    self.router_work.insert(node);
                }
            }
            if self.nics[node].current.is_none() && self.policy.source_idle(node) {
                self.nic_work.remove(node);
            }
        }
    }

    fn route_compute(&mut self) {
        let link = self.link;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node];
            for slot in 0..router.inputs.len() {
                let buf = &router.inputs[slot];
                if buf.route.is_some() {
                    continue;
                }
                let Some(front) = buf.q.front() else { continue };
                if !front.kind.is_head() {
                    continue;
                }
                let out = link.route(node, front.dst);
                router.inputs[slot].route = Some(out);
                router.routed[out] += 1;
                // A freshly routed head has no downstream VC yet.
                router.va_req[out] |= 1u64 << slot;
            }
        }
    }

    fn vc_allocate(&mut self) {
        let num_vcs = self.params.num_vcs;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            self.policy.vc_allocate(&mut self.routers[node], num_vcs);
        }
    }

    fn switch_traverse(&mut self, now: u64, out: &mut Vec<Packet>) {
        let num_vcs = self.params.num_vcs;
        let total = PORTS * num_vcs;
        let mut cursor = 0;
        while let Some(node) = self.router_work.first_from(cursor) {
            cursor = node + 1;
            for out_port in 0..PORTS {
                // No input VC can request this output: nothing to
                // arbitrate. (An empty ready mask is exactly the
                // condition under which every policy's winner scan
                // comes up empty.)
                if self.routers[node].sa_ready[out_port] == 0 {
                    continue;
                }
                let Some(SwitchGrant {
                    in_vc: v,
                    out_vc: ov,
                    slot,
                    ..
                }) = self
                    .policy
                    .pick_winner(&self.routers[node], out_port, num_vcs)
                else {
                    continue;
                };
                self.forwarded[node * PORTS + out_port] += 1;
                let router = &mut self.routers[node];
                router.rr_sa[out_port] = if slot + 1 == total { 0 } else { slot + 1 };
                let flit = router.inputs[slot]
                    .q
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[node] -= 1;
                if self.buffered[node] == 0 {
                    self.router_work.remove(node);
                }
                if flit.kind.is_tail() {
                    let oslot = out_port * num_vcs + ov;
                    if P::DRAIN_BEFORE_REUSE && out_port != LOCAL {
                        // The downstream VC stays owned until drained
                        // (credits fully returned). Ejected flits
                        // leave no downstream buffer to drain.
                        router.out_draining[oslot] = true;
                    } else {
                        router.out_owner[oslot] = false;
                    }
                    router.inputs[slot].route = None;
                    router.inputs[slot].out_vc = None;
                    router.routed[out_port] -= 1;
                    router.sa_ready[out_port] &= !(1u64 << slot);
                } else if router.inputs[slot].q.is_empty() {
                    // Mid-packet with nothing buffered: the slot keeps
                    // its route and VC but cannot request the switch
                    // until the next flit arrives.
                    router.sa_ready[out_port] &= !(1u64 << slot);
                }
                if out_port != LOCAL {
                    router.credits[out_port * num_vcs + ov] -= 1;
                }
                // Return the freed input-slot credit upstream.
                let due = now + self.params.credit_delay;
                let in_port = slot / num_vcs;
                if in_port == LOCAL {
                    self.credits_in_flight.push(due, (node, LOCAL, v));
                } else {
                    let (up, up_port) = self.link.upstream(node, in_port);
                    self.credits_in_flight.push(due, (up, up_port, v));
                }
                if out_port == LOCAL {
                    self.eject(node, flit, now, out);
                } else {
                    let (next, in_port) = self.link.downstream(node, out_port);
                    let widx = next * PORTS + in_port;
                    self.wires
                        .push(widx, now + self.params.hop_latency, (ov, flit));
                }
            }
        }
    }

    fn eject(&mut self, node: usize, flit: VcFlit<P::Tag>, now: u64, out: &mut Vec<Packet>) {
        self.policy.on_eject_flit(&flit);
        let total = self.tracker.packet(flit.pref).len_flits;
        if let Some(packet) = self.tracker.on_piece(node, flit.pref, total, now) {
            self.policy.on_eject_packet(packet.id);
            out.push(packet);
        }
    }

    /// Full-scan cross-check of every worklist invariant (debug
    /// builds only): the active sets must contain exactly the indices
    /// a naive scan would find work at.
    #[cfg(debug_assertions)]
    fn debug_verify_worklists(&self) {
        self.wires.debug_verify();
        for (n, nic) in self.nics.iter().enumerate() {
            let active = nic.current.is_some() || !self.policy.source_idle(n);
            debug_assert_eq!(self.nic_work.contains(n), active, "nic_work[{n}]");
        }
        for (n, router) in self.routers.iter().enumerate() {
            let count: u32 = router.inputs.iter().map(|buf| buf.q.len() as u32).sum();
            debug_assert_eq!(self.buffered[n], count, "buffered[{n}]");
            debug_assert_eq!(self.router_work.contains(n), count > 0, "router_work[{n}]");
            let mut routed = [0u32; PORTS];
            let mut va_req = [0u64; PORTS];
            let mut sa_ready = [0u64; PORTS];
            for (slot, buf) in router.inputs.iter().enumerate() {
                if let Some(out) = buf.route {
                    routed[out] += 1;
                    if buf.out_vc.is_none() {
                        va_req[out] |= 1u64 << slot;
                    } else if !buf.q.is_empty() {
                        sa_ready[out] |= 1u64 << slot;
                    }
                }
            }
            debug_assert_eq!(router.routed, routed, "routed[{n}]");
            debug_assert_eq!(router.va_req, va_req, "va_req[{n}]");
            debug_assert_eq!(router.sa_ready, sa_ready, "sa_ready[{n}]");
        }
    }
}

impl<P: RouterPolicy> Network for VcFabric<P> {
    fn num_nodes(&self) -> usize {
        self.routers.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue(&mut self, packet: Packet) {
        let node = packet.src.index();
        let Self {
            policy,
            tracker,
            nic_work,
            ..
        } = self;
        let pref = tracker.admit(packet);
        policy.on_enqueue(
            node,
            pref,
            &mut PolicyCtx {
                packets: tracker,
                nic_work,
            },
        );
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        self.debug_verify_worklists();
        let delivered_before = out.len();
        let now = self.cycle;
        self.deliver_arrivals(now);
        self.apply_credits(now);
        {
            let Self {
                policy,
                tracker,
                nic_work,
                ..
            } = self;
            policy.pre_inject(
                now,
                &mut PolicyCtx {
                    packets: tracker,
                    nic_work,
                },
            );
        }
        self.nic_inject(now);
        self.route_compute();
        self.vc_allocate();
        self.switch_traverse(now, out);
        self.cycle = now + 1;
        debug_assert_delivered_once(out, delivered_before);
    }

    fn in_flight(&self) -> usize {
        self.tracker.len()
    }
}
