//! The shared credit-based virtual-channel datapath.

use std::collections::VecDeque;

use crate::engine::Network;
use crate::flit::{FlitKind, NodeId, Packet};
use crate::par::{partition, shard_map, Mailbox, SendPtr, ShardRange, WorkerPool};
use crate::routing::{Direction, Routing};
use crate::slab::PacketRef;
use crate::telemetry::{BufKind, NoopProbe, Probe};
use crate::topology::Topology;
use crate::worklist::ActiveSet;

use super::eject::EjectTracker;
use super::link::LinkMap;
use super::policy::{PolicyCtx, RouterPolicy, SwitchGrant};
use super::wires::{DelayedWires, TimedFifo};
use super::{debug_assert_delivered_once, LOCAL, PORTS};

/// A flit inside the VC datapath, carrying the policy's per-flit tag.
///
/// Flits move a [`PacketRef`] handle, not the packet itself — the
/// packet lives in the fabric's [`EjectTracker`] slab from admission
/// to delivery.
#[derive(Debug, Clone, Copy)]
pub struct VcFlit<T> {
    /// Handle of the owning packet.
    pub pref: PacketRef,
    /// Destination node.
    pub dst: NodeId,
    /// Position within the packet (head/body/tail).
    pub kind: FlitKind,
    /// Policy payload (e.g. the GSF frame number).
    pub tag: T,
}

/// One input virtual-channel buffer.
#[derive(Debug)]
pub struct VcBuf<T> {
    /// Buffered flits, FIFO.
    pub q: VecDeque<VcFlit<T>>,
    /// Output port computed for the packet at the front, if any.
    pub route: Option<usize>,
    /// Downstream VC allocated to that packet, if any.
    pub out_vc: Option<usize>,
}

impl<T: Clone> Clone for VcBuf<T> {
    /// Capacity-preserving (see [`crate::checkpoint::clone_deque`]):
    /// VC buffers are pre-sized at construction, and forked runs must
    /// not re-pay that growth in their steady state.
    fn clone(&self) -> Self {
        VcBuf {
            q: crate::checkpoint::clone_deque(&self.q),
            route: self.route,
            out_vc: self.out_vc,
        }
    }
}

impl<T> VcBuf<T> {
    fn with_capacity(cap: usize) -> Self {
        VcBuf {
            q: VecDeque::with_capacity(cap),
            route: None,
            out_vc: None,
        }
    }
}

impl<T: Copy> VcBuf<T> {
    /// Tag of the flit at the front, if any.
    #[inline]
    #[must_use]
    pub fn head_tag(&self) -> Option<T> {
        self.q.front().map(|f| f.tag)
    }
}

/// Per-router VC state: input buffers, downstream VC ownership,
/// credits, and arbitration pointers.
///
/// This is the superset the policies need — wormhole uses `rr_va` and
/// ignores `out_draining`; GSF is the reverse. Policies index these
/// fields directly in their allocation hooks.
///
/// All per-(port, vc) state is stored flat with stride `num_vcs`: the
/// *slot* of input VC `(port, vc)` is `port * num_vcs + vc`, and the
/// same flat index addresses `out_owner`/`out_draining`/`credits` for
/// output `(port, vc)`. Arbitration scans walk slots directly, so the
/// per-candidate div/mod of a nested layout disappears from the hot
/// loops.
#[derive(Debug, Clone)]
pub struct VcRouter<T> {
    /// Input VC buffers; slot `port * num_vcs + vc`.
    pub inputs: Vec<VcBuf<T>>,
    /// Whether the downstream VC reached through output slot
    /// `port * num_vcs + vc` is currently owned by a packet.
    /// (`false` = free for allocation.)
    pub out_owner: Vec<bool>,
    /// Tail already forwarded, VC still draining: not yet reusable
    /// (only meaningful under [`RouterPolicy::DRAIN_BEFORE_REUSE`]).
    pub out_draining: Vec<bool>,
    /// Free flit slots in the downstream VC at output slot
    /// `port * num_vcs + vc`.
    pub credits: Vec<u32>,
    /// Per-output round-robin pointer for VC allocation.
    pub rr_va: [usize; PORTS],
    /// Per-output round-robin pointer for switch allocation.
    pub rr_sa: [usize; PORTS],
    /// Input VCs currently routed to each output port (maintained by
    /// the fabric). `routed[out] == 0` means no input VC can possibly
    /// request `out`, so allocation scans for it are skipped.
    pub routed: [u32; PORTS],
    /// Per-output bitmask over input slots awaiting VC allocation:
    /// bit `slot` is set iff `inputs[slot].route == Some(out)` and
    /// `inputs[slot].out_vc.is_none()`. The head flit that produced
    /// the route is still at the front of such a slot (it cannot move
    /// without a downstream VC), so every set bit is a live request.
    pub va_req: [u64; PORTS],
    /// Per-output bitmask over input slots able to request the switch:
    /// bit `slot` is set iff `inputs[slot].route == Some(out)`,
    /// `inputs[slot].out_vc.is_some()`, and the buffer is non-empty.
    /// Credit availability is *not* folded in — it changes outside the
    /// slot's own lifecycle — so arbiters still check credits per
    /// candidate.
    pub sa_ready: [u64; PORTS],
}

impl<T> VcRouter<T> {
    /// An idle router with `num_vcs` VCs per port, each `vc_capacity`
    /// flits deep. Public so arbitration equivalence tests can build
    /// routers directly; networks get theirs from [`VcFabric::new`].
    #[must_use]
    pub fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        assert!(
            PORTS * num_vcs <= 64,
            "arbitration masks hold one bit per input slot: \
             {PORTS} ports * {num_vcs} VCs must fit in a u64"
        );
        VcRouter {
            inputs: (0..PORTS * num_vcs)
                .map(|_| VcBuf::with_capacity(vc_capacity))
                .collect(),
            out_owner: vec![false; PORTS * num_vcs],
            out_draining: vec![false; PORTS * num_vcs],
            credits: vec![vc_capacity as u32; PORTS * num_vcs],
            rr_va: [0; PORTS],
            rr_sa: [0; PORTS],
            routed: [0; PORTS],
            va_req: [0; PORTS],
            sa_ready: [0; PORTS],
        }
    }

    /// Grants downstream VC `vc` at output `out` to the packet at
    /// input slot `slot`: marks the output VC owned, records the
    /// allocation on the input, and moves the slot's mask bit from
    /// the VC-allocation request mask to the switch-ready mask.
    ///
    /// The policies' VC allocators must route every grant through
    /// here so the masks stay exact.
    #[inline]
    pub fn grant_vc(&mut self, slot: usize, out: usize, vc: usize, num_vcs: usize) {
        debug_assert_eq!(self.inputs[slot].route, Some(out), "grant without route");
        debug_assert!(self.inputs[slot].out_vc.is_none(), "double VC grant");
        debug_assert!(!self.out_owner[out * num_vcs + vc], "granted an owned VC");
        debug_assert!(
            self.inputs[slot]
                .q
                .front()
                .is_some_and(|f| f.kind.is_head()),
            "VC granted to a slot whose front is not a head flit"
        );
        self.out_owner[out * num_vcs + vc] = true;
        self.inputs[slot].out_vc = Some(vc);
        let bit = 1u64 << slot;
        self.va_req[out] &= !bit;
        // The head that requested the VC is still at the front, so
        // the slot can request the switch immediately.
        self.sa_ready[out] |= bit;
    }

    /// The slots requesting a VC at output `out`, in ascending slot
    /// order.
    #[inline]
    #[must_use]
    pub fn va_requests(&self, out: usize) -> MaskIter {
        MaskIter {
            hi: self.va_req[out],
            lo: 0,
        }
    }

    /// The slots able to request the switch at output `out`, in
    /// rotating-priority order starting from slot `start`: slots
    /// `>= start` ascending, then slots `< start` ascending.
    #[inline]
    #[must_use]
    pub fn sa_candidates(&self, out: usize, start: usize) -> MaskIter {
        MaskIter::rotated(self.sa_ready[out], start)
    }
}

/// Iterator over the set bits of a u64 slot mask, optionally rotated
/// so bits at or above a start position come first (each half in
/// ascending order). Yields slot indices via `trailing_zeros`.
#[derive(Debug, Clone, Copy)]
pub struct MaskIter {
    /// Bits at or above the rotation point, drained first.
    hi: u64,
    /// Bits below the rotation point, drained second.
    lo: u64,
}

impl MaskIter {
    /// Iterates `mask` starting from bit `start`, wrapping around.
    #[inline]
    #[must_use]
    pub fn rotated(mask: u64, start: usize) -> Self {
        let hi_bits = (!0u64).checked_shl(start as u32).unwrap_or(0);
        MaskIter {
            hi: mask & hi_bits,
            lo: mask & !hi_bits,
        }
    }
}

impl Iterator for MaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let word = if self.hi != 0 {
            &mut self.hi
        } else {
            &mut self.lo
        };
        if *word == 0 {
            return None;
        }
        let slot = word.trailing_zeros() as usize;
        *word &= *word - 1;
        Some(slot)
    }
}

/// A packet streaming from a NIC into its router, one flit per cycle.
#[derive(Debug, Clone)]
pub struct Streaming<T> {
    pref: PacketRef,
    dst: NodeId,
    len: u16,
    pos: u16,
    vc: usize,
    tag: T,
}

/// Per-node source NIC state: the packet currently streaming and the
/// local-VC credit/ownership tracking. (What *waits* to stream — the
/// source queue — belongs to the policy.)
#[derive(Debug, Clone)]
pub struct VcNic<T> {
    current: Option<Streaming<T>>,
    /// Free slots in each local input VC of the attached router.
    credits: Vec<u32>,
    /// Local VCs currently owned by an in-progress NIC packet.
    owned: Vec<bool>,
    /// Local VCs whose packet finished but whose credits have not
    /// fully returned (only under `DRAIN_BEFORE_REUSE`).
    draining: Vec<bool>,
    rr: usize,
}

impl<T> VcNic<T> {
    fn new(num_vcs: usize, vc_capacity: usize) -> Self {
        VcNic {
            current: None,
            credits: vec![vc_capacity as u32; num_vcs],
            owned: vec![false; num_vcs],
            draining: vec![false; num_vcs],
            rr: 0,
        }
    }
}

/// Physical parameters of the VC datapath, shared by every policy.
#[derive(Debug, Clone, Copy)]
pub struct VcParams {
    /// Network topology (mesh, torus, or ring).
    pub topo: Topology,
    /// Routing algorithm.
    pub routing: Routing,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Flit slots per VC buffer.
    pub vc_capacity: usize,
    /// Router pipeline + link traversal, in cycles.
    pub hop_latency: u64,
    /// Upstream credit return delay, in cycles.
    pub credit_delay: u64,
    /// Shards stepped concurrently each cycle (1 = single-threaded;
    /// clamped to the node count). Results are bit-identical at every
    /// value — see [`crate::par`].
    pub threads: usize,
}

/// A cross-shard flit push awaiting the barrier merge:
/// `(widx, (vc, flit))` for [`DelayedWires::push`] on the
/// destination shard.
type WirePush<T> = (usize, (usize, VcFlit<T>));

/// State owned exclusively by one shard of nodes: its wires, credit
/// returns, worklists, policy scratch, and the outboxes/deferred
/// events the cycle barrier merges.
#[derive(Debug, Clone)]
struct ShardState<P: RouterPolicy, Pr: Probe> {
    /// This shard's telemetry probe (a [`Probe::fork`] of the
    /// fabric's). Only events for this shard's node range land here;
    /// [`VcFabric::into_probe`] absorbs the forks in shard order.
    probe: Pr,
    /// In-flight flits per (node, input port), as `(vc, flit)`.
    /// Globally indexed `node * PORTS + port`; only links of nodes in
    /// this shard's range are ever populated.
    wires: DelayedWires<(usize, VcFlit<P::Tag>)>,
    /// Credit returns for this shard's nodes: `(node, port, vc)`;
    /// `port == LOCAL` means the NIC credit pool of `node`.
    credits_in_flight: TimedFifo<(usize, usize, usize)>,
    /// This shard's NICs with a packet streaming or queued.
    nic_work: ActiveSet,
    /// This shard's routers with at least one buffered input flit.
    router_work: ActiveSet,
    /// Per-shard policy allocation scratch.
    scratch: P::Scratch,
    /// Cross-shard flit pushes `(widx, (vc, flit))`, one lane per
    /// destination shard.
    wire_out: Mailbox<WirePush<P::Tag>>,
    /// Cross-shard credit returns `(node, port, vc)`, one lane per
    /// destination shard.
    credit_out: Mailbox<(usize, usize, usize)>,
    /// Flits ejected by this shard's routers this cycle, in ascending
    /// node order; applied serially at the barrier.
    ejects: Vec<VcFlit<P::Tag>>,
    /// Packets whose first flit entered the network this cycle;
    /// `injected_at` is stamped at the barrier (the slab is read-only
    /// during the parallel phase).
    stamps: Vec<PacketRef>,
}

impl<P: RouterPolicy, Pr: Probe> ShardState<P, Pr> {
    fn new(n: usize, shards: usize, params: &VcParams, probe: Pr) -> Self {
        // At most one flit enters a link per cycle, so a link never
        // carries more than `hop_latency` flits at once; credits obey
        // the same bound per (port, vc). Pre-sizing to those bounds
        // means warmup never reallocates.
        let per_link = params.hop_latency as usize + 1;
        let credit_cap = n * PORTS * (params.credit_delay as usize + 1);
        ShardState {
            probe,
            wires: DelayedWires::with_capacity(n * PORTS, per_link),
            credits_in_flight: TimedFifo::with_capacity(credit_cap),
            nic_work: ActiveSet::new(n),
            router_work: ActiveSet::new(n),
            scratch: P::Scratch::default(),
            wire_out: Mailbox::new(shards),
            credit_out: Mailbox::new(shards),
            ejects: Vec::new(),
            stamps: Vec::new(),
        }
    }
}

/// One shard's mutable view of the fabric for a single cycle: the
/// node-range slices of the global per-node arrays plus the shard's
/// own [`ShardState`]. All slices cover exactly `range` (local index
/// `node - range.lo`); `forwarded` covers the matching link range.
struct ShardCtx<'a, P: RouterPolicy, Pr: Probe> {
    range: ShardRange,
    routers: &'a mut [VcRouter<P::Tag>],
    nics: &'a mut [VcNic<P::Tag>],
    sources: &'a mut [P::Source],
    buffered: &'a mut [u32],
    forwarded: &'a mut [u64],
    aux: &'a mut ShardState<P, Pr>,
    tracker: &'a EjectTracker,
    link: LinkMap,
    params: VcParams,
    shard_of: &'a [u32],
}

impl<P: RouterPolicy, Pr: Probe> ShardCtx<'_, P, Pr> {
    /// Phases 1–7 of the cycle for this shard's nodes. Every write
    /// lands in shard-owned state; cross-shard effects go to the
    /// outboxes/deferred-event lists for the barrier.
    fn run_cycle(&mut self, now: u64) {
        self.sample_occupancy(now);
        self.deliver_arrivals(now);
        self.apply_credits(now);
        self.nic_inject();
        self.route_compute();
        self.vc_allocate();
        self.switch_traverse(now);
    }

    /// Emits one occupancy sample per input VC buffer when the probe's
    /// sampling window is due. The whole scan is statically removed
    /// for [`NoopProbe`] builds (`Pr::ENABLED` is `false`), so the
    /// telemetry-off hot loop does not even test the cycle counter.
    fn sample_occupancy(&mut self, now: u64) {
        if !Pr::ENABLED || !self.aux.probe.sample_due(now) {
            return;
        }
        let num_vcs = self.params.num_vcs;
        let lo = self.range.lo;
        for (l, router) in self.routers.iter().enumerate() {
            let base = (lo + l) * PORTS;
            for (slot, buf) in router.inputs.iter().enumerate() {
                let port = slot / num_vcs;
                self.aux
                    .probe
                    .on_occupancy(BufKind::Vc, base + port, buf.q.len() as u32);
            }
        }
    }

    fn deliver_arrivals(&mut self, now: u64) {
        let Self {
            aux,
            routers,
            buffered,
            range,
            params,
            ..
        } = self;
        let cap = params.vc_capacity;
        let num_vcs = params.num_vcs;
        let lo = range.lo;
        let router_work = &mut aux.router_work;
        aux.wires.drain_due(now, |widx, (vc, flit)| {
            let node = widx / PORTS;
            let port = widx % PORTS;
            let router = &mut routers[node - lo];
            let slot = port * num_vcs + vc;
            let buf: &mut VcBuf<P::Tag> = &mut router.inputs[slot];
            debug_assert!(
                buf.q.len() < cap,
                "credit protocol violated: buffer overflow"
            );
            debug_assert!(
                !P::DRAIN_BEFORE_REUSE || buf.q.iter().all(|f| f.pref == flit.pref),
                "strict VC separation forbids mixing packets in one VC"
            );
            buf.q.push_back(flit);
            let (route, allocated) = (buf.route, buf.out_vc.is_some());
            // An allocated slot that had drained empty becomes
            // switch-ready again (idempotent when already set).
            if allocated {
                if let Some(r) = route {
                    router.sa_ready[r] |= 1u64 << slot;
                }
            }
            buffered[node - lo] += 1;
            router_work.insert(node);
        });
    }

    fn apply_credits(&mut self, now: u64) {
        let cap = self.params.vc_capacity as u32;
        let num_vcs = self.params.num_vcs;
        let lo = self.range.lo;
        while let Some((node, port, vc)) = self.aux.credits_in_flight.pop_due(now) {
            if port == LOCAL {
                let nic = &mut self.nics[node - lo];
                nic.credits[vc] += 1;
                if P::DRAIN_BEFORE_REUSE && nic.draining[vc] && nic.credits[vc] == cap {
                    nic.draining[vc] = false;
                    nic.owned[vc] = false;
                }
            } else {
                let r = &mut self.routers[node - lo];
                let slot = port * num_vcs + vc;
                r.credits[slot] += 1;
                if P::DRAIN_BEFORE_REUSE && r.out_draining[slot] && r.credits[slot] == cap {
                    r.out_draining[slot] = false;
                    r.out_owner[slot] = false;
                }
            }
        }
    }

    fn nic_inject(&mut self) {
        let num_vcs = self.params.num_vcs;
        let lo = self.range.lo;
        let mut cursor = 0;
        while let Some(node) = self.aux.nic_work.first_from(cursor) {
            cursor = node + 1;
            let l = node - lo;
            if self.nics[l].current.is_none() && P::peek_source(&self.sources[l]).is_some() {
                // Allocate a free local VC, round-robin; only then
                // commit the packet.
                let nic = &self.nics[l];
                let free = (0..num_vcs)
                    .map(|k| (nic.rr + k) % num_vcs)
                    .find(|&v| !nic.owned[v]);
                if let Some(vc) = free {
                    let (pref, tag) = P::pop_source(&mut self.sources[l]);
                    let (dst, len) = {
                        let p = self.tracker.packet(pref);
                        (p.dst, p.len_flits)
                    };
                    let nic = &mut self.nics[l];
                    nic.owned[vc] = true;
                    nic.rr = (vc + 1) % num_vcs;
                    nic.current = Some(Streaming {
                        pref,
                        dst,
                        len,
                        pos: 0,
                        vc,
                        tag,
                    });
                }
            }
            let nic = &mut self.nics[l];
            if let Some(cur) = &mut nic.current {
                if nic.credits[cur.vc] > 0 {
                    let kind = FlitKind::for_position(cur.pos, cur.len);
                    let flit = VcFlit {
                        pref: cur.pref,
                        dst: cur.dst,
                        kind,
                        tag: cur.tag,
                    };
                    nic.credits[cur.vc] -= 1;
                    if cur.pos == 0 {
                        // The slab is shared read-only across shards;
                        // the barrier applies the stamp.
                        self.aux.stamps.push(cur.pref);
                    }
                    cur.pos += 1;
                    let vc = cur.vc;
                    let done = cur.pos == cur.len;
                    if done {
                        if P::DRAIN_BEFORE_REUSE {
                            nic.draining[vc] = true;
                        } else {
                            nic.owned[vc] = false;
                        }
                        nic.current = None;
                    }
                    let router = &mut self.routers[l];
                    let slot = LOCAL * num_vcs + vc;
                    let buf = &mut router.inputs[slot];
                    buf.q.push_back(flit);
                    let (route, allocated) = (buf.route, buf.out_vc.is_some());
                    if allocated {
                        if let Some(r) = route {
                            router.sa_ready[r] |= 1u64 << slot;
                        }
                    }
                    self.buffered[l] += 1;
                    self.aux.router_work.insert(node);
                } else {
                    // A packet is mid-stream but the local VC has no
                    // credit: the source is head-of-line blocked.
                    self.aux.probe.on_nic_stall(node);
                }
            }
            if self.nics[l].current.is_none() && P::source_idle(&self.sources[l]) {
                self.aux.nic_work.remove(node);
            }
        }
    }

    fn route_compute(&mut self) {
        let link = self.link;
        let lo = self.range.lo;
        let mut cursor = 0;
        while let Some(node) = self.aux.router_work.first_from(cursor) {
            cursor = node + 1;
            let router = &mut self.routers[node - lo];
            for slot in 0..router.inputs.len() {
                let buf = &router.inputs[slot];
                if buf.route.is_some() {
                    continue;
                }
                let Some(front) = buf.q.front() else { continue };
                if !front.kind.is_head() {
                    continue;
                }
                let out = link.route(node, front.dst);
                router.inputs[slot].route = Some(out);
                router.routed[out] += 1;
                // A freshly routed head has no downstream VC yet.
                router.va_req[out] |= 1u64 << slot;
            }
        }
    }

    fn vc_allocate(&mut self) {
        let num_vcs = self.params.num_vcs;
        let lo = self.range.lo;
        let mut cursor = 0;
        while let Some(node) = self.aux.router_work.first_from(cursor) {
            cursor = node + 1;
            P::vc_allocate(&mut self.aux.scratch, &mut self.routers[node - lo], num_vcs);
        }
    }

    fn switch_traverse(&mut self, now: u64) {
        let num_vcs = self.params.num_vcs;
        let total = PORTS * num_vcs;
        let lo = self.range.lo;
        let mut cursor = 0;
        while let Some(node) = self.aux.router_work.first_from(cursor) {
            cursor = node + 1;
            let l = node - lo;
            for out_port in 0..PORTS {
                // No input VC can request this output: nothing to
                // arbitrate. (An empty ready mask is exactly the
                // condition under which every policy's winner scan
                // comes up empty.)
                if self.routers[l].sa_ready[out_port] == 0 {
                    continue;
                }
                let Some(SwitchGrant {
                    in_vc: v,
                    out_vc: ov,
                    slot,
                    ..
                }) = P::pick_winner(&self.routers[l], out_port, num_vcs)
                else {
                    // Input VCs were switch-ready for this output but
                    // no candidate could win (typically no downstream
                    // credit): the link idles under load.
                    self.aux.probe.on_link_stall(node * PORTS + out_port);
                    continue;
                };
                self.forwarded[l * PORTS + out_port] += 1;
                self.aux.probe.on_link_flits(node * PORTS + out_port, 1);
                let router = &mut self.routers[l];
                router.rr_sa[out_port] = if slot + 1 == total { 0 } else { slot + 1 };
                let flit = router.inputs[slot]
                    .q
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[l] -= 1;
                if self.buffered[l] == 0 {
                    self.aux.router_work.remove(node);
                }
                if flit.kind.is_tail() {
                    let oslot = out_port * num_vcs + ov;
                    if P::DRAIN_BEFORE_REUSE && out_port != LOCAL {
                        // The downstream VC stays owned until drained
                        // (credits fully returned). Ejected flits
                        // leave no downstream buffer to drain.
                        router.out_draining[oslot] = true;
                    } else {
                        router.out_owner[oslot] = false;
                    }
                    router.inputs[slot].route = None;
                    router.inputs[slot].out_vc = None;
                    router.routed[out_port] -= 1;
                    router.sa_ready[out_port] &= !(1u64 << slot);
                } else if router.inputs[slot].q.is_empty() {
                    // Mid-packet with nothing buffered: the slot keeps
                    // its route and VC but cannot request the switch
                    // until the next flit arrives.
                    router.sa_ready[out_port] &= !(1u64 << slot);
                }
                if out_port != LOCAL {
                    router.credits[out_port * num_vcs + ov] -= 1;
                }
                // Return the freed input-slot credit upstream.
                let due = now + self.params.credit_delay;
                let in_port = slot / num_vcs;
                if in_port == LOCAL {
                    self.aux.credits_in_flight.push(due, (node, LOCAL, v));
                } else {
                    let (up, up_port) = self.link.upstream(node, in_port);
                    if self.range.contains(up) {
                        self.aux.credits_in_flight.push(due, (up, up_port, v));
                    } else {
                        self.aux
                            .credit_out
                            .push(self.shard_of[up] as usize, (up, up_port, v));
                    }
                }
                if out_port == LOCAL {
                    // Ejection accounting (slab removal, policy hooks,
                    // the delivery list) is serialized at the barrier;
                    // pushes here are in ascending node order.
                    self.aux.ejects.push(flit);
                } else {
                    let (next, in_port) = self.link.downstream(node, out_port);
                    let widx = next * PORTS + in_port;
                    if self.range.contains(next) {
                        self.aux
                            .wires
                            .push(widx, now + self.params.hop_latency, (ov, flit));
                    } else {
                        self.aux
                            .wire_out
                            .push(self.shard_of[next] as usize, (widx, (ov, flit)));
                    }
                }
            }
        }
    }
}

/// The complete credit-based VC datapath, parameterized by a
/// [`RouterPolicy`].
///
/// Cycle processing order:
///
/// 1. the policy's serial [`RouterPolicy::pre_inject`] hook runs,
/// 2. every shard (all nodes, [`VcParams::threads`] shards stepped
///    concurrently) then runs, per router:
///    1. link arrivals are written into input VC buffers,
///    2. returned credits are applied (releasing drained VCs under
///       [`RouterPolicy::DRAIN_BEFORE_REUSE`]),
///    3. NICs stream source-queue packets into their router's local
///       input port (one flit/cycle, one VC per packet; packet order
///       from the policy),
///    4. route computation for new head flits,
///    5. VC allocation (policy),
///    6. switch allocation (policy) + traversal: each output port
///       forwards at most one flit, consuming a credit; the freed
///       input slot's credit travels upstream with a configurable
///       delay,
/// 3. the cycle barrier merges cross-shard flits/credits in ascending
///    global link index order and applies deferred injection stamps
///    and ejections in ascending node order.
///
/// All iteration is in ascending node/link index order with live
/// worklist semantics, bit-identical to the full scans it replaced —
/// at any shard count (see [`crate::par`] for the argument).
#[derive(Debug, Clone)]
pub struct VcFabric<P: RouterPolicy, Pr: Probe = NoopProbe> {
    policy: P,
    /// The fabric-level telemetry probe. Serial-phase events (packet
    /// admission, ejection, end-of-cycle) land here; per-shard events
    /// land in each shard's fork and merge in [`VcFabric::into_probe`].
    probe: Pr,
    params: VcParams,
    link: LinkMap,
    cycle: u64,
    routers: Vec<VcRouter<P::Tag>>,
    nics: Vec<VcNic<P::Tag>>,
    /// Per-node source queues (policy-defined order).
    sources: Vec<P::Source>,
    tracker: EjectTracker,
    /// Flits forwarded per output link, index `node * PORTS + port`.
    forwarded: Vec<u64>,
    /// Buffered input flits per router (maintains the shards'
    /// `router_work`).
    buffered: Vec<u32>,
    /// Contiguous node ranges, one per shard.
    ranges: Vec<ShardRange>,
    /// Node → shard index.
    shard_of: Vec<u32>,
    /// Shard-owned stepping state (always at least one shard; the
    /// single-threaded path is the one-shard case with no pool).
    shards: Vec<ShardState<P, Pr>>,
    /// Worker pool, present only when `threads > 1`.
    pool: Option<WorkerPool>,
    /// Relay for policy wake-ups (see [`PolicyCtx::woken`]).
    woken: Vec<usize>,
    /// Barrier merge scratch for cross-shard flits.
    wire_scratch: Vec<WirePush<P::Tag>>,
    /// Barrier merge scratch for cross-shard credits.
    credit_scratch: Vec<(usize, usize, usize)>,
}

impl<P: RouterPolicy> VcFabric<P> {
    /// Builds the datapath for `params`, scheduled by `policy`, with
    /// telemetry disabled ([`NoopProbe`] — zero cost, bit-identical
    /// to a build without probe plumbing).
    pub fn new(params: VcParams, policy: P) -> Self {
        Self::with_probe(params, policy, NoopProbe)
    }
}

impl<P: RouterPolicy, Pr: Probe> VcFabric<P, Pr> {
    /// Builds the datapath for `params`, scheduled by `policy`,
    /// reporting telemetry events to `probe` (each shard gets a
    /// [`Probe::fork`]; retrieve the merged result with
    /// [`VcFabric::into_probe`] after the run).
    pub fn with_probe(params: VcParams, policy: P, probe: Pr) -> Self {
        let n = params.topo.num_nodes();
        let ranges = partition(n, params.threads);
        let k = ranges.len();
        VcFabric {
            link: LinkMap::new(params.topo, params.routing),
            routers: (0..n)
                .map(|_| VcRouter::new(params.num_vcs, params.vc_capacity))
                .collect(),
            nics: (0..n)
                .map(|_| VcNic::new(params.num_vcs, params.vc_capacity))
                .collect(),
            sources: (0..n).map(|_| policy.new_source()).collect(),
            tracker: EjectTracker::new(),
            forwarded: vec![0; n * PORTS],
            buffered: vec![0; n],
            shard_of: shard_map(&ranges),
            shards: (0..k)
                .map(|_| ShardState::new(n, k, &params, probe.fork()))
                .collect(),
            pool: (k > 1).then(|| WorkerPool::new(k - 1)),
            ranges,
            woken: Vec::new(),
            wire_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            cycle: 0,
            policy,
            probe,
            params,
        }
    }

    /// Consumes the fabric, merging every shard's probe fork into the
    /// main probe (ascending shard order — the deterministic merge
    /// order telemetry shard-invariance relies on) and returning it.
    #[must_use]
    pub fn into_probe(self) -> Pr {
        let mut probe = self.probe;
        for shard in self.shards {
            probe.absorb(shard.probe);
        }
        probe
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Flits forwarded so far on the output link `(node, dir)` —
    /// divide by elapsed cycles for the link utilization.
    #[must_use]
    pub fn link_flits(&self, node: NodeId, dir: Direction) -> u64 {
        self.forwarded[node.index() * PORTS + dir.index()]
    }

    /// Inserts every node the last policy hook woke into its shard's
    /// NIC worklist.
    fn apply_woken(&mut self) {
        let Self {
            woken,
            shards,
            shard_of,
            ..
        } = self;
        for node in woken.drain(..) {
            shards[shard_of[node] as usize].nic_work.insert(node);
        }
    }

    /// Steps every shard sequentially on the calling thread (the
    /// `threads == 1` path — same phase code as the parallel path,
    /// no pool, no unsafe).
    fn step_shards_serial(&mut self, now: u64) {
        for s in 0..self.shards.len() {
            let range = self.ranges[s];
            let Self {
                routers,
                nics,
                sources,
                buffered,
                forwarded,
                shards,
                tracker,
                link,
                params,
                shard_of,
                ..
            } = self;
            ShardCtx::<P, Pr> {
                range,
                routers: &mut routers[range.lo..range.hi],
                nics: &mut nics[range.lo..range.hi],
                sources: &mut sources[range.lo..range.hi],
                buffered: &mut buffered[range.lo..range.hi],
                forwarded: &mut forwarded[range.lo * PORTS..range.hi * PORTS],
                aux: &mut shards[s],
                tracker,
                link: *link,
                params: *params,
                shard_of,
            }
            .run_cycle(now);
        }
    }

    /// Steps all shards concurrently on the worker pool.
    fn step_shards_parallel(&mut self, now: u64) {
        let routers = SendPtr::new(self.routers.as_mut_ptr());
        let nics = SendPtr::new(self.nics.as_mut_ptr());
        let sources = SendPtr::new(self.sources.as_mut_ptr());
        let buffered = SendPtr::new(self.buffered.as_mut_ptr());
        let forwarded = SendPtr::new(self.forwarded.as_mut_ptr());
        let shards = SendPtr::new(self.shards.as_mut_ptr());
        let ranges: &[ShardRange] = &self.ranges;
        let shard_of: &[u32] = &self.shard_of;
        let tracker: &EjectTracker = &self.tracker;
        let link = self.link;
        let params = self.params;
        let k = ranges.len();
        let pool = self.pool.as_mut().expect("parallel step without a pool");
        pool.run(k, &|s| {
            let range = ranges[s];
            let lo = range.lo;
            let len = range.len();
            // SAFETY: shard ranges are disjoint and cover `0..n`, and
            // the pool hands each shard index to exactly one task, so
            // the slices below never overlap across concurrent tasks;
            // `pool.run` returns only after every task (and worker)
            // has left the job, so no access outlives the borrows the
            // pointers were created from. `SendPtr` requires the
            // pointee to be `Send`, which the `RouterPolicy`
            // associated-type bounds guarantee.
            let mut ctx = unsafe {
                ShardCtx::<P, Pr> {
                    range,
                    routers: std::slice::from_raw_parts_mut(routers.get().add(lo), len),
                    nics: std::slice::from_raw_parts_mut(nics.get().add(lo), len),
                    sources: std::slice::from_raw_parts_mut(sources.get().add(lo), len),
                    buffered: std::slice::from_raw_parts_mut(buffered.get().add(lo), len),
                    forwarded: std::slice::from_raw_parts_mut(
                        forwarded.get().add(lo * PORTS),
                        len * PORTS,
                    ),
                    aux: &mut *shards.get().add(s),
                    tracker,
                    link,
                    params,
                    shard_of,
                }
            };
            ctx.run_cycle(now);
        });
    }

    /// The cycle barrier: merge cross-shard traffic (ascending global
    /// link index order), then apply deferred injection stamps and
    /// ejections in ascending node order — reproducing exactly the
    /// single-threaded event order.
    fn barrier(&mut self, now: u64, out: &mut Vec<Packet>) {
        let k = self.shards.len();
        if k > 1 {
            let hop_due = now + self.params.hop_latency;
            let credit_due = now + self.params.credit_delay;
            for shard in &mut self.shards {
                shard.wire_out.flip();
                shard.credit_out.flip();
            }
            for dst in 0..k {
                debug_assert!(self.wire_scratch.is_empty() && self.credit_scratch.is_empty());
                for src in 0..k {
                    if src != dst {
                        self.wire_scratch
                            .append(self.shards[src].wire_out.lane_mut(dst));
                        self.credit_scratch
                            .append(self.shards[src].credit_out.lane_mut(dst));
                    }
                }
                // At most one flit enters a given wire per cycle (each
                // wire has a single upstream producer), so link
                // indices are unique and this order is total. The same
                // holds for credits per (node, port, vc) — and credit
                // application is commutative besides.
                self.wire_scratch.sort_unstable_by_key(|&(widx, _)| widx);
                self.credit_scratch.sort_unstable();
                let shard = &mut self.shards[dst];
                for (widx, item) in self.wire_scratch.drain(..) {
                    shard.wires.push(widx, hop_due, item);
                }
                for c in self.credit_scratch.drain(..) {
                    shard.credits_in_flight.push(credit_due, c);
                }
            }
        }
        {
            // Injection stamps before ejections: a source-equals-
            // destination packet can inject and eject in one cycle.
            let Self {
                shards, tracker, ..
            } = self;
            for shard in shards.iter_mut() {
                for pref in shard.stamps.drain(..) {
                    tracker.packet_mut(pref).injected_at = Some(now);
                }
            }
        }
        for s in 0..k {
            for i in 0..self.shards[s].ejects.len() {
                let flit = self.shards[s].ejects[i];
                self.policy.on_eject_flit(&flit);
                let total = self.tracker.packet(flit.pref).len_flits;
                if let Some(packet) = self
                    .tracker
                    .on_piece(flit.dst.index(), flit.pref, total, now)
                {
                    self.policy.on_eject_packet(packet.id);
                    self.probe.on_delivered(&packet);
                    out.push(packet);
                }
            }
            self.shards[s].ejects.clear();
        }
    }

    /// Full-scan cross-check of every worklist invariant (debug
    /// builds only): the active sets must contain exactly the indices
    /// a naive scan would find work at, and all barrier buffers must
    /// be empty between cycles.
    #[cfg(debug_assertions)]
    fn debug_verify_worklists(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.wires.debug_verify();
            debug_assert!(shard.wire_out.is_clear(), "wire outbox not drained");
            debug_assert!(shard.credit_out.is_clear(), "credit outbox not drained");
            debug_assert!(shard.ejects.is_empty(), "ejects not applied");
            debug_assert!(shard.stamps.is_empty(), "stamps not applied");
            let range = self.ranges[s];
            for n in range.lo..range.hi {
                let nic = &self.nics[n];
                let active = nic.current.is_some() || !P::source_idle(&self.sources[n]);
                debug_assert_eq!(shard.nic_work.contains(n), active, "nic_work[{n}]");
                let router = &self.routers[n];
                let count: u32 = router.inputs.iter().map(|buf| buf.q.len() as u32).sum();
                debug_assert_eq!(self.buffered[n], count, "buffered[{n}]");
                debug_assert_eq!(shard.router_work.contains(n), count > 0, "router_work[{n}]");
                let mut routed = [0u32; PORTS];
                let mut va_req = [0u64; PORTS];
                let mut sa_ready = [0u64; PORTS];
                for (slot, buf) in router.inputs.iter().enumerate() {
                    if let Some(out) = buf.route {
                        routed[out] += 1;
                        if buf.out_vc.is_none() {
                            va_req[out] |= 1u64 << slot;
                        } else if !buf.q.is_empty() {
                            sa_ready[out] |= 1u64 << slot;
                        }
                    }
                }
                debug_assert_eq!(router.routed, routed, "routed[{n}]");
                debug_assert_eq!(router.va_req, va_req, "va_req[{n}]");
                debug_assert_eq!(router.sa_ready, sa_ready, "sa_ready[{n}]");
            }
        }
    }
}

impl<P: RouterPolicy, Pr: Probe> Network for VcFabric<P, Pr> {
    fn num_nodes(&self) -> usize {
        self.routers.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue(&mut self, packet: Packet) {
        let node = packet.src.index();
        self.probe.on_generated(&packet);
        {
            let Self {
                policy,
                tracker,
                sources,
                woken,
                ..
            } = self;
            let pref = tracker.admit(packet);
            policy.on_enqueue(
                node,
                pref,
                &mut PolicyCtx {
                    packets: tracker,
                    sources,
                    woken,
                },
            );
        }
        self.apply_woken();
    }

    fn step(&mut self, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        self.debug_verify_worklists();
        let delivered_before = out.len();
        let now = self.cycle;
        {
            let Self {
                policy,
                tracker,
                sources,
                woken,
                ..
            } = self;
            policy.pre_inject(
                now,
                &mut PolicyCtx {
                    packets: tracker,
                    sources,
                    woken,
                },
            );
        }
        self.apply_woken();
        if self.pool.is_some() {
            self.step_shards_parallel(now);
        } else {
            self.step_shards_serial(now);
        }
        self.barrier(now, out);
        self.probe.on_cycle(now);
        self.cycle = now + 1;
        debug_assert_delivered_once(out, delivered_before);
    }

    /// Jumps `cycles` forward in O(1) datapath work when the fabric is
    /// fully quiescent. Declines (returns 0) whenever *any* state
    /// still evolves under per-cycle stepping: packets in the slab,
    /// flits on wires, or credits in flight (credit returns trail the
    /// last delivery by up to `credit_delay` cycles — normal stepping
    /// covers that window, after which the fabric re-offers the jump).
    ///
    /// Everything a quiescent per-cycle run would still do is
    /// replicated exactly: the policy's per-cycle clock via
    /// [`RouterPolicy::fast_forward`], all-zero occupancy samples at
    /// every due telemetry window (same shard/router/slot emission
    /// order as `ShardCtx::sample_occupancy`), and the main probe's
    /// cycle count via [`Probe::tick_many`]. With telemetry disabled
    /// (`Pr::ENABLED == false`) the sample loop is statically removed
    /// and the jump is O(1).
    fn fast_forward(&mut self, cycles: u64) -> u64 {
        if cycles == 0 || !self.tracker.is_empty() {
            return 0;
        }
        for shard in &self.shards {
            if shard.wires.any_active() || !shard.credits_in_flight.is_empty() {
                return 0;
            }
        }
        #[cfg(debug_assertions)]
        for (s, shard) in self.shards.iter().enumerate() {
            debug_assert!(shard.nic_work.is_empty(), "quiescent NIC worklist");
            debug_assert!(shard.router_work.is_empty(), "quiescent router worklist");
            let range = self.ranges[s];
            for n in range.lo..range.hi {
                debug_assert!(self.nics[n].current.is_none(), "NIC streaming mid-jump");
                debug_assert!(P::source_idle(&self.sources[n]), "source queue not idle");
                debug_assert_eq!(self.buffered[n], 0, "buffered flits mid-jump");
                debug_assert!(
                    self.routers[n].inputs.iter().all(|buf| buf.q.is_empty()),
                    "VC buffer not empty mid-jump"
                );
            }
        }
        let now = self.cycle;
        self.policy.fast_forward(now, cycles);
        if Pr::ENABLED {
            let num_vcs = self.params.num_vcs;
            for c in now..now + cycles {
                for (s, shard) in self.shards.iter_mut().enumerate() {
                    if !shard.probe.sample_due(c) {
                        continue;
                    }
                    let range = self.ranges[s];
                    for node in range.lo..range.hi {
                        let base = node * PORTS;
                        for slot in 0..PORTS * num_vcs {
                            let port = slot / num_vcs;
                            shard.probe.on_occupancy(BufKind::Vc, base + port, 0);
                        }
                    }
                }
            }
        }
        self.probe.tick_many(now, cycles);
        self.cycle = now + cycles;
        cycles
    }

    fn in_flight(&self) -> usize {
        self.tracker.len()
    }
}
