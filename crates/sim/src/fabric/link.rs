//! Topology/routing wiring into the flat link index space.

use crate::flit::NodeId;
use crate::routing::{Direction, Routing};
use crate::topology::Topology;

use super::PORTS;

/// Resolves the `node × port` link index space of a topology plus a
/// routing function: output-port selection for a destination, and the
/// upstream/downstream neighbor of any port.
///
/// Every per-link array in the fabric (wires, schedulers, buffers,
/// counters) is indexed `node * PORTS + port`; `LinkMap` is the one
/// place that math and the neighbor resolution live. Works on any
/// [`Topology`] — mesh, torus, or ring.
#[derive(Debug, Clone, Copy)]
pub struct LinkMap {
    topo: Topology,
    routing: Routing,
}

impl LinkMap {
    /// Wires up `topo` with `routing`.
    #[must_use]
    pub fn new(topo: Topology, routing: Routing) -> Self {
        LinkMap { topo, routing }
    }

    /// The underlying topology.
    #[must_use]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Number of links (`nodes × ports`).
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.topo.num_nodes() * PORTS
    }

    /// Flat index of `(node, port)`.
    #[inline]
    #[must_use]
    pub fn idx(&self, node: usize, port: usize) -> usize {
        node * PORTS + port
    }

    /// Output port index taken at `node` for a packet headed to `dst`
    /// (the local port when `node == dst`).
    #[inline]
    #[must_use]
    pub fn route(&self, node: usize, dst: NodeId) -> usize {
        self.routing
            .next_hop(&self.topo, NodeId::new(node as u32), dst)
            .index()
    }

    /// The node reached through output port `out_port` of `node`, and
    /// the input port the traffic arrives on there.
    ///
    /// # Panics
    ///
    /// Panics when the port leads off the topology edge (a route never
    /// does) or when `out_port` is the local port.
    #[inline]
    #[must_use]
    pub fn downstream(&self, node: usize, out_port: usize) -> (usize, usize) {
        self.try_downstream(node, out_port)
            .expect("route leads to a neighbor")
    }

    /// [`LinkMap::downstream`], returning `None` at a topology edge.
    #[inline]
    #[must_use]
    pub fn try_downstream(&self, node: usize, out_port: usize) -> Option<(usize, usize)> {
        let dir = Direction::from_index(out_port);
        self.topo
            .neighbor(NodeId::new(node as u32), dir)
            .map(|next| (next.index(), dir.opposite().index()))
    }

    /// The node feeding input port `in_port` of `node`, and the output
    /// port it sends through (where its credits/virtual credits go).
    ///
    /// # Panics
    ///
    /// Panics when the port faces a topology edge (an occupied input
    /// port never does) or when `in_port` is the local port.
    #[inline]
    #[must_use]
    pub fn upstream(&self, node: usize, in_port: usize) -> (usize, usize) {
        let dir = Direction::from_index(in_port);
        let up = self
            .topo
            .neighbor(NodeId::new(node as u32), dir)
            .expect("input port implies a neighbor");
        (up.index(), dir.opposite().index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downstream_and_upstream_are_inverse() {
        let map = LinkMap::new(Topology::mesh(4, 4), Routing::XY);
        // Node 5's East output feeds node 6's West input.
        let east = Direction::East.index();
        let west = Direction::West.index();
        assert_eq!(map.downstream(5, east), (6, west));
        assert_eq!(map.upstream(6, west), (5, east));
    }

    #[test]
    fn edges_have_no_downstream_on_mesh_but_wrap_on_torus() {
        let mesh = LinkMap::new(Topology::mesh(4, 4), Routing::XY);
        let torus = LinkMap::new(Topology::torus(4, 4), Routing::XY);
        let west = Direction::West.index();
        assert_eq!(mesh.try_downstream(0, west), None);
        assert_eq!(
            torus.try_downstream(0, west),
            Some((3, Direction::East.index()))
        );
    }

    #[test]
    fn route_reaches_local_at_destination() {
        let map = LinkMap::new(Topology::mesh(4, 4), Routing::XY);
        assert_eq!(map.route(5, NodeId::new(5)), Direction::Local.index());
        assert_eq!(map.route(0, NodeId::new(3)), Direction::East.index());
    }

    #[test]
    fn link_indices_are_dense() {
        let map = LinkMap::new(Topology::ring(8), Routing::XY);
        assert_eq!(map.num_links(), 8 * PORTS);
        assert_eq!(map.idx(3, 2), 3 * PORTS + 2);
    }
}
