//! The look-ahead channel: per-output-port queues for reservation
//! (FRS-style) policies.
//!
//! A flit-reservation policy sends small look-ahead flits ahead of the
//! data to book departure slots at every link scheduler on the path. A
//! look-ahead flit whose flow cannot book (its window is exhausted)
//! must *not* block flits of other flows queued behind it — the
//! paper's look-ahead router gives each flow its own virtual channel.
//! [`LookaheadQueues`] models that literally: one FIFO subqueue per
//! flow, with each flow's *front* flit held inline in a per-port scan
//! order sorted by arrival stamp. A booking pass then touches each
//! *flow* exactly once and reads its candidate flit straight out of
//! the scan vector — no per-try hash lookups — so the scan cost tracks
//! the number of contending flows, not the number of queued flits. A
//! queue whose scan failed outright is marked *blocked* and skipped
//! until its scheduler changes or a new flit arrives.
//!
//! Entries are stamped with a global arrival sequence number; the scan
//! visits flows ordered by their front entry's stamp, which is exactly
//! the "try each distinct flow once, in queue order" discipline of a
//! single FIFO with fair bypass.

use std::collections::VecDeque;

use crate::worklist::ActiveSet;
use crate::FxHashMap;

/// The queued flits of one flow *behind* its front entry (which lives
/// in the scan order). Kept in the map after draining so the
/// `VecDeque` capacity is reused.
#[derive(Debug)]
struct Tail<T> {
    /// Entries behind the front, oldest first, with arrival stamps.
    q: VecDeque<(u64, T)>,
    /// Whether the flow currently has a front entry in the scan order.
    present: bool,
}

impl<T: Clone> Clone for Tail<T> {
    /// Capacity-preserving (see [`crate::checkpoint::clone_deque`]):
    /// drained tails deliberately keep their capacity for reuse, and
    /// forked runs must inherit it.
    fn clone(&self) -> Self {
        Tail {
            q: crate::checkpoint::clone_deque(&self.q),
            present: self.present,
        }
    }
}

impl<T: Clone> Clone for LaQueue<T> {
    /// Capacity-preserving (see [`crate::checkpoint::clone_vec`]).
    fn clone(&self) -> Self {
        LaQueue {
            order: crate::checkpoint::clone_vec(&self.order),
            rest: self.rest.clone(),
        }
    }
}

impl<T> Default for Tail<T> {
    fn default() -> Self {
        Tail {
            q: VecDeque::new(),
            present: false,
        }
    }
}

/// One output port's look-ahead queue: the scan order holding each
/// present flow's front flit inline, plus per-flow tail FIFOs.
#[derive(Debug)]
struct LaQueue<T> {
    /// `(front entry stamp, flow, front flit)` for every flow with
    /// entries, sorted ascending by stamp. New flows append (stamps
    /// are monotonic); a flow whose front was booked re-inserts its
    /// next entry at that entry's stamp.
    order: Vec<(u64, usize, T)>,
    /// Entries behind each flow's front.
    rest: FxHashMap<usize, Tail<T>>,
}

/// Per-output-port look-ahead queues with per-flow fair bypass.
///
/// `T` is the look-ahead flit type; the caller supplies the booking
/// attempt as a closure, so the queues know nothing about schedulers.
#[derive(Debug, Clone)]
pub struct LookaheadQueues<T> {
    queues: Vec<LaQueue<T>>,
    /// Live entry count per queue.
    live: Vec<u32>,
    /// Whether the queue already failed to book and nothing relevant
    /// has changed since.
    blocked: Vec<bool>,
    /// Queues with live entries.
    work: ActiveSet,
    /// Global arrival stamp counter.
    next_stamp: u64,
}

impl<T: Copy> LookaheadQueues<T> {
    /// Empty queues for `num_queues` output ports. (`num_flows` is
    /// unused but kept so constructors read naturally alongside the
    /// per-flow reservation tables.)
    #[must_use]
    pub fn new(num_queues: usize, num_flows: usize) -> Self {
        let _ = num_flows;
        LookaheadQueues {
            queues: (0..num_queues)
                .map(|_| LaQueue {
                    order: Vec::new(),
                    rest: FxHashMap::default(),
                })
                .collect(),
            live: vec![0; num_queues],
            blocked: vec![false; num_queues],
            work: ActiveSet::new(num_queues),
            next_stamp: 0,
        }
    }

    /// Appends a look-ahead flit of `flow` to queue `qidx`. Any new
    /// arrival may belong to a flow that can book where the stalled
    /// ones cannot, so the queue's blocked mark is cleared.
    pub fn push(&mut self, qidx: usize, flow: usize, item: T) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let q = &mut self.queues[qidx];
        let tail = q.rest.entry(flow).or_default();
        if tail.present {
            tail.q.push_back((stamp, item));
        } else {
            tail.present = true;
            // The new stamp is the largest yet: sorted order holds.
            q.order.push((stamp, flow, item));
        }
        self.live[qidx] += 1;
        self.work.insert(qidx);
        self.blocked[qidx] = false;
    }

    /// The smallest queue index `>= from` with live entries (the live
    /// ascending-scan building block, like
    /// [`ActiveSet::first_from`]).
    #[inline]
    #[must_use]
    pub fn first_from(&self, from: usize) -> Option<usize> {
        self.work.first_from(from)
    }

    /// Whether queue `qidx` is marked blocked (its last scan booked
    /// nothing and no arrival or external change cleared the mark).
    #[inline]
    #[must_use]
    pub fn is_blocked(&self, qidx: usize) -> bool {
        self.blocked[qidx]
    }

    /// Live entries in queue `qidx` (diagnostics only).
    #[must_use]
    pub fn raw_len(&self, qidx: usize) -> usize {
        self.live[qidx] as usize
    }

    /// One output-scheduling pass over queue `qidx`: tries each
    /// present flow's oldest flit once, in order of arrival stamp,
    /// until `try_book` succeeds.
    ///
    /// On success the entry is popped from its flow's subqueue and
    /// `(entry, booking)` is returned; the queue is unmarked blocked.
    /// On failure the queue is marked blocked and `None` is returned.
    pub fn book_first<R>(
        &mut self,
        qidx: usize,
        mut try_book: impl FnMut(&T) -> Option<R>,
    ) -> Option<(T, R)> {
        let q = &mut self.queues[qidx];
        let mut booked: Option<(usize, R)> = None;
        for (i, (_, _, item)) in q.order.iter().enumerate() {
            if let Some(r) = try_book(item) {
                booked = Some((i, r));
                break;
            }
        }
        let Some((i, r)) = booked else {
            self.blocked[qidx] = true;
            return None;
        };
        self.blocked[qidx] = false;
        let (_, flow, item) = q.order.remove(i);
        let tail = q.rest.get_mut(&flow).expect("present flow has a tail");
        if let Some((next_stamp, next_item)) = tail.q.pop_front() {
            // Re-insert the flow at its next entry's stamp.
            let pos = q.order.partition_point(|&(s, _, _)| s < next_stamp);
            q.order.insert(pos, (next_stamp, flow, next_item));
        } else {
            tail.present = false;
        }
        self.live[qidx] -= 1;
        if self.live[qidx] == 0 {
            self.work.remove(qidx);
        }
        Some((item, r))
    }

    /// Full-scan cross-check (debug builds): live counts, worklist
    /// membership, scan-order sortedness and presence agreement.
    /// Call under `#[cfg(debug_assertions)]`.
    pub fn debug_verify(&self) {
        for i in 0..self.queues.len() {
            let q = &self.queues[i];
            let fronts = q.order.len();
            let tails: usize = q.rest.values().map(|t| t.q.len()).sum();
            debug_assert_eq!(
                self.live[i] as usize,
                fronts + tails,
                "live miscounts queue {i}"
            );
            debug_assert_eq!(
                self.work.contains(i),
                fronts > 0,
                "look-ahead worklist out of sync at queue {i}"
            );
            debug_assert!(
                q.order.windows(2).all(|w| w[0].0 < w[1].0),
                "scan order unsorted in queue {i}"
            );
            debug_assert_eq!(
                fronts,
                q.rest.values().filter(|t| t.present).count(),
                "presence marks disagree with scan order in queue {i}"
            );
            for &(stamp, flow, _) in &q.order {
                let tail = &q.rest[&flow];
                debug_assert!(tail.present, "ordered flow {flow} unmarked in queue {i}");
                debug_assert!(
                    tail.q.front().is_none_or(|&(s, _)| s > stamp),
                    "tail older than front for flow {flow} in queue {i}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (flow, payload)
    type Flit = (usize, u32);

    #[test]
    fn books_front_when_possible() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(2, 4);
        q.push(0, 1, (1, 10));
        q.push(0, 2, (2, 20));
        let (item, slot) = q.book_first(0, |f| Some(f.1 * 2)).expect("front books");
        assert_eq!(item, (1, 10));
        assert_eq!(slot, 20);
        assert_eq!(q.raw_len(0), 1);
        q.debug_verify();
    }

    #[test]
    fn blocked_flow_is_bypassed_by_other_flows_only() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(1, 4);
        q.push(0, 1, (1, 10)); // flow 1: cannot book
        q.push(0, 1, (1, 11)); // flow 1 again: must not even be tried
        q.push(0, 2, (2, 20)); // flow 2: books
        let mut tried = Vec::new();
        let got = q.book_first(0, |f| {
            tried.push(*f);
            (f.0 == 2).then_some(())
        });
        assert_eq!(got, Some(((2, 20), ())));
        // Flow 1 was tried once with its oldest flit; its second flit
        // was never offered.
        assert_eq!(tried, vec![(1, 10), (2, 20)]);
        // Flow 1's order is preserved.
        assert_eq!(q.raw_len(0), 2);
        q.debug_verify();
    }

    #[test]
    fn booked_flow_rejoins_scan_at_next_entry_stamp() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(1, 4);
        q.push(0, 1, (1, 10)); // stamp 0
        q.push(0, 2, (2, 20)); // stamp 1
        q.push(0, 1, (1, 11)); // stamp 2
                               // Book flow 1's front; its next entry (stamp 2) must now scan
                               // AFTER flow 2 (stamp 1).
        let got = q.book_first(0, |f| (f.0 == 1).then_some(()));
        assert_eq!(got, Some(((1, 10), ())));
        let mut tried = Vec::new();
        let _ = q.book_first(0, |f| {
            tried.push(*f);
            None::<()>
        });
        assert_eq!(tried, vec![(2, 20), (1, 11)]);
        q.debug_verify();
    }

    #[test]
    fn total_failure_blocks_until_push() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(1, 2);
        q.push(0, 0, (0, 1));
        assert!(q.book_first(0, |_| None::<()>).is_none());
        assert!(q.is_blocked(0));
        q.push(0, 1, (1, 2));
        assert!(!q.is_blocked(0));
        q.debug_verify();
    }

    #[test]
    fn draining_empties_the_worklist() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(3, 2);
        q.push(2, 0, (0, 1));
        assert_eq!(q.first_from(0), Some(2));
        let _ = q.book_first(2, |_| Some(()));
        assert_eq!(q.first_from(0), None);
        assert_eq!(q.raw_len(2), 0);
        q.debug_verify();
    }
}
