//! The look-ahead channel: per-output-port queues for reservation
//! (FRS-style) policies.
//!
//! A flit-reservation policy sends small look-ahead flits ahead of the
//! data to book departure slots at every link scheduler on the path. A
//! look-ahead flit whose flow cannot book (its window is exhausted)
//! must *not* block flits of other flows queued behind it — the
//! paper's look-ahead router gives each flow its own virtual channel.
//! [`LookaheadQueues`] models that as one queue per output port with
//! per-flow fair bypass:
//!
//! * booking scans the queue front-to-back, trying each distinct flow
//!   once (an epoch-stamped failed set makes the skip O(1)),
//! * the booked entry is extracted mid-queue by tombstoning, so live
//!   entries never move relative to each other and per-flow FIFO
//!   order is preserved,
//! * a queue whose scan failed outright is marked *blocked* and is
//!   skipped until its scheduler changes or a new flit arrives.

use std::collections::VecDeque;

use crate::worklist::ActiveSet;

/// Per-output-port look-ahead queues with per-flow fair bypass.
///
/// `T` is the look-ahead flit type; the caller supplies the flow
/// index and the booking attempt as closures, so the queues know
/// nothing about schedulers.
#[derive(Debug, Clone)]
pub struct LookaheadQueues<T> {
    /// `None` entries are tombstones of mid-queue removals; the front
    /// entry is always live.
    queues: Vec<VecDeque<Option<T>>>,
    /// Live (non-tombstone) entry count per queue.
    live: Vec<u32>,
    /// Whether the queue front already failed to book and nothing
    /// relevant has changed since.
    blocked: Vec<bool>,
    /// Queues with live entries.
    work: ActiveSet,
    /// Per-flow epoch stamps: flow `f` failed in the current scan iff
    /// `failed_epoch[f] == scan_epoch` (an O(1) membership test
    /// instead of a list search).
    failed_epoch: Vec<u64>,
    scan_epoch: u64,
}

impl<T: Copy> LookaheadQueues<T> {
    /// Empty queues for `num_queues` output ports and `num_flows`
    /// flows.
    #[must_use]
    pub fn new(num_queues: usize, num_flows: usize) -> Self {
        LookaheadQueues {
            queues: (0..num_queues).map(|_| VecDeque::new()).collect(),
            live: vec![0; num_queues],
            blocked: vec![false; num_queues],
            work: ActiveSet::new(num_queues),
            failed_epoch: vec![0; num_flows],
            scan_epoch: 0,
        }
    }

    /// Appends a look-ahead flit to queue `qidx`. Any new arrival may
    /// belong to a flow that can book where the stalled ones cannot,
    /// so the queue's blocked mark is cleared.
    pub fn push(&mut self, qidx: usize, item: T) {
        self.queues[qidx].push_back(Some(item));
        self.live[qidx] += 1;
        self.work.insert(qidx);
        self.blocked[qidx] = false;
    }

    /// The smallest queue index `>= from` with live entries (the live
    /// ascending-scan building block, like
    /// [`ActiveSet::first_from`]).
    #[inline]
    #[must_use]
    pub fn first_from(&self, from: usize) -> Option<usize> {
        self.work.first_from(from)
    }

    /// Whether queue `qidx` is marked blocked (its last scan booked
    /// nothing and no arrival or external change cleared the mark).
    #[inline]
    #[must_use]
    pub fn is_blocked(&self, qidx: usize) -> bool {
        self.blocked[qidx]
    }

    /// Queue length *including tombstones* (diagnostics only).
    #[must_use]
    pub fn raw_len(&self, qidx: usize) -> usize {
        self.queues[qidx].len()
    }

    /// One output-scheduling pass over queue `qidx`: scans for the
    /// first entry whose flow can book, trying each distinct flow
    /// once. `flow_of` maps an entry to its flow index; `try_book`
    /// attempts the booking and returns its result on success.
    ///
    /// On success the entry is extracted (tombstone + dead-prefix
    /// drain) and `(entry, booking)` is returned; the queue is
    /// unmarked blocked. On failure the queue is marked blocked and
    /// `None` is returned.
    pub fn book_first<R>(
        &mut self,
        qidx: usize,
        flow_of: impl Fn(&T) -> usize,
        mut try_book: impl FnMut(&T) -> Option<R>,
    ) -> Option<(T, R)> {
        self.scan_epoch += 1;
        let epoch = self.scan_epoch;
        let mut booked: Option<(usize, R)> = None;
        for (i, entry) in self.queues[qidx].iter().enumerate() {
            let Some(item) = entry else {
                continue; // tombstone of an earlier mid-queue removal
            };
            let flow = flow_of(item);
            if self.failed_epoch[flow] == epoch {
                continue;
            }
            match try_book(item) {
                Some(r) => {
                    booked = Some((i, r));
                    break;
                }
                None => self.failed_epoch[flow] = epoch,
            }
        }
        let Some((i, r)) = booked else {
            self.blocked[qidx] = true;
            return None;
        };
        self.blocked[qidx] = false;
        // Mid-queue extraction without shifting: tombstone the slot,
        // then drain any dead prefix so the front entry stays live.
        let item = self.queues[qidx][i].take().expect("booked entry is live");
        while self.queues[qidx].front().is_some_and(Option::is_none) {
            self.queues[qidx].pop_front();
        }
        self.live[qidx] -= 1;
        if self.live[qidx] == 0 {
            debug_assert!(self.queues[qidx].is_empty());
            self.work.remove(qidx);
        }
        Some((item, r))
    }

    /// Full-scan cross-check (debug builds): live counts, worklist
    /// membership, and the live-front invariant. Call under
    /// `#[cfg(debug_assertions)]`.
    pub fn debug_verify(&self) {
        for i in 0..self.queues.len() {
            let live = self.queues[i].iter().filter(|e| e.is_some()).count();
            debug_assert_eq!(self.live[i] as usize, live, "live miscounts queue {i}");
            debug_assert_eq!(
                self.work.contains(i),
                live > 0,
                "look-ahead worklist out of sync at queue {i}"
            );
            debug_assert!(
                self.queues[i].front().is_none_or(Option::is_some),
                "dead prefix not drained in queue {i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (flow, payload)
    type Flit = (usize, u32);

    #[test]
    fn books_front_when_possible() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(2, 4);
        q.push(0, (1, 10));
        q.push(0, (2, 20));
        let (item, slot) = q
            .book_first(0, |f| f.0, |f| Some(f.1 * 2))
            .expect("front books");
        assert_eq!(item, (1, 10));
        assert_eq!(slot, 20);
        assert_eq!(q.raw_len(0), 1);
        q.debug_verify();
    }

    #[test]
    fn blocked_flow_is_bypassed_by_other_flows_only() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(1, 4);
        q.push(0, (1, 10)); // flow 1: cannot book
        q.push(0, (1, 11)); // flow 1 again: must not even be tried
        q.push(0, (2, 20)); // flow 2: books
        let mut tried = Vec::new();
        let got = q.book_first(
            0,
            |f| f.0,
            |f| {
                tried.push(*f);
                (f.0 == 2).then_some(())
            },
        );
        assert_eq!(got, Some(((2, 20), ())));
        // Flow 1 was tried once; its second flit was epoch-skipped.
        assert_eq!(tried, vec![(1, 10), (2, 20)]);
        // Mid-queue extraction preserves flow 1's order.
        assert_eq!(q.raw_len(0), 3); // two live + one tombstone
        q.debug_verify();
    }

    #[test]
    fn total_failure_blocks_until_push() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(1, 2);
        q.push(0, (0, 1));
        assert!(q.book_first(0, |f| f.0, |_| None::<()>).is_none());
        assert!(q.is_blocked(0));
        q.push(0, (1, 2));
        assert!(!q.is_blocked(0));
        q.debug_verify();
    }

    #[test]
    fn draining_empties_the_worklist() {
        let mut q: LookaheadQueues<Flit> = LookaheadQueues::new(3, 2);
        q.push(2, (0, 1));
        assert_eq!(q.first_from(0), Some(2));
        let _ = q.book_first(2, |f| f.0, |_| Some(()));
        assert_eq!(q.first_from(0), None);
        assert_eq!(q.raw_len(2), 0);
        q.debug_verify();
    }
}
