//! Active-set worklists for per-cycle simulator loops.
//!
//! A cycle-driven network spends most of its time scanning state that
//! is idle: at low load almost every (node, port) pair has nothing to
//! do, yet a naive simulator visits all of them every cycle. An
//! [`ActiveSet`] is a fixed-capacity bitset recording which indices
//! have pending work, so the hot loops visit only those.
//!
//! # Iteration contract
//!
//! Scans must stay **bit-identical** to the full `0..n` loop they
//! replace (the golden determinism tests pin this). [`ActiveSet`]
//! therefore iterates in ascending index order and reads the bit
//! words *live*: an index inserted ahead of the cursor during the
//! scan is visited in the same pass, one inserted behind it is not,
//! and one removed ahead of the cursor is skipped — exactly the
//! behaviour of a full scan that re-checks each index's "has work"
//! predicate at visit time.

/// A fixed-capacity bitset of active indices.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
    capacity: usize,
}

impl ActiveSet {
    /// An empty set over indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ActiveSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Marks `index` active. Idempotent.
    #[inline]
    pub fn insert(&mut self, index: usize) {
        debug_assert!(index < self.capacity);
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Marks `index` inactive. Idempotent.
    #[inline]
    pub fn remove(&mut self, index: usize) {
        debug_assert!(index < self.capacity);
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// Whether `index` is active.
    #[inline]
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(index < self.capacity);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// The smallest active index `>= from`, if any. The building
    /// block of the live ascending scan:
    ///
    /// ```
    /// # use noc_sim::worklist::ActiveSet;
    /// # let mut set = ActiveSet::new(8); set.insert(3);
    /// let mut cursor = 0;
    /// while let Some(i) = set.first_from(cursor) {
    ///     cursor = i + 1;
    ///     // work on i; insertions/removals at other indices are
    ///     // observed live by subsequent first_from calls
    /// }
    /// ```
    #[inline]
    #[must_use]
    pub fn first_from(&self, from: usize) -> Option<usize> {
        if from >= self.capacity {
            return None;
        }
        let mut w = from / 64;
        // Mask off bits below `from` in its word.
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Whether no index is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of active indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_visits_ascending() {
        let mut s = ActiveSet::new(200);
        for i in [0, 5, 63, 64, 65, 129, 199] {
            s.insert(i);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(i) = s.first_from(cursor) {
            seen.push(i);
            cursor = i + 1;
        }
        assert_eq!(seen, vec![0, 5, 63, 64, 65, 129, 199]);
    }

    #[test]
    fn remove_and_membership() {
        let mut s = ActiveSet::new(100);
        s.insert(42);
        assert!(s.contains(42));
        assert_eq!(s.len(), 1);
        s.remove(42);
        assert!(!s.contains(42));
        assert!(s.is_empty());
        assert_eq!(s.first_from(0), None);
    }

    #[test]
    fn live_insert_ahead_is_seen_behind_is_not() {
        let mut s = ActiveSet::new(128);
        s.insert(10);
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(i) = s.first_from(cursor) {
            cursor = i + 1;
            seen.push(i);
            if i == 10 {
                s.insert(5); // behind: must not be visited
                s.insert(90); // ahead: must be visited this pass
            }
        }
        assert_eq!(seen, vec![10, 90]);
    }

    #[test]
    fn live_remove_ahead_is_skipped() {
        let mut s = ActiveSet::new(128);
        for i in [3, 40, 100] {
            s.insert(i);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(i) = s.first_from(cursor) {
            cursor = i + 1;
            seen.push(i);
            if i == 3 {
                s.remove(40); // ahead of the cursor: must be skipped
            }
        }
        assert_eq!(seen, vec![3, 100]);
    }

    #[test]
    fn scan_matches_full_scan_on_dense_pattern() {
        // The bit-identical contract: an ActiveSet scan over any
        // static membership pattern equals the filtered 0..n loop.
        let n = 300;
        let mut s = ActiveSet::new(n);
        let member = |i: usize| i.is_multiple_of(3) || i % 7 == 1;
        for i in (0..n).filter(|&i| member(i)) {
            s.insert(i);
        }
        let mut scanned = Vec::new();
        let mut cursor = 0;
        while let Some(i) = s.first_from(cursor) {
            cursor = i + 1;
            scanned.push(i);
        }
        let full: Vec<usize> = (0..n).filter(|&i| member(i)).collect();
        assert_eq!(scanned, full);
        assert_eq!(s.len(), full.len());
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut s = ActiveSet::new(70);
        s.insert(69);
        s.insert(69);
        assert_eq!(s.len(), 1);
        s.remove(69);
        s.remove(69);
        assert!(s.is_empty());
        // Removing a never-inserted index is a no-op.
        s.remove(0);
        assert_eq!(s.first_from(0), None);
    }

    #[test]
    fn first_from_lands_on_word_boundaries() {
        // from == a multiple of 64 must not skip the word's bit 0,
        // and from just past an active bit must find the next word.
        let mut s = ActiveSet::new(256);
        s.insert(64);
        s.insert(191);
        assert_eq!(s.first_from(0), Some(64));
        assert_eq!(s.first_from(64), Some(64));
        assert_eq!(s.first_from(65), Some(191));
        assert_eq!(s.first_from(128), Some(191));
        assert_eq!(s.first_from(192), None);
    }

    #[test]
    fn capacity_edges() {
        let mut s = ActiveSet::new(64);
        s.insert(63);
        assert_eq!(s.first_from(63), Some(63));
        assert_eq!(s.first_from(64), None);
        let empty = ActiveSet::new(0);
        assert_eq!(empty.first_from(0), None);
        assert!(empty.is_empty());
    }
}
