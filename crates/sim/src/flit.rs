//! Packets, flits, and identifier newtypes.
//!
//! A *flow* (the paper's `flow_ij`) is the unidirectional traffic from
//! one node to another; a *packet* is a fixed-size unit of that flow
//! (4 flits in the paper's setup); a *flit* is the link-level transfer
//! unit. Networks in this workspace move flits; the simulation driver
//! and the statistics operate on packets.

use std::fmt;

/// Identifies a node (processing element + router) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its integer index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the integer index, usable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies a flow (a source–destination traffic stream with a QoS
/// reservation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id from its integer index.
    pub fn new(index: u32) -> Self {
        FlowId(index)
    }

    /// Returns the integer index, usable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for FlowId {
    fn from(v: u32) -> Self {
        FlowId(v)
    }
}

/// Globally unique packet identifier (flow id + per-flow sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow, starting at 0.
    pub seq: u64,
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.flow, self.seq)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries routing information in real hardware.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases resources in wormhole switching.
    Tail,
    /// A single-flit packet is simultaneously head and tail.
    HeadTail,
}

impl FlitKind {
    /// Kind of the flit at `pos` in a packet of `len` flits.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len` or `len == 0`.
    pub fn for_position(pos: u16, len: u16) -> FlitKind {
        assert!(len > 0 && pos < len, "flit position out of range");
        match (pos, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (p, l) if p + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }

    /// Whether this flit ends its packet.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// Whether this flit starts its packet.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }
}

/// A packet as seen by the simulation driver.
///
/// Networks are free to decompose packets into flits internally; the
/// timestamps here are what the statistics consume:
///
/// * `created_at` — cycle the traffic source generated the packet
///   (entry into the source queue),
/// * `injected_at` — cycle the first flit left the source queue into
///   the network proper,
/// * `ejected_at` — cycle the last flit was delivered to the
///   destination PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Identifier (flow + sequence).
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycle of generation (source-queue entry).
    pub created_at: u64,
    /// Cycle of network injection (source-queue exit), if it happened.
    pub injected_at: Option<u64>,
    /// Cycle of complete ejection at the destination, if it happened.
    pub ejected_at: Option<u64>,
}

impl Packet {
    /// Creates a fresh packet at generation time `created_at`.
    pub fn new(id: PacketId, src: NodeId, dst: NodeId, len_flits: u16, created_at: u64) -> Self {
        assert!(len_flits > 0, "packets must contain at least one flit");
        Packet {
            id,
            src,
            dst,
            len_flits,
            created_at,
            injected_at: None,
            ejected_at: None,
        }
    }

    /// Total latency (generation to full ejection), if delivered.
    ///
    /// This includes source-queue time, matching how the paper reports
    /// packet latency (GSF latencies of thousands of cycles in Case
    /// Study I can only arise with source-queue time included).
    pub fn total_latency(&self) -> Option<u64> {
        self.ejected_at.map(|e| e - self.created_at)
    }

    /// In-network latency (injection to full ejection), if delivered.
    pub fn network_latency(&self) -> Option<u64> {
        match (self.injected_at, self.ejected_at) {
            (Some(i), Some(e)) => Some(e - i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_flow_ids_display() {
        assert_eq!(NodeId::new(5).to_string(), "n5");
        assert_eq!(FlowId::new(7).to_string(), "f7");
        let pid = PacketId {
            flow: FlowId::new(2),
            seq: 9,
        };
        assert_eq!(pid.to_string(), "f2#9");
    }

    #[test]
    fn flit_kinds_cover_packet() {
        assert_eq!(FlitKind::for_position(0, 4), FlitKind::Head);
        assert_eq!(FlitKind::for_position(1, 4), FlitKind::Body);
        assert_eq!(FlitKind::for_position(2, 4), FlitKind::Body);
        assert_eq!(FlitKind::for_position(3, 4), FlitKind::Tail);
        assert_eq!(FlitKind::for_position(0, 1), FlitKind::HeadTail);
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flit_kind_bounds_checked() {
        let _ = FlitKind::for_position(4, 4);
    }

    #[test]
    fn packet_latencies() {
        let mut p = Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq: 0,
            },
            NodeId::new(0),
            NodeId::new(63),
            4,
            100,
        );
        assert_eq!(p.total_latency(), None);
        p.injected_at = Some(110);
        p.ejected_at = Some(150);
        assert_eq!(p.total_latency(), Some(50));
        assert_eq!(p.network_latency(), Some(40));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq: 0,
            },
            NodeId::new(0),
            NodeId::new(1),
            0,
            0,
        );
    }
}
