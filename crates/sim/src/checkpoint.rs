//! Checkpoint/fork: run warmup once, measure many times.
//!
//! A [`Checkpoint`] is a simulation frozen at its warmup/measurement
//! boundary with *everything* observable captured — the network (slab,
//! wires, credits, schedulers, worker-pool width), the traffic source
//! (per-flow RNG streams and their `ticked_until`/`pending` scan
//! caches), the statistics collector, and both engine clocks. Because
//! the engine loop is stop/resume-exact (see `EngineState::drive`),
//! resuming a checkpoint — or any number of [`Checkpoint::fork`]
//! clones of it — produces results bit-identical to a from-scratch
//! run with the same settings: same `SimReport`, same telemetry, same
//! `end_cycle`.
//!
//! That turns the expensive part of an experiment matrix — warmup —
//! into a shared prefix: one warmup per (network, topology, traffic,
//! load, seed) base point, then a cheap fork per measurement variant
//! (fast-forward on/off legs, horizon extensions for saturation
//! probing via [`Checkpoint::with_measure`], repeated timing
//! iterations). The golden-determinism and equivalence suites and the
//! sweep/perf harnesses in `loft-bench` are all built on this.
//!
//! # Why forks are bit-identical
//!
//! * Every piece of run state is owned data with a structural
//!   `Clone`: the packet slab, wire/credit FIFOs, worklists, policy
//!   state, RNGs, probes, and collectors contain no interior
//!   mutability and no references into shared state.
//! * The one exception, the [`WorkerPool`](crate::par::WorkerPool),
//!   holds *no* simulation state — its `Clone` spawns a fresh pool of
//!   the same width, and shard scheduling is outcome-invariant by the
//!   determinism contract of [`crate::par`].
//! * The engine loop checks the warmup boundary before doing any
//!   cycle work, so stopping at `cycle == warmup` and resuming later
//!   replays the exact instruction sequence of an uninterrupted run
//!   (the `after_warmup` hook fires on resume, at the same cycle).

use std::collections::VecDeque;

use crate::engine::{EngineState, Network, RunConfig, RunInfo, Simulation, TrafficSource};
use crate::stats::SimReport;

/// Clones a vector preserving its allocated *capacity*, not just its
/// contents.
///
/// `Vec::clone` allocates exactly `len` elements, so a derived clone
/// of a buffer that construction pre-sized (wire FIFOs, VC buffers,
/// slot stores) silently re-pays its growth allocations the next time
/// it fills — which for a forked simulation means the resumed
/// steady state allocates where a from-scratch run would not. Every
/// hand-written `Clone` on the hot buffer types uses this (or
/// [`clone_deque`]) so forks inherit the original's high-water
/// capacity and the `allocs_per_cycle` gate holds on forked runs.
#[must_use]
#[allow(clippy::ptr_arg)] // &Vec, not &[_]: the capacity is the point
pub fn clone_vec<T: Clone>(src: &Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(src.capacity());
    out.extend(src.iter().cloned());
    out
}

/// [`clone_vec`] for `VecDeque` buffers.
#[must_use]
pub fn clone_deque<T: Clone>(src: &VecDeque<T>) -> VecDeque<T> {
    let mut out = VecDeque::with_capacity(src.capacity());
    out.extend(src.iter().cloned());
    out
}

/// A simulation frozen at the warmup/measurement boundary.
///
/// Created by [`Simulation::run_to_checkpoint`]; resumed (consumed)
/// by [`Checkpoint::resume`]. [`Checkpoint::fork`] clones the whole
/// state so one warmup can feed many measurement runs.
#[derive(Debug)]
pub struct Checkpoint<N, T> {
    state: EngineState<N, T>,
}

impl<N: Clone, T: Clone> Clone for Checkpoint<N, T> {
    fn clone(&self) -> Self {
        Checkpoint {
            state: self.state.clone(),
        }
    }
}

impl<N: Network, T: TrafficSource> Checkpoint<N, T> {
    /// Runs `sim` to its warmup boundary and freezes it.
    pub(crate) fn capture(sim: Simulation<N, T>) -> Self {
        let mut state = sim.into_engine_state();
        let warmup = state.config.warmup;
        state.drive(warmup, &mut || {});
        debug_assert_eq!(state.cycle, warmup, "warmup stopped short");
        Checkpoint { state }
    }

    /// The cycle the checkpoint is frozen at (the configured warmup).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// The run configuration the resumed run will use.
    #[must_use]
    pub fn config(&self) -> RunConfig {
        self.state.config
    }

    /// A deep copy: an independent simulation in the identical state.
    /// Forking consumes no randomness and advances no clock — the
    /// original and every fork resume from exactly this cycle.
    #[must_use]
    pub fn fork(&self) -> Self
    where
        N: Clone,
        T: Clone,
    {
        self.clone()
    }

    /// Enables or disables quiescence fast-forward for the resumed
    /// run (bit-identical either way; see [`Simulation::run_full`]).
    /// Cycles already skipped during warmup remain counted in the
    /// final [`RunInfo`].
    #[must_use]
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.state.fast_forward = enabled;
        self
    }

    /// Retargets the measurement window to `measure` cycles — the
    /// horizon-extension knob for adaptive saturation probing: fork a
    /// warmed-up base point and re-measure over a doubled window
    /// without re-running the prefix.
    ///
    /// Sound because the checkpoint sits at the warmup boundary:
    /// nothing recorded so far depends on the window length (warmup
    /// events fall outside any window), so the resumed run is
    /// bit-identical to a from-scratch run configured with the new
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is past its warmup boundary (cannot
    /// happen for checkpoints from [`Simulation::run_to_checkpoint`]).
    #[must_use]
    pub fn with_measure(mut self, measure: u64) -> Self {
        assert!(
            self.state.cycle <= self.state.config.warmup,
            "measurement window can only be retargeted at the warmup boundary"
        );
        self.state.config.measure = measure;
        self.state.stats.set_measure(measure);
        self
    }

    /// Retargets the drain bound of the resumed run.
    #[must_use]
    pub fn with_drain(mut self, drain: u64) -> Self {
        self.state.config.drain = drain;
        self
    }

    /// Resumes the run to completion: measurement + drain, returning
    /// exactly what [`Simulation::run_full`] would for an
    /// uninterrupted run with the same settings.
    #[must_use]
    pub fn resume(self) -> (SimReport, N, RunInfo) {
        self.resume_hooked(|| {})
    }

    /// Like [`Checkpoint::resume`], invoking `after_warmup` once at
    /// the warmup/measurement boundary — i.e. immediately, at the
    /// checkpoint's own cycle, before the first measured cycle (the
    /// hook deliberately does *not* fire during capture, so it fires
    /// exactly once per resumed run, like in a straight-through run).
    pub fn resume_hooked(mut self, mut after_warmup: impl FnMut()) -> (SimReport, N, RunInfo) {
        self.state.drive(u64::MAX, &mut after_warmup);
        self.state.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, Packet, PacketId};

    /// A fixed 10-cycle pipeline network that supports quiescence
    /// jumps (clone of the engine test double, with `Clone`).
    #[derive(Debug, Default, Clone)]
    struct DelayLine {
        cycle: u64,
        queue: Vec<Packet>,
    }

    impl Network for DelayLine {
        fn num_nodes(&self) -> usize {
            2
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn enqueue(&mut self, mut packet: Packet) {
            packet.injected_at = Some(self.cycle);
            self.queue.push(packet);
        }
        fn step(&mut self, out: &mut Vec<Packet>) {
            self.cycle += 1;
            let cycle = self.cycle;
            let mut i = 0;
            while i < self.queue.len() {
                if cycle >= self.queue[i].created_at + 10 {
                    let mut p = self.queue.swap_remove(i);
                    p.ejected_at = Some(cycle);
                    out.push(p);
                } else {
                    i += 1;
                }
            }
        }
        fn in_flight(&self) -> usize {
            self.queue.len()
        }
        fn fast_forward(&mut self, cycles: u64) -> u64 {
            assert!(self.queue.is_empty(), "jumped a busy network");
            self.cycle += cycles;
            cycles
        }
    }

    /// One packet every `period` cycles on flow 0, with a closed-form
    /// next-active scan.
    #[derive(Debug, Clone)]
    struct Periodic {
        period: u64,
        seq: u64,
    }

    impl TrafficSource for Periodic {
        fn num_flows(&self) -> usize {
            1
        }
        fn generate(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            if cycle.is_multiple_of(self.period) {
                out.push(Packet::new(
                    PacketId {
                        flow: FlowId::new(0),
                        seq: self.seq,
                    },
                    NodeId::new(0),
                    NodeId::new(1),
                    4,
                    cycle,
                ));
                self.seq += 1;
            }
        }
        fn next_active_cycle(&mut self, from: u64, limit: u64) -> u64 {
            let next = from.div_ceil(self.period) * self.period;
            next.min(limit)
        }
    }

    fn sim(run: RunConfig, ff: bool) -> Simulation<DelayLine, Periodic> {
        Simulation::new(DelayLine::default(), Periodic { period: 20, seq: 0 }, run)
            .with_fast_forward(ff)
    }

    const RUN: RunConfig = RunConfig {
        warmup: 100,
        measure: 1_000,
        drain: 100,
    };

    #[test]
    fn checkpoint_sits_at_the_warmup_boundary() {
        let ckpt = sim(RUN, false).run_to_checkpoint();
        assert_eq!(ckpt.cycle(), RUN.warmup);
        assert_eq!(ckpt.config(), RUN);
    }

    #[test]
    fn resumed_run_matches_straight_run_exactly() {
        for ff in [false, true] {
            let straight = sim(RUN, ff).run_full(|| {});
            let resumed = sim(RUN, ff).run_to_checkpoint().resume();
            assert_eq!(straight.0, resumed.0, "report drifted (ff={ff})");
            assert_eq!(straight.2, resumed.2, "run info drifted (ff={ff})");
        }
    }

    #[test]
    fn forks_are_independent_and_identical() {
        let ckpt = sim(RUN, true).run_to_checkpoint();
        let a = ckpt.fork().resume();
        let b = ckpt.fork().resume();
        // The original is untouched by forking and still resumable.
        let c = ckpt.resume();
        assert_eq!(a.0, b.0);
        assert_eq!(a.0, c.0);
        assert_eq!(a.2, c.2);
    }

    #[test]
    fn resume_fires_the_warmup_hook_exactly_once() {
        let mut fired = 0;
        let ckpt = sim(RUN, false).run_to_checkpoint();
        let (report, _, _) = ckpt.resume_hooked(|| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(report.avg_latency(), 10.0);
    }

    #[test]
    fn with_measure_matches_from_scratch_extended_run() {
        let doubled = RunConfig {
            measure: RUN.measure * 2,
            ..RUN
        };
        let straight = sim(doubled, true).run_full(|| {});
        let extended = sim(RUN, true)
            .run_to_checkpoint()
            .with_measure(RUN.measure * 2)
            .resume();
        assert_eq!(straight.0, extended.0);
        assert_eq!(straight.2, extended.2);
    }

    #[test]
    fn with_fast_forward_leg_matches_stepped_run() {
        let ckpt = sim(RUN, true).run_to_checkpoint();
        let warm_skip = {
            // Warmup under ff accumulates skips before the fork.
            let (_, _, info) = ckpt.fork().resume();
            assert!(info.skipped_cycles > 0);
            info
        };
        let (report, _, info) = ckpt.with_fast_forward(false).resume();
        let (stepped, _, stepped_info) = sim(RUN, false).run_full(|| {});
        assert_eq!(report, stepped);
        assert_eq!(info.end_cycle, stepped_info.end_cycle);
        // The ff-off leg keeps only the warmup-phase skips; the ff-on
        // leg kept skipping through the measurement window.
        assert!(info.skipped_cycles < warm_skip.skipped_cycles);
    }

    #[test]
    fn zero_warmup_checkpoint_resumes_cleanly() {
        let run = RunConfig {
            warmup: 0,
            measure: 200,
            drain: 100,
        };
        let straight = sim(run, true).run_full(|| {});
        let resumed = sim(run, true).run_to_checkpoint().resume();
        assert_eq!(straight.0, resumed.0);
        assert_eq!(straight.2, resumed.2);
    }
}
