//! Generational slab storage for in-flight packets.
//!
//! Every network in this workspace keeps the packets currently inside
//! it — source queue to last ejected flit — in one [`PacketStore`] and
//! moves [`PacketRef`] handles through its datapath instead of
//! [`Packet`] structs. A handle is 8 bytes, `Copy`, and `Send`;
//! resolving one is a single array index instead of a hash lookup, and
//! a delivered packet's slot goes back on a free list, so the steady
//! state of a saturated network performs no heap allocation per cycle
//! for packet bookkeeping.
//!
//! Slots are *generational*: each carries a generation counter bumped
//! on every [`PacketStore::remove`], and handles embed the generation
//! they were issued under. Debug builds panic on any access through a
//! stale handle (a use-after-free of a recycled slot); release builds
//! skip the check — the datapaths hand every reference back exactly
//! once by construction, and the golden determinism pins would catch
//! any aliasing slip as a behaviour change.

use crate::flit::Packet;

/// A `Copy` handle to a packet owned by a [`PacketStore`].
///
/// Handles are only meaningful for the store that issued them, and
/// only until that packet is [`remove`](PacketStore::remove)d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

impl PacketRef {
    /// The slot index (diagnostics only; not stable across recycles).
    #[must_use]
    pub fn slot(self) -> usize {
        self.idx as usize
    }
}

#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    /// Ejected pieces (flits or quanta) seen so far — the per-packet
    /// reassembly counter the ejection path needs, stored here so it
    /// costs no extra map.
    pieces: u16,
    packet: Option<Packet>,
}

/// A generational slab owning every in-flight packet.
///
/// # Example
///
/// ```
/// use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
/// use noc_sim::slab::PacketStore;
///
/// let mut store = PacketStore::new();
/// let id = PacketId { flow: FlowId::new(0), seq: 0 };
/// let r = store.insert(Packet::new(id, NodeId::new(0), NodeId::new(1), 4, 0));
/// assert_eq!(store.get(r).id, id);
/// assert_eq!(store.len(), 1);
/// let p = store.remove(r);
/// assert_eq!(p.id, id);
/// assert!(store.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketStore {
    slots: Vec<Slot>,
    /// Indices of vacant slots, reused LIFO (hot slots stay hot).
    free: Vec<u32>,
    live: usize,
}

impl PacketStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// An empty store with room for `cap` packets before growing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        PacketStore {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Takes ownership of `packet`, returning its handle. Reuses a
    /// vacant slot when one exists; grows the slab otherwise.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.packet.is_none(), "free list holds a live slot");
            slot.pieces = 0;
            slot.packet = Some(packet);
            PacketRef { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                pieces: 0,
                packet: Some(packet),
            });
            PacketRef { idx, gen: 0 }
        }
    }

    #[inline]
    fn slot(&self, r: PacketRef) -> &Slot {
        let slot = &self.slots[r.idx as usize];
        debug_assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} was recycled (gen {} != {})",
            r.idx, slot.gen, r.gen
        );
        slot
    }

    #[inline]
    fn slot_mut(&mut self, r: PacketRef) -> &mut Slot {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} was recycled (gen {} != {})",
            r.idx, slot.gen, r.gen
        );
        slot
    }

    /// The packet behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant; debug builds also panic when `r`
    /// is stale (generation mismatch).
    #[inline]
    #[must_use]
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slot(r).packet.as_ref().expect("packet is in flight")
    }

    /// Mutable access to the packet behind `r` (timestamp stamping).
    ///
    /// # Panics
    ///
    /// Same conditions as [`PacketStore::get`].
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.slot_mut(r)
            .packet
            .as_mut()
            .expect("packet is in flight")
    }

    /// Removes and returns the packet, recycling its slot: the slot's
    /// generation is bumped (invalidating outstanding handles) and its
    /// index goes on the free list.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PacketStore::get`].
    pub fn remove(&mut self, r: PacketRef) -> Packet {
        let slot = self.slot_mut(r);
        let packet = slot.packet.take().expect("packet is in flight");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        packet
    }

    /// Increments the per-packet ejected-piece counter and returns the
    /// new count (see [`crate::fabric::EjectTracker`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`PacketStore::get`].
    #[inline]
    pub fn bump_pieces(&mut self, r: PacketRef) -> u16 {
        let slot = self.slot_mut(r);
        debug_assert!(slot.packet.is_some(), "counting pieces of a vacant slot");
        slot.pieces += 1;
        slot.pieces
    }

    /// Number of packets currently stored. O(1): a maintained counter,
    /// never a scan — [`crate::engine::Network::in_flight`] calls this
    /// every cycle of every drain loop.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packet is stored.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free); the slab's
    /// high-water mark.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, NodeId, PacketId};

    fn packet(seq: u64) -> Packet {
        Packet::new(
            PacketId {
                flow: FlowId::new(0),
                seq,
            },
            NodeId::new(0),
            NodeId::new(1),
            4,
            0,
        )
    }

    #[test]
    fn slots_are_recycled() {
        let mut s = PacketStore::new();
        let a = s.insert(packet(0));
        let b = s.insert(packet(1));
        assert_eq!(s.capacity(), 2);
        let out = s.remove(a);
        assert_eq!(out.id.seq, 0);
        // The freed slot is reused: no new slot is allocated.
        let c = s.insert(packet(2));
        assert_eq!(s.capacity(), 2);
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c, a, "recycled handle must differ in generation");
        assert_eq!(s.get(b).id.seq, 1);
        assert_eq!(s.get(c).id.seq, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pieces_reset_on_recycle() {
        let mut s = PacketStore::new();
        let a = s.insert(packet(0));
        assert_eq!(s.bump_pieces(a), 1);
        assert_eq!(s.bump_pieces(a), 2);
        s.remove(a);
        let b = s.insert(packet(1));
        assert_eq!(b.slot(), a.slot());
        assert_eq!(s.bump_pieces(b), 1, "piece counter must reset");
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = PacketStore::with_capacity(2);
        let refs: Vec<PacketRef> = (0..100).map(|i| s.insert(packet(i))).collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.capacity(), 100);
        for (i, &r) in refs.iter().enumerate() {
            assert_eq!(s.get(r).id.seq, i as u64);
        }
        // Drain everything and refill: the slab must not grow again.
        for &r in &refs {
            s.remove(r);
        }
        assert!(s.is_empty());
        for i in 0..100 {
            s.insert(packet(i));
        }
        assert_eq!(
            s.capacity(),
            100,
            "steady-state churn must not grow the slab"
        );
    }

    #[test]
    fn timestamps_are_mutable_in_place() {
        let mut s = PacketStore::new();
        let r = s.insert(packet(0));
        s.get_mut(r).injected_at = Some(7);
        assert_eq!(s.get(r).injected_at, Some(7));
        assert_eq!(s.remove(r).injected_at, Some(7));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_panics_in_debug() {
        let mut s = PacketStore::new();
        let a = s.insert(packet(0));
        s.remove(a);
        let _ = s.insert(packet(1)); // recycles the slot
        let _ = s.get(a); // generation mismatch
    }

    // In debug builds the generation check fires first (covered
    // above); this covers the release-mode vacancy backstop.
    #[cfg(not(debug_assertions))]
    #[test]
    #[should_panic(expected = "packet is in flight")]
    fn vacant_slot_panics() {
        let mut s = PacketStore::new();
        let a = s.insert(packet(0));
        s.remove(a);
        let _ = s.get(a);
    }
}
