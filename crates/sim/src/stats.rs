//! Latency and throughput statistics with warmup handling.
//!
//! The paper reports, per experiment: average packet latency versus
//! offered load, accepted throughput in flits/cycle/node, per-flow
//! throughput, and per-group MAX/MIN/AVG/STDEV of flow throughputs
//! (Figure 10). [`StatsCollector`] gathers those during the
//! measurement window of a run and produces a [`SimReport`].

use crate::flit::{FlowId, Packet};
use crate::telemetry::PacketProbe;

/// Streaming mean/variance/min/max (Welford's algorithm).
///
/// # Example
///
/// ```
/// use noc_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or −∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (stddev / mean), or 0 if mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean()
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `k` counts samples in `[2^k, 2^(k+1))`; bucket 0 counts `0`
/// and `1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Adds every bucket of `other` into this histogram, as if the
    /// two sample streams had been recorded into one. Used by the
    /// telemetry layer to merge per-shard histograms at the barrier.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper bound of the smallest bucket such that at least
    /// `q` (0..=1) of the samples fall at or below it. Returns 0 for
    /// an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (2u64 << k).saturating_sub(1);
            }
        }
        u64::MAX
    }

    /// Iterates over `(bucket_upper_bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| ((2u64 << k) - 1, c))
    }
}

/// Per-flow measurement results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowReport {
    /// Packets fully delivered during the measurement window.
    pub packets_delivered: u64,
    /// Flits delivered during the measurement window.
    pub flits_delivered: u64,
    /// Packets generated during the measurement window.
    pub packets_offered: u64,
    /// Total latency stats (generation → ejection), cycles.
    pub total_latency: RunningStats,
    /// Network latency stats (injection → ejection), cycles.
    pub network_latency: RunningStats,
    /// Accepted throughput, flits/cycle, over the measurement window.
    pub throughput: f64,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Measurement window length in cycles.
    pub measured_cycles: u64,
    /// Number of nodes in the network (for per-node normalization).
    pub num_nodes: usize,
    /// Per-flow reports, indexed by flow id.
    pub flows: Vec<FlowReport>,
    /// Total latency over all flows.
    pub total_latency: RunningStats,
    /// Network latency over all flows.
    pub network_latency: RunningStats,
    /// Latency histogram (total latency).
    pub latency_histogram: Histogram,
    /// All flits delivered in the window, network-wide.
    pub flits_delivered: u64,
}

impl SimReport {
    /// Network-wide accepted throughput in flits/cycle/node.
    pub fn throughput_per_node(&self) -> f64 {
        if self.measured_cycles == 0 || self.num_nodes == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / self.measured_cycles as f64 / self.num_nodes as f64
    }

    /// Network-wide accepted throughput in flits/cycle.
    pub fn throughput_total(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / self.measured_cycles as f64
    }

    /// Mean total packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.total_latency.mean()
    }

    /// Accepted throughput of one flow in flits/cycle.
    pub fn flow_throughput(&self, flow: FlowId) -> f64 {
        self.flows[flow.index()].throughput
    }

    /// MAX/MIN/AVG/STDEV of throughput over a group of flows, the
    /// format of the paper's Figure 10 tables.
    pub fn group_throughput(&self, group: &[FlowId]) -> RunningStats {
        let mut s = RunningStats::new();
        for &f in group {
            s.push(self.flows[f.index()].throughput);
        }
        s
    }
}

/// Collects packet completions during a run.
///
/// Only packets *created* within the measurement window count towards
/// latency; only flits *delivered* within the window count towards
/// throughput. This is the standard NoC methodology and matches the
/// paper ("we run each simulation until a stable network state is
/// reached").
#[derive(Debug, Clone)]
pub struct StatsCollector {
    warmup: u64,
    measure: u64,
    num_nodes: usize,
    flows: Vec<FlowReport>,
    total_latency: RunningStats,
    network_latency: RunningStats,
    histogram: Histogram,
    flits_delivered: u64,
}

impl StatsCollector {
    /// Creates a collector for `num_flows` flows; the measurement
    /// window is `[warmup, warmup + measure)`.
    pub fn new(num_flows: usize, num_nodes: usize, warmup: u64, measure: u64) -> Self {
        StatsCollector {
            warmup,
            measure,
            num_nodes,
            flows: vec![FlowReport::default(); num_flows],
            total_latency: RunningStats::new(),
            network_latency: RunningStats::new(),
            histogram: Histogram::new(),
            flits_delivered: 0,
        }
    }

    fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.warmup && cycle < self.warmup + self.measure
    }

    /// Replaces the measurement-window length. Sound only while no
    /// window-dependent state has accumulated — i.e. before the first
    /// measured cycle: nothing recorded during warmup depends on
    /// `measure` (events strictly before `warmup` fall outside any
    /// window), so retargeting the window at the warmup boundary is
    /// exactly equivalent to having constructed the collector with
    /// the new value. `noc_sim::checkpoint` relies on this to extend
    /// the horizon of a forked run.
    pub(crate) fn set_measure(&mut self, measure: u64) {
        self.measure = measure;
    }
}

/// The collector is an ordinary consumer of the packet-event
/// interface: the simulation driver feeds it the same
/// [`PacketProbe`] events that a telemetry probe receives, so
/// [`SimReport`] and [`crate::telemetry::TelemetryReport`] are two
/// views of one event stream rather than parallel code paths.
impl PacketProbe for StatsCollector {
    /// Notes a packet generated by the traffic source.
    fn on_generated(&mut self, packet: &Packet) {
        if self.in_window(packet.created_at) {
            self.flows[packet.id.flow.index()].packets_offered += 1;
        }
    }

    /// Notes a fully delivered packet.
    fn on_delivered(&mut self, packet: &Packet) {
        let ejected = packet
            .ejected_at
            .expect("delivered packet must have an ejection time");
        let ejected_in_window = self.in_window(ejected);
        let created_in_window = self.in_window(packet.created_at);
        let flow = &mut self.flows[packet.id.flow.index()];
        if ejected_in_window {
            flow.flits_delivered += packet.len_flits as u64;
            flow.packets_delivered += 1;
            self.flits_delivered += packet.len_flits as u64;
        }
        if created_in_window {
            let lat = packet
                .total_latency()
                .expect("delivered packet has latency");
            flow.total_latency.push(lat as f64);
            self.total_latency.push(lat as f64);
            self.histogram.record(lat);
            if let Some(nl) = packet.network_latency() {
                flow.network_latency.push(nl as f64);
                self.network_latency.push(nl as f64);
            }
        }
    }
}

impl StatsCollector {
    /// Finalizes into a report.
    pub fn finish(mut self) -> SimReport {
        for f in &mut self.flows {
            f.throughput = if self.measure == 0 {
                0.0
            } else {
                f.flits_delivered as f64 / self.measure as f64
            };
        }
        SimReport {
            measured_cycles: self.measure,
            num_nodes: self.num_nodes,
            flows: self.flows,
            total_latency: self.total_latency,
            network_latency: self.network_latency,
            latency_histogram: self.histogram,
            flits_delivered: self.flits_delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{NodeId, PacketId};

    fn packet(flow: u32, created: u64, injected: u64, ejected: u64) -> Packet {
        let mut p = Packet::new(
            PacketId {
                flow: FlowId::new(flow),
                seq: 0,
            },
            NodeId::new(0),
            NodeId::new(1),
            4,
            created,
        );
        p.injected_at = Some(injected);
        p.ejected_at = Some(ejected);
        p
    }

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 5);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets[0], (1, 2)); // 0 and 1
        assert_eq!(buckets[1], (3, 2)); // 2 and 3
        assert_eq!(buckets[2], (1023, 1)); // 1000
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 0..100u64 {
            h.record(i);
        }
        assert!(h.quantile_upper_bound(0.5) <= 63);
        assert!(h.quantile_upper_bound(1.0) >= 99);
        assert_eq!(Histogram::new().quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn collector_honors_measurement_window() {
        let mut c = StatsCollector::new(1, 64, 100, 100);
        // Created before warmup: no latency sample; delivered inside
        // window: counts for throughput.
        let p1 = packet(0, 50, 60, 120);
        c.on_generated(&p1);
        c.on_delivered(&p1);
        // Fully inside window.
        let p2 = packet(0, 110, 112, 150);
        c.on_generated(&p2);
        c.on_delivered(&p2);
        // Delivered after window: latency still counts (created inside),
        // throughput does not.
        let p3 = packet(0, 150, 152, 300);
        c.on_generated(&p3);
        c.on_delivered(&p3);
        let r = c.finish();
        assert_eq!(r.flows[0].packets_offered, 2);
        assert_eq!(r.flows[0].flits_delivered, 8); // p1 + p2
        assert_eq!(r.total_latency.count(), 2); // p2 + p3
        assert!((r.flows[0].throughput - 0.08).abs() < 1e-12);
        assert!((r.throughput_per_node() - 8.0 / 100.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn group_throughput_stats() {
        let mut c = StatsCollector::new(3, 64, 0, 100);
        for f in 0..3u32 {
            for s in 0..(f + 1) as u64 {
                let mut p = packet(f, 10, 11, 20 + s);
                p.id.seq = s;
                c.on_delivered(&p);
            }
        }
        let r = c.finish();
        let g = r.group_throughput(&[FlowId::new(0), FlowId::new(1), FlowId::new(2)]);
        assert_eq!(g.count(), 3);
        assert!((g.min() - 0.04).abs() < 1e-12); // 1 packet * 4 flits / 100
        assert!((g.max() - 0.12).abs() < 1e-12);
    }
}
