//! Network topologies with a fixed five-port router model.
//!
//! All networks in this workspace use routers with at most five ports:
//! the four cardinal directions plus a local (processing-element) port.
//! Meshes, tori, and rings all fit this model; a ring is treated as a
//! `n × 1` arrangement using only East/West links.
//!
//! Coordinates follow the paper's convention: node `id = x + y * width`
//! for an `8 × 8` mesh, so node 0 is the north-west corner and node 63
//! the south-east one (y grows "south").

use crate::flit::NodeId;
use crate::routing::Direction;

/// A regular NoC topology.
///
/// # Example
///
/// ```
/// use noc_sim::topology::Topology;
/// use noc_sim::routing::Direction;
///
/// let mesh = Topology::mesh(8, 8);
/// assert_eq!(mesh.num_nodes(), 64);
/// let origin = mesh.node(0, 0);
/// assert_eq!(mesh.neighbor(origin, Direction::West), None);
/// assert_eq!(mesh.neighbor(origin, Direction::East), Some(mesh.node(1, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A 2-D mesh of `width × height` nodes without wrap-around links.
    Mesh {
        /// Number of columns (x extent).
        width: u16,
        /// Number of rows (y extent).
        height: u16,
    },
    /// A 2-D torus of `width × height` nodes with wrap-around links.
    Torus {
        /// Number of columns (x extent).
        width: u16,
        /// Number of rows (y extent).
        height: u16,
    },
    /// A 1-D bidirectional ring of `n` nodes (East/West links only).
    Ring {
        /// Number of nodes on the ring.
        n: u16,
    },
}

impl Topology {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Topology::Mesh { width, height }
    }

    /// Creates a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn torus(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        Topology::Torus { width, height }
    }

    /// Creates a ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ring(n: u16) -> Self {
        assert!(n > 0, "ring must have at least one node");
        Topology::Ring { n }
    }

    /// Returns the x extent (columns).
    pub fn width(&self) -> u16 {
        match *self {
            Topology::Mesh { width, .. } | Topology::Torus { width, .. } => width,
            Topology::Ring { n } => n,
        }
    }

    /// Returns the y extent (rows).
    pub fn height(&self) -> u16 {
        match *self {
            Topology::Mesh { height, .. } | Topology::Torus { height, .. } => height,
            Topology::Ring { .. } => 1,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// Returns the node at coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node(&self, x: u16, y: u16) -> NodeId {
        assert!(
            x < self.width() && y < self.height(),
            "coordinate out of range"
        );
        NodeId::new(x as u32 + y as u32 * self.width() as u32)
    }

    /// Returns the `(x, y)` coordinates of `node`.
    pub fn coords(&self, node: NodeId) -> (u16, u16) {
        let w = self.width() as u32;
        let id = node.index() as u32;
        ((id % w) as u16, (id / w) as u16)
    }

    /// Returns the neighbor of `node` in direction `dir`, or `None` if
    /// there is no link that way (mesh edge, or N/S on a ring).
    ///
    /// `Direction::Local` always returns `None`: the local port leads
    /// to the processing element, not to another router.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        let w = self.width();
        let h = self.height();
        let wrap = matches!(self, Topology::Torus { .. });
        let (nx, ny) = match dir {
            Direction::Local => return None,
            Direction::East => {
                if x + 1 < w {
                    (x + 1, y)
                } else if wrap && w > 1 {
                    (0, y)
                } else {
                    return None;
                }
            }
            Direction::West => {
                if x > 0 {
                    (x - 1, y)
                } else if wrap && w > 1 {
                    (w - 1, y)
                } else {
                    return None;
                }
            }
            Direction::South => {
                if y + 1 < h {
                    (x, y + 1)
                } else if wrap && h > 1 {
                    (x, 0)
                } else {
                    return None;
                }
            }
            Direction::North => {
                if y > 0 {
                    (x, y - 1)
                } else if wrap && h > 1 {
                    (x, h - 1)
                } else {
                    return None;
                }
            }
        };
        Some(self.node(nx, ny))
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId::new)
    }

    /// Minimal hop distance between two nodes (router-to-router hops).
    ///
    /// For the mesh this is the Manhattan distance; tori take wrap
    /// links into account.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = (ax as i32 - bx as i32).unsigned_abs();
        let dy = (ay as i32 - by as i32).unsigned_abs();
        match *self {
            Topology::Mesh { .. } | Topology::Ring { .. } => dx + dy,
            Topology::Torus { width, height } => {
                dx.min(width as u32 - dx) + dy.min(height as u32 - dy)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_ids_follow_paper_numbering() {
        // The paper numbers nodes (x + y*8) on the 8x8 mesh.
        let m = Topology::mesh(8, 8);
        assert_eq!(m.node(0, 0).index(), 0);
        assert_eq!(m.node(7, 0).index(), 7);
        assert_eq!(m.node(0, 1).index(), 8);
        assert_eq!(m.node(7, 7).index(), 63);
        assert_eq!(m.coords(NodeId::new(63)), (7, 7));
    }

    #[test]
    fn mesh_edges_have_no_neighbors() {
        let m = Topology::mesh(4, 4);
        let nw = m.node(0, 0);
        assert_eq!(m.neighbor(nw, Direction::North), None);
        assert_eq!(m.neighbor(nw, Direction::West), None);
        assert_eq!(m.neighbor(nw, Direction::East), Some(m.node(1, 0)));
        assert_eq!(m.neighbor(nw, Direction::South), Some(m.node(0, 1)));
        let se = m.node(3, 3);
        assert_eq!(m.neighbor(se, Direction::South), None);
        assert_eq!(m.neighbor(se, Direction::East), None);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::torus(4, 4);
        assert_eq!(
            t.neighbor(t.node(0, 0), Direction::West),
            Some(t.node(3, 0))
        );
        assert_eq!(
            t.neighbor(t.node(0, 0), Direction::North),
            Some(t.node(0, 3))
        );
        assert_eq!(
            t.neighbor(t.node(3, 3), Direction::East),
            Some(t.node(0, 3))
        );
        assert_eq!(
            t.neighbor(t.node(3, 3), Direction::South),
            Some(t.node(3, 0))
        );
    }

    #[test]
    fn ring_is_one_dimensional() {
        let r = Topology::ring(5);
        assert_eq!(r.num_nodes(), 5);
        assert_eq!(r.height(), 1);
        assert_eq!(r.neighbor(r.node(2, 0), Direction::North), None);
        assert_eq!(r.neighbor(r.node(2, 0), Direction::South), None);
        assert_eq!(
            r.neighbor(r.node(2, 0), Direction::East),
            Some(r.node(3, 0))
        );
        // A plain ring (non-torus) has mesh-like edges.
        assert_eq!(r.neighbor(r.node(4, 0), Direction::East), None);
    }

    #[test]
    fn local_port_has_no_neighbor() {
        let m = Topology::mesh(2, 2);
        for n in m.nodes() {
            assert_eq!(m.neighbor(n, Direction::Local), None);
        }
    }

    #[test]
    fn hop_distance_mesh_is_manhattan() {
        let m = Topology::mesh(8, 8);
        assert_eq!(m.hop_distance(m.node(0, 0), m.node(7, 7)), 14);
        assert_eq!(m.hop_distance(m.node(3, 4), m.node(3, 4)), 0);
        assert_eq!(m.hop_distance(m.node(1, 1), m.node(2, 5)), 5);
    }

    #[test]
    fn hop_distance_torus_uses_wrap() {
        let t = Topology::torus(8, 8);
        assert_eq!(t.hop_distance(t.node(0, 0), t.node(7, 7)), 2);
        assert_eq!(t.hop_distance(t.node(0, 0), t.node(4, 4)), 8);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Topology::mesh(5, 3);
        for n in m.nodes() {
            for dir in Direction::CARDINALS {
                if let Some(peer) = m.neighbor(n, dir) {
                    assert_eq!(m.neighbor(peer, dir.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mesh dimensions must be positive")]
    fn zero_mesh_panics() {
        let _ = Topology::mesh(0, 3);
    }
}
