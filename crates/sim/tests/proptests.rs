//! Property-based tests for the simulation substrate.

use noc_sim::flit::NodeId;
use noc_sim::flow::FlowSet;
use noc_sim::rng::Xoshiro256;
use noc_sim::routing::{Direction, Routing};
use noc_sim::stats::RunningStats;
use noc_sim::topology::Topology;
use proptest::prelude::*;

proptest! {
    /// Routing always terminates at the destination with exactly the
    /// Manhattan number of hops, for both dimension orders.
    #[test]
    fn routing_reaches_destination(
        w in 1u16..10,
        h in 1u16..10,
        a in 0u32..100,
        b in 0u32..100,
        yx in any::<bool>(),
    ) {
        let topo = Topology::mesh(w, h);
        let n = topo.num_nodes() as u32;
        let (src, dst) = (NodeId::new(a % n), NodeId::new(b % n));
        let routing = if yx { Routing::YX } else { Routing::XY };
        let path = routing.path(&topo, src, dst);
        prop_assert_eq!(*path.first().unwrap(), src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert_eq!(path.len() as u32 - 1, topo.hop_distance(src, dst));
    }

    /// Torus routing also terminates and never exceeds the mesh path.
    #[test]
    fn torus_routing_never_longer_than_mesh(
        w in 2u16..9,
        h in 2u16..9,
        a in 0u32..81,
        b in 0u32..81,
    ) {
        let torus = Topology::torus(w, h);
        let mesh = Topology::mesh(w, h);
        let n = torus.num_nodes() as u32;
        let (src, dst) = (NodeId::new(a % n), NodeId::new(b % n));
        let tp = Routing::XY.path(&torus, src, dst);
        let mp = Routing::XY.path(&mesh, src, dst);
        prop_assert!(tp.len() <= mp.len());
        prop_assert_eq!(*tp.last().unwrap(), dst);
    }

    /// Neighbor relations are symmetric on every topology.
    #[test]
    fn neighbors_symmetric(w in 1u16..9, h in 1u16..9, torus in any::<bool>()) {
        let topo = if torus { Topology::torus(w, h) } else { Topology::mesh(w, h) };
        for node in topo.nodes() {
            for dir in Direction::CARDINALS {
                if let Some(peer) = topo.neighbor(node, dir) {
                    prop_assert_eq!(topo.neighbor(peer, dir.opposite()), Some(node));
                }
            }
        }
    }

    /// Reservation assignment never oversubscribes any link and every
    /// flow gets a positive share.
    #[test]
    fn reservations_feasible(
        pairs in prop::collection::vec((0u32..64, 0u32..64, 1u32..20), 1..20),
        capacity in 64u32..4096,
    ) {
        let topo = Topology::mesh(8, 8);
        let mut fs = FlowSet::new(topo, Routing::XY);
        let mut any = false;
        for (a, b, w) in pairs {
            if a != b {
                fs.add(NodeId::new(a), NodeId::new(b), w as f64);
                any = true;
            }
        }
        prop_assume!(any);
        match fs.assign_reservations(capacity) {
            Ok(r) => {
                prop_assert!(r.iter().all(|&x| x > 0));
                fs.check_reservations(&r, capacity).unwrap();
            }
            Err(e) => {
                // Only legitimate failure: a weight too small for the
                // frame granularity.
                prop_assert!(e.message().contains("zero"), "{}", e);
            }
        }
    }

    /// RunningStats matches a direct two-pass computation.
    #[test]
    fn running_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging stats in any split matches computing them whole.
    #[test]
    fn running_stats_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let cut = split % xs.len();
        let mut whole = RunningStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..cut] { a.push(x); }
        for &x in &xs[cut..] { b.push(x); }
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(a.count(), whole.count());
    }

    /// next_below stays in range for arbitrary bounds.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}
