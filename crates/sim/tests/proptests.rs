//! Randomized invariant tests for the simulation substrate.
//!
//! These were originally `proptest` properties; they now draw their
//! cases from the workspace's own deterministic [`Xoshiro256`] so the
//! test suite has no external dependencies and every failure is
//! reproducible from the fixed seed.

use noc_sim::flit::NodeId;
use noc_sim::flow::FlowSet;
use noc_sim::rng::Xoshiro256;
use noc_sim::routing::{Direction, Routing};
use noc_sim::stats::RunningStats;
use noc_sim::topology::Topology;

/// Routing always terminates at the destination with exactly the
/// Manhattan number of hops, for both dimension orders.
#[test]
fn routing_reaches_destination() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0001);
    for _ in 0..256 {
        let w = 1 + rng.next_below(9) as u16;
        let h = 1 + rng.next_below(9) as u16;
        let topo = Topology::mesh(w, h);
        let n = topo.num_nodes() as u64;
        let src = NodeId::new(rng.next_below(n) as u32);
        let dst = NodeId::new(rng.next_below(n) as u32);
        let routing = if rng.bernoulli(0.5) {
            Routing::YX
        } else {
            Routing::XY
        };
        let path = routing.path(&topo, src, dst);
        assert_eq!(*path.first().unwrap(), src);
        assert_eq!(*path.last().unwrap(), dst);
        assert_eq!(path.len() as u32 - 1, topo.hop_distance(src, dst));
    }
}

/// Torus routing also terminates and never exceeds the mesh path.
#[test]
fn torus_routing_never_longer_than_mesh() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0002);
    for _ in 0..256 {
        let w = 2 + rng.next_below(7) as u16;
        let h = 2 + rng.next_below(7) as u16;
        let torus = Topology::torus(w, h);
        let mesh = Topology::mesh(w, h);
        let n = torus.num_nodes() as u64;
        let src = NodeId::new(rng.next_below(n) as u32);
        let dst = NodeId::new(rng.next_below(n) as u32);
        let tp = Routing::XY.path(&torus, src, dst);
        let mp = Routing::XY.path(&mesh, src, dst);
        assert!(tp.len() <= mp.len());
        assert_eq!(*tp.last().unwrap(), dst);
    }
}

/// Neighbor relations are symmetric on every topology.
#[test]
fn neighbors_symmetric() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0003);
    for _ in 0..64 {
        let w = 1 + rng.next_below(8) as u16;
        let h = 1 + rng.next_below(8) as u16;
        let topo = if rng.bernoulli(0.5) {
            Topology::torus(w, h)
        } else {
            Topology::mesh(w, h)
        };
        for node in topo.nodes() {
            for dir in Direction::CARDINALS {
                if let Some(peer) = topo.neighbor(node, dir) {
                    assert_eq!(topo.neighbor(peer, dir.opposite()), Some(node));
                }
            }
        }
    }
}

/// Reservation assignment never oversubscribes any link and every
/// flow gets a positive share.
#[test]
fn reservations_feasible() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0004);
    for _ in 0..128 {
        let topo = Topology::mesh(8, 8);
        let mut fs = FlowSet::new(topo, Routing::XY);
        let pairs = 1 + rng.next_below(19) as usize;
        let mut any = false;
        for _ in 0..pairs {
            let a = rng.next_below(64) as u32;
            let b = rng.next_below(64) as u32;
            let w = 1 + rng.next_below(19);
            if a != b {
                fs.add(NodeId::new(a), NodeId::new(b), w as f64);
                any = true;
            }
        }
        if !any {
            continue;
        }
        let capacity = 64 + rng.next_below(4032) as u32;
        match fs.assign_reservations(capacity) {
            Ok(r) => {
                assert!(r.iter().all(|&x| x > 0));
                fs.check_reservations(&r, capacity).unwrap();
            }
            Err(e) => {
                // Only legitimate failure: a weight too small for the
                // frame granularity.
                assert!(e.message().contains("zero"), "{}", e);
            }
        }
    }
}

/// RunningStats matches a direct two-pass computation.
#[test]
fn running_stats_matches_naive() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0005);
    for _ in 0..128 {
        let len = 1 + rng.next_below(199) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        assert_eq!(s.count(), xs.len() as u64);
    }
}

/// Merging stats in any split matches computing them whole.
#[test]
fn running_stats_merge_associative() {
    let mut rng = Xoshiro256::seed_from(0x5EED_0006);
    for _ in 0..128 {
        let len = 2 + rng.next_below(98) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.next_f64() - 0.5) * 2e3).collect();
        let cut = rng.next_below(len as u64) as usize;
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        assert_eq!(a.count(), whole.count());
    }
}

/// next_below stays in range for arbitrary bounds.
#[test]
fn rng_next_below_in_range() {
    let mut meta = Xoshiro256::seed_from(0x5EED_0007);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(1_000_000);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..100 {
            assert!(rng.next_below(bound) < bound);
        }
    }
}
