//! Equivalence of the rotated-bitmask iterator with a naive rotating
//! bit scan.
//!
//! The VC fabric's arbitration loops walk request/ready masks with
//! [`MaskIter`] instead of scanning every slot; every arbitration
//! decision reduces to "visit the set bits in rotating order from the
//! round-robin pointer". These tests pin that order to the obvious
//! reference — exhaustively for every small mask at every rotation,
//! at several bit offsets, and with seeded random full-width masks.

use noc_sim::fabric::MaskIter;

/// The reference: probe all 64 positions in rotating order from
/// `start` and keep the set ones.
fn naive(mask: u64, start: usize) -> Vec<usize> {
    (0..64)
        .map(|k| (start + k) % 64)
        .filter(|&b| mask & (1u64 << b) != 0)
        .collect()
}

#[test]
fn exhaustive_small_masks_all_rotations() {
    // Every 8-bit mask, placed at the bottom, middle, and top of the
    // word, against every possible rotation point.
    for bits in 0u64..256 {
        for shift in [0, 28, 56] {
            let mask = bits << shift;
            for start in 0..64 {
                let got: Vec<usize> = MaskIter::rotated(mask, start).collect();
                assert_eq!(
                    got,
                    naive(mask, start),
                    "mask {mask:#x} start {start} diverged"
                );
            }
        }
    }
}

#[test]
fn seeded_random_full_width_masks() {
    // xorshift64: deterministic, dependency-free.
    let mut state = 0x0DDB1A5E5BAD5EEDu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..20_000 {
        let mask = rng() & rng(); // bias towards sparse masks
        let start = (rng() % 64) as usize;
        let got: Vec<usize> = MaskIter::rotated(mask, start).collect();
        assert_eq!(got, naive(mask, start), "mask {mask:#x} start {start}");
    }
}

#[test]
fn degenerate_masks() {
    assert_eq!(MaskIter::rotated(0, 17).count(), 0);
    let all: Vec<usize> = MaskIter::rotated(!0, 0).collect();
    assert_eq!(all, (0..64).collect::<Vec<_>>());
    let rot: Vec<usize> = MaskIter::rotated(!0, 63).collect();
    assert_eq!(rot[0], 63);
    assert_eq!(rot[1..], (0..63).collect::<Vec<_>>());
    // A start at or past the width must behave like start 0 (no
    // shift-overflow UB).
    let w: Vec<usize> = MaskIter::rotated(0b1010, 64).collect();
    assert_eq!(w, vec![1, 3]);
}
