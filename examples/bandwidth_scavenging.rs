//! Bandwidth scavenging: a flow with a tiny reservation on an
//! otherwise idle path runs far beyond its guarantee, because LOFT's
//! local status reset recycles idle links' frames at full speed
//! (Section 4.3.2; the stripped node of Figures 1 and 13).
//!
//! The same flow on a GSF network stays pinned near its reservation:
//! the globally synchronized window can only turn as fast as the
//! congested hotspot region lets it.
//!
//! ```text
//! cargo run --release -p loft-examples --bin bandwidth_scavenging
//! ```

use loft::{LoftConfig, LoftNetwork};
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::{FlowId, Network, RunConfig, SimReport, Simulation};
use noc_traffic::Scenario;

fn run(net: impl Network, scenario: &Scenario) -> SimReport {
    Simulation::new(
        net,
        scenario.workload(3),
        RunConfig {
            warmup: 5_000,
            measure: 25_000,
            drain: 15_000,
        },
    )
    .run()
}

fn main() {
    // Case Study II: grey nodes congest the center; the stripped node
    // talks to its neighbor over a disjoint path. Everyone holds the
    // same equal reservation.
    let scenario = Scenario::case_study_2(0.9);
    let stripped = FlowId::new(8);

    let lcfg = LoftConfig::default();
    let loft = run(
        LoftNetwork::new(lcfg, &scenario.reservations(lcfg.frame_size).expect("fits")),
        &scenario,
    );
    let gcfg = GsfConfig::default();
    let gsf = run(
        GsfNetwork::new(gcfg, &scenario.reservations(gcfg.frame_size).expect("fits")),
        &scenario,
    );

    let guarantee = scenario.reservations(lcfg.frame_size).expect("fits")[stripped.index()] as f64
        / lcfg.frame_size as f64;
    println!("stripped node, offered 0.9 flits/cycle, guaranteed {guarantee:.3}:");
    println!(
        "  LOFT accepted: {:.3} flits/cycle",
        loft.flow_throughput(stripped)
    );
    println!(
        "  GSF  accepted: {:.3} flits/cycle",
        gsf.flow_throughput(stripped)
    );
    println!(
        "\nLOFT scavenges the idle path's full bandwidth ({:.0}× its guarantee); \
         GSF stays coupled to the congested region.",
        loft.flow_throughput(stripped) / guarantee
    );
}
