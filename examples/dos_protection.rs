//! Denial-of-service protection: a latency-critical flow keeps its
//! guaranteed bandwidth and flat latency while a malicious neighbor
//! floods the same destination (the paper's Case Study I).
//!
//! ```text
//! cargo run --release -p loft-examples --bin dos_protection
//! ```

use loft::LoftConfig;
use loft::LoftNetwork;
use noc_sim::{FlowId, RunConfig, Simulation};
use noc_traffic::Scenario;

fn run(aggressor_rate: f64) -> (f64, f64) {
    let scenario = Scenario::case_study_1(aggressor_rate);
    let cfg = LoftConfig::default();
    let reservations = scenario.reservations(cfg.frame_size).expect("valid shares");
    let network = LoftNetwork::new(cfg, &reservations);
    let report = Simulation::new(
        network,
        scenario.workload(11),
        RunConfig {
            warmup: 5_000,
            measure: 25_000,
            drain: 15_000,
        },
    )
    .run();
    let victim = FlowId::new(0);
    (
        report.flows[victim.index()].total_latency.mean(),
        report.flow_throughput(victim),
    )
}

fn main() {
    println!("victim: regulated 0.2 flits/cycle with a 1/4 link allocation\n");
    println!("aggressor rate | victim latency | victim throughput");
    for rate in [0.1, 0.4, 0.8] {
        let (lat, tput) = run(rate);
        println!("{rate:>14.1} | {lat:>14.1} | {tput:>17.4}");
    }
    println!(
        "\nThe victim's latency and throughput stay flat no matter how hard \
         the aggressors push — LOFT's per-link frames isolate it."
    );
}
