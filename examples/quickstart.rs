//! Quickstart: build a LOFT network, attach a workload, run it, and
//! read the QoS metrics.
//!
//! ```text
//! cargo run --release -p loft-examples --bin quickstart
//! ```

use loft::{LoftConfig, LoftNetwork};
use noc_sim::{RunConfig, Simulation};
use noc_traffic::Scenario;

fn main() {
    // 1. Pick a workload. `Scenario` ships the paper's patterns;
    //    here all 63 nodes of an 8×8 mesh send to node 63.
    let scenario = Scenario::hotspot(0.01);

    // 2. Configure LOFT (Table 1 defaults: 256-flit frames, window 2,
    //    12-flit speculative buffer, optimizations on).
    let cfg = LoftConfig::default();

    // 3. Turn the scenario's QoS weights into per-flow frame
    //    reservations (`R_ij` flits per frame, same on every link).
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("valid allocation");

    // 4. Build and run.
    let network = LoftNetwork::new(cfg, &reservations);
    let report = Simulation::new(network, scenario.workload(42), RunConfig::short()).run();

    // 5. Read the results.
    println!("delivered flits:        {}", report.flits_delivered);
    println!(
        "accepted throughput:    {:.4} flits/cycle/node",
        report.throughput_per_node()
    );
    println!("avg packet latency:     {:.1} cycles", report.avg_latency());
    println!(
        "avg network latency:    {:.1} cycles",
        report.network_latency.mean()
    );
    let all = report.group_throughput(scenario.group("all").expect("group"));
    println!(
        "per-flow throughput:    avg {:.4}, min {:.4}, max {:.4} (fair when equal)",
        all.mean(),
        all.min(),
        all.max()
    );
}
