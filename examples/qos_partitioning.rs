//! Differentiated service: two tenants share one mesh with a 3:1
//! bandwidth split, the scenario the paper's Figure 10b/c motivates.
//!
//! A *premium* tenant (top half of the mesh) and a *best-effort*
//! tenant (bottom half) both stream to a shared memory-controller
//! node. LOFT's per-link frame reservations turn the 3:1 weights into
//! a 3:1 throughput split, with tight per-flow fairness inside each
//! tenant.
//!
//! ```text
//! cargo run --release -p loft-examples --bin qos_partitioning
//! ```

use loft::{LoftConfig, LoftNetwork};
use noc_sim::flit::FlowId;
use noc_sim::flit::NodeId;
use noc_sim::{RunConfig, Simulation};
use noc_traffic::scenario::ScenarioFlow;
use noc_traffic::{DestRule, InjectionProcess, Scenario};

fn main() {
    let topo = Scenario::default_topology();
    let controller = NodeId::new(63);

    // Build a custom scenario: same hotspot, two weight classes.
    let mut flows = Vec::new();
    for src in topo.nodes() {
        if src == controller {
            continue;
        }
        let (_, y) = topo.coords(src);
        let premium = y < 4;
        flows.push(ScenarioFlow {
            src,
            dest: DestRule::Fixed(controller),
            process: InjectionProcess::Bernoulli { rate: 0.05 },
            weight: if premium { 3.0 } else { 1.0 },
            share: None,
        });
    }
    let premium_ids: Vec<FlowId> = flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.weight > 1.0)
        .map(|(i, _)| FlowId::new(i as u32))
        .collect();
    let best_effort_ids: Vec<FlowId> = flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.weight == 1.0)
        .map(|(i, _)| FlowId::new(i as u32))
        .collect();
    let scenario = Scenario {
        name: "qos-partitioning".into(),
        topo,
        routing: noc_sim::Routing::XY,
        packet_len: 4,
        flows,
        groups: vec![
            ("premium".into(), premium_ids),
            ("best-effort".into(), best_effort_ids),
        ],
    };

    let cfg = LoftConfig::default();
    let reservations = scenario
        .reservations(cfg.frame_size)
        .expect("valid weights");
    let network = LoftNetwork::new(cfg, &reservations);
    let report = Simulation::new(
        network,
        scenario.workload(7),
        RunConfig {
            warmup: 10_000,
            measure: 40_000,
            drain: 20_000,
        },
    )
    .run();

    let premium = report.group_throughput(scenario.group("premium").expect("group"));
    let best = report.group_throughput(scenario.group("best-effort").expect("group"));
    println!(
        "premium     : avg {:.4} flits/cycle/flow (cv {:.1}%)",
        premium.mean(),
        100.0 * premium.cv()
    );
    println!(
        "best-effort : avg {:.4} flits/cycle/flow (cv {:.1}%)",
        best.mean(),
        100.0 * best.cv()
    );
    println!(
        "measured split {:.2}:1 (configured 3:1)",
        premium.mean() / best.mean()
    );
}
