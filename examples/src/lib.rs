//! Runnable examples for the LOFT reproduction live in the package root as `[[bin]]` targets.
