//! Integration test crate; see the tests/ subdirectory.
