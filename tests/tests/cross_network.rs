//! Integration tests comparing the three network implementations on
//! identical workloads: conservation, sanity orderings, and the
//! flow-control ranking of the paper's Figure 6.

use loft::{LoftConfig, LoftNetwork};
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::flit::{FlowId, NodeId, Packet, PacketId};
use noc_sim::{Network, RunConfig, Simulation, Topology};
use noc_traffic::Scenario;
use noc_wormhole::{WormholeConfig, WormholeNetwork};

fn short() -> RunConfig {
    RunConfig {
        warmup: 2_000,
        measure: 8_000,
        drain: 8_000,
    }
}

/// Every packet injected at low load is delivered by every network —
/// no loss, no duplication (conservation).
#[test]
fn all_networks_conserve_packets_at_low_load() {
    let s = Scenario::uniform(0.05);
    let run = short();
    let expected_range = 5_000..8_000; // 0.05/4 pkts/cy × 64 nodes × 8k-cycle window

    let l = {
        let cfg = LoftConfig::default();
        let r = s.reservations(cfg.frame_size).expect("fits");
        Simulation::new(LoftNetwork::new(cfg, &r), s.workload(1), run).run()
    };
    let g = {
        let cfg = GsfConfig::default();
        let r = s.reservations(cfg.frame_size).expect("fits");
        Simulation::new(GsfNetwork::new(cfg, &r), s.workload(1), run).run()
    };
    let w = Simulation::new(
        WormholeNetwork::new(WormholeConfig::default()),
        s.workload(1),
        run,
    )
    .run();
    // Identical seeds → identical offered packets. Flit counts are
    // windowed, so delivery timing at the window edges may shift a
    // few packets in or out; allow a 1% tolerance.
    let close = |a: u64, b: u64| (a as f64 - b as f64).abs() / (a as f64) < 0.01;
    assert!(
        close(l.flits_delivered, g.flits_delivered),
        "{} vs {}",
        l.flits_delivered,
        g.flits_delivered
    );
    assert!(
        close(l.flits_delivered, w.flits_delivered),
        "{} vs {}",
        l.flits_delivered,
        w.flits_delivered
    );
    let packets = l.flits_delivered / 4;
    assert!(
        expected_range.contains(&packets),
        "unexpected packet count {packets}"
    );
}

/// Low-load latency sanity: wormhole (no scheduling) is fastest; LOFT
/// pays a small look-ahead lead; everyone stays within a small factor.
#[test]
fn low_load_latency_ordering() {
    let s = Scenario::uniform(0.05);
    let run = short();
    let lat = |r: noc_sim::SimReport| r.network_latency.mean();

    let cfg = LoftConfig::default();
    let r = s.reservations(cfg.frame_size).expect("fits");
    let l = lat(Simulation::new(LoftNetwork::new(cfg, &r), s.workload(2), run).run());
    let w = lat(Simulation::new(
        WormholeNetwork::new(WormholeConfig::default()),
        s.workload(2),
        run,
    )
    .run());
    assert!(w < l, "wormhole {w:.1} should beat LOFT {l:.1} at low load");
    assert!(l < 4.0 * w, "LOFT {l:.1} too slow vs wormhole {w:.1}");
}

/// The Figure 6 ranking holds on a minimal two-node link: FRS (LOFT)
/// streams back-to-back packets faster than GSF under tight buffers.
#[test]
fn frs_beats_gsf_on_back_to_back_stream() {
    fn makespan<N: Network>(mut net: N, packets: u64) -> u64 {
        for seq in 0..packets {
            net.enqueue(Packet::new(
                PacketId {
                    flow: FlowId::new(0),
                    seq,
                },
                NodeId::new(0),
                NodeId::new(1),
                4,
                0,
            ));
        }
        let mut out = Vec::new();
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step(&mut out);
            guard += 1;
            assert!(guard < 50_000);
        }
        out.iter().map(|p| p.ejected_at.unwrap()).max().unwrap()
    }
    let topo = Topology::mesh(2, 1);
    let gsf = makespan(
        GsfNetwork::new(
            GsfConfig {
                topo,
                num_vcs: 1,
                vc_capacity: 3,
                credit_delay: 2,
                ..GsfConfig::default()
            },
            &[2000],
        ),
        32,
    );
    let loft = makespan(
        LoftNetwork::new(
            LoftConfig {
                topo,
                frame_size: 64,
                nonspec_buffer: 64,
                ..LoftConfig::default()
            },
            &[64],
        ),
        32,
    );
    assert!(
        loft * 2 < gsf,
        "FRS should be at least 2x faster: LOFT {loft}, GSF {gsf}"
    );
}

/// Drives a fixed half-way-around pattern (3 packets per node, node
/// `i` → node `(i + n/2) % n`) to completion and returns the sorted
/// per-packet ejection times. Destination correctness is checked by
/// the fabric's debug assertions while draining.
fn drain_pattern<N: Network>(mut net: N) -> Vec<(u32, u64, u64)> {
    let n = net.num_nodes() as u32;
    for node in 0..n {
        let dst = (node + n / 2) % n;
        for seq in 0..3 {
            net.enqueue(Packet::new(
                PacketId {
                    flow: FlowId::new(node),
                    seq,
                },
                NodeId::new(node),
                NodeId::new(dst),
                4,
                0,
            ));
        }
    }
    let mut out = Vec::new();
    let mut guard = 0;
    while net.in_flight() > 0 {
        net.step(&mut out);
        guard += 1;
        assert!(guard < 200_000, "network failed to drain");
    }
    let mut done: Vec<(u32, u64, u64)> = out
        .iter()
        .map(|p| (p.id.flow.index() as u32, p.id.seq, p.ejected_at.unwrap()))
        .collect();
    done.sort_unstable();
    done
}

fn loft_on(topo: Topology) -> LoftNetwork {
    let cfg = LoftConfig {
        topo,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::default()
    };
    LoftNetwork::new(cfg, &vec![8; topo.num_nodes()])
}

fn gsf_on(topo: Topology) -> GsfNetwork {
    GsfNetwork::new(GsfConfig::on(topo), &vec![100; topo.num_nodes()])
}

/// Every network delivers every packet on a 4×4 torus — the wrap
/// links (which the mesh goldens never exercise) carry real traffic.
#[test]
fn all_networks_deliver_on_torus() {
    let topo = Topology::torus(4, 4);
    for done in [
        drain_pattern(WormholeNetwork::new(WormholeConfig::on(topo))),
        drain_pattern(gsf_on(topo)),
        drain_pattern(loft_on(topo)),
    ] {
        assert_eq!(done.len(), 16 * 3);
    }
}

/// Every network delivers every packet on an 8-node ring (1-D line:
/// only East/West ports ever carry traffic).
#[test]
fn all_networks_deliver_on_ring() {
    let topo = Topology::ring(8);
    for done in [
        drain_pattern(WormholeNetwork::new(WormholeConfig::on(topo))),
        drain_pattern(gsf_on(topo)),
        drain_pattern(loft_on(topo)),
    ] {
        assert_eq!(done.len(), 8 * 3);
    }
}

/// Identical runs on torus and ring produce identical per-packet
/// ejection times for all three networks (determinism beyond the
/// mesh goldens).
#[test]
fn torus_and_ring_runs_are_deterministic() {
    for topo in [Topology::torus(4, 4), Topology::ring(8)] {
        assert_eq!(
            drain_pattern(WormholeNetwork::new(WormholeConfig::on(topo))),
            drain_pattern(WormholeNetwork::new(WormholeConfig::on(topo)))
        );
        assert_eq!(drain_pattern(gsf_on(topo)), drain_pattern(gsf_on(topo)));
        assert_eq!(drain_pattern(loft_on(topo)), drain_pattern(loft_on(topo)));
    }
}

/// The storage model agrees with the simulator's configuration types
/// end-to-end (Table 2 headline).
#[test]
fn storage_headline_holds_for_default_configs() {
    let gsf = noc_model::storage::gsf_router_bits(&GsfConfig::default());
    let loft = noc_model::storage::loft_router_bits(&LoftConfig::default());
    let saving = 1.0 - loft.total() as f64 / gsf.total() as f64;
    assert!(
        saving > 0.25,
        "LOFT should save >25% storage, got {saving:.2}"
    );
}

/// Scenario reservations are feasible on both frame sizes used in the
/// paper, for every paper scenario.
#[test]
fn all_paper_scenarios_have_feasible_reservations() {
    let scenarios = [
        Scenario::uniform(0.1),
        Scenario::hotspot(0.01),
        Scenario::hotspot_differentiated4(0.01),
        Scenario::hotspot_differentiated2(0.01),
        Scenario::case_study_1(0.5),
        Scenario::case_study_2(0.5),
        Scenario::transpose(0.1),
        Scenario::bit_complement(0.1),
        Scenario::nearest_neighbor(0.1),
    ];
    for s in &scenarios {
        for frame in [256u32, 2000] {
            let r = s
                .reservations(frame)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(r.len(), s.num_flows());
            assert!(r.iter().all(|&x| x > 0));
            if let Some(fs) = s.flow_set() {
                fs.check_reservations(&r, frame)
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            }
        }
    }
}
