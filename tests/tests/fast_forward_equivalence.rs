//! Quiescence fast-forward equivalence: skipping idle spans in
//! closed form must be invisible in every observable — the full
//! [`SimReport`] (per-flow stats, Welford latency accumulators,
//! histogram) *and* the full [`TelemetryReport`] (counters, occupancy
//! accumulators, per-flow series) must be bit-identical with the fast
//! path on or off, for every network × {mesh, torus, ring} ×
//! {uniform-low, bursty, regulated} × {1, 2, 4} shards.
//!
//! The ff-off single-shard run is the oracle; each ff-on run at every
//! shard count must reproduce it exactly (the fast-forward decision
//! is shard-global, so sharding must not change where jumps land).
//! On the quiescence-heavy workloads the suite also asserts the fast
//! path actually engaged — an equivalence test that never jumps is
//! vacuous.

use loft::LoftConfig;
use loft_bench::{
    run_gsf_telemetry_info, run_loft_telemetry_info, run_wormhole_telemetry_info, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::telemetry::TelemetryReport;
use noc_sim::{RunConfig, RunInfo, SimReport, Topology};
use noc_traffic::{DestRule, InjectionProcess, Scenario};
use noc_wormhole::WormholeConfig;

/// Same shapes as the shard-invariance suites: small enough to stay
/// fast, large enough for real cross-shard traffic at 4 shards.
fn topologies() -> [Topology; 3] {
    [
        Topology::mesh(4, 4),
        Topology::torus(4, 4),
        Topology::ring(12),
    ]
}

fn run() -> RunConfig {
    RunConfig {
        warmup: 100,
        measure: 1_000,
        drain: 1_000,
    }
}

/// [`Scenario::uniform`] rebuilt for an arbitrary topology, at a load
/// low enough that the network occasionally goes globally idle.
fn uniform_low_on(topo: Topology) -> Scenario {
    let mut s = Scenario::uniform(0.02);
    let n = topo.num_nodes();
    s.topo = topo;
    s.flows.truncate(n);
    for (f, src) in s.flows.iter_mut().zip(topo.nodes()) {
        f.src = src;
        f.dest = DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s
}

/// Two end-to-end flows with the given process — sparse enough that
/// the whole network quiesces between packets on any topology.
fn sparse_pair_on(topo: Topology, process: InjectionProcess, name: &str) -> Scenario {
    let nodes: Vec<_> = topo.nodes().collect();
    let (first, last) = (nodes[0], *nodes.last().expect("topology has nodes"));
    let mut s = Scenario::uniform(0.0);
    s.topo = topo;
    s.flows.truncate(2);
    for (f, (src, dst)) in s.flows.iter_mut().zip([(first, last), (last, first)]) {
        f.src = src;
        f.dest = DestRule::Fixed(dst);
        f.process = process.clone();
    }
    s.groups.clear();
    s.name = name.to_string();
    s
}

/// Short bursts, long idle spans: the fast path's target workload.
fn bursty_on(topo: Topology) -> Scenario {
    sparse_pair_on(
        topo,
        InjectionProcess::OnOff {
            rate_on: 0.6,
            p_on_to_off: 1.0 / 20.0,
            p_off_to_on: 1.0 / 300.0,
        },
        "bursty-sparse",
    )
}

/// Deterministic synchronized waves with fully idle gaps in between.
fn regulated_on(topo: Topology) -> Scenario {
    sparse_pair_on(
        topo,
        InjectionProcess::Regulated { rate: 0.05 },
        "regulated-sparse",
    )
}

/// The traffic matrix: name, scenario builder, and whether the fast
/// path is required to engage (quiescence-heavy workloads).
#[allow(clippy::type_complexity)]
fn traffics() -> [(&'static str, fn(Topology) -> Scenario, bool); 3] {
    [
        ("uniform-low", uniform_low_on, false),
        ("bursty", bursty_on, true),
        ("regulated", regulated_on, true),
    ]
}

type Outcome = (SimReport, TelemetryReport, RunInfo);

fn loft_at(scenario: &Scenario, topo: Topology, threads: usize, ff: bool) -> Outcome {
    let cfg = LoftConfig {
        threads,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::on(topo)
    };
    run_loft_telemetry_info(scenario, cfg, run(), SEED, ff, || {})
}

fn gsf_at(scenario: &Scenario, topo: Topology, threads: usize, ff: bool) -> Outcome {
    let cfg = GsfConfig {
        threads,
        frame_size: 200,
        ..GsfConfig::on(topo)
    };
    run_gsf_telemetry_info(scenario, cfg, run(), SEED, ff, || {})
}

fn wormhole_at(scenario: &Scenario, topo: Topology, threads: usize, ff: bool) -> Outcome {
    let cfg = WormholeConfig {
        threads,
        ..WormholeConfig::on(topo)
    };
    run_wormhole_telemetry_info(scenario, cfg, run(), SEED, ff, || {})
}

fn check_equivalence(net: &str, at: impl Fn(&Scenario, Topology, usize, bool) -> Outcome) {
    for topo in topologies() {
        for (traffic, build, must_skip) in traffics() {
            let scenario = build(topo);
            let ctx = format!("{net}/{topo:?}/{traffic}");
            let (base_report, base_telemetry, base_info) = at(&scenario, topo, 1, false);
            assert!(
                base_report.flits_delivered > 0,
                "{ctx}: oracle run delivered nothing — test is vacuous"
            );
            assert_eq!(
                base_info.skipped_cycles, 0,
                "{ctx}: fast-forward-off run skipped cycles"
            );
            for threads in [1, 2, 4] {
                let (report, telemetry, info) = at(&scenario, topo, threads, true);
                assert_eq!(
                    report, base_report,
                    "{ctx}: SimReport diverged at {threads} shards with fast-forward on"
                );
                assert_eq!(
                    telemetry, base_telemetry,
                    "{ctx}: TelemetryReport diverged at {threads} shards with fast-forward on"
                );
                assert_eq!(
                    info.end_cycle, base_info.end_cycle,
                    "{ctx}: drain terminated at a different cycle at {threads} shards"
                );
                if must_skip {
                    assert!(
                        info.skipped_cycles > 0,
                        "{ctx}: fast path never engaged at {threads} shards — \
                         quiescence-heavy workload should jump"
                    );
                }
            }
        }
    }
}

#[test]
fn loft_fast_forward_is_equivalent() {
    check_equivalence("loft", loft_at);
}

#[test]
fn gsf_fast_forward_is_equivalent() {
    check_equivalence("gsf", gsf_at);
}

#[test]
fn wormhole_fast_forward_is_equivalent() {
    check_equivalence("wormhole", wormhole_at);
}
