//! Quiescence fast-forward equivalence: skipping idle spans in
//! closed form must be invisible in every observable — the full
//! [`SimReport`] (per-flow stats, Welford latency accumulators,
//! histogram) *and* the full [`TelemetryReport`] (counters, occupancy
//! accumulators, per-flow series) must be bit-identical with the fast
//! path on or off, for every network × {mesh, torus, ring} ×
//! {uniform-low, bursty, regulated} × {1, 2, 4} shards.
//!
//! The ff-off single-shard run is the oracle; each ff-on run at every
//! shard count must reproduce it exactly (the fast-forward decision
//! is shard-global, so sharding must not change where jumps land).
//! On the quiescence-heavy workloads the suite also asserts the fast
//! path actually engaged — an equivalence test that never jumps is
//! vacuous.
//!
//! The single-shard cells share one warmup: the cell warms up once
//! into a [`noc_sim::Checkpoint`] (fast-forward off, so the oracle
//! stays skip-free end to end) and both the ff-off oracle and the
//! ff-on leg are forks of it. Checkpoint/fork bit-identity is proved
//! separately (`checkpoint_equivalence.rs`, and against the golden
//! pins in `golden_determinism.rs`), so the shared warmup does not
//! weaken the oracle — it just stops paying for the same warmup
//! twice. The 2- and 4-shard legs still run from scratch: the shard
//! layout is part of network construction, so a 1-shard checkpoint
//! cannot be forked into them.

use loft::LoftConfig;
use loft_bench::{
    checkpoint_gsf_telemetry, checkpoint_loft_telemetry, checkpoint_wormhole_telemetry,
    run_gsf_telemetry_info, run_loft_telemetry_info, run_wormhole_telemetry_info, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::telemetry::TelemetryReport;
use noc_sim::{RunConfig, SimReport, Topology};
use noc_traffic::{DestRule, InjectionProcess, Scenario};
use noc_wormhole::WormholeConfig;

/// Same shapes as the shard-invariance suites: small enough to stay
/// fast, large enough for real cross-shard traffic at 4 shards.
fn topologies() -> [Topology; 3] {
    [
        Topology::mesh(4, 4),
        Topology::torus(4, 4),
        Topology::ring(12),
    ]
}

fn run() -> RunConfig {
    RunConfig {
        warmup: 100,
        measure: 1_000,
        drain: 1_000,
    }
}

/// [`Scenario::uniform`] rebuilt for an arbitrary topology, at a load
/// low enough that the network occasionally goes globally idle.
fn uniform_low_on(topo: Topology) -> Scenario {
    let mut s = Scenario::uniform(0.02);
    let n = topo.num_nodes();
    s.topo = topo;
    s.flows.truncate(n);
    for (f, src) in s.flows.iter_mut().zip(topo.nodes()) {
        f.src = src;
        f.dest = DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s
}

/// Two end-to-end flows with the given process — sparse enough that
/// the whole network quiesces between packets on any topology.
fn sparse_pair_on(topo: Topology, process: InjectionProcess, name: &str) -> Scenario {
    let nodes: Vec<_> = topo.nodes().collect();
    let (first, last) = (nodes[0], *nodes.last().expect("topology has nodes"));
    let mut s = Scenario::uniform(0.0);
    s.topo = topo;
    s.flows.truncate(2);
    for (f, (src, dst)) in s.flows.iter_mut().zip([(first, last), (last, first)]) {
        f.src = src;
        f.dest = DestRule::Fixed(dst);
        f.process = process.clone();
    }
    s.groups.clear();
    s.name = name.to_string();
    s
}

/// Short bursts, long idle spans: the fast path's target workload.
fn bursty_on(topo: Topology) -> Scenario {
    sparse_pair_on(
        topo,
        InjectionProcess::OnOff {
            rate_on: 0.6,
            p_on_to_off: 1.0 / 20.0,
            p_off_to_on: 1.0 / 300.0,
        },
        "bursty-sparse",
    )
}

/// Deterministic synchronized waves with fully idle gaps in between.
fn regulated_on(topo: Topology) -> Scenario {
    sparse_pair_on(
        topo,
        InjectionProcess::Regulated { rate: 0.05 },
        "regulated-sparse",
    )
}

/// The traffic matrix: name, scenario builder, and whether the fast
/// path is required to engage (quiescence-heavy workloads).
#[allow(clippy::type_complexity)]
fn traffics() -> [(&'static str, fn(Topology) -> Scenario, bool); 3] {
    [
        ("uniform-low", uniform_low_on, false),
        ("bursty", bursty_on, true),
        ("regulated", regulated_on, true),
    ]
}

/// What every leg reports: the full [`SimReport`], the full
/// [`TelemetryReport`], the drain's end cycle, and the cycles the
/// fast path skipped.
type Outcome = (SimReport, TelemetryReport, u64, u64);

/// Runs the equivalence matrix for one network. `checkpoint` warms a
/// single-shard cell up once (fast-forward off) and freezes it;
/// `fork_leg` forks it with fast-forward on or off; `scratch` runs a
/// multi-shard ff-on leg from scratch. The checkpoint type is opaque
/// here — each network instantiates its own.
fn check_equivalence<K>(
    net: &str,
    checkpoint: impl Fn(&Scenario, Topology) -> K,
    fork_leg: impl Fn(&K, bool) -> Outcome,
    scratch: impl Fn(&Scenario, Topology, usize) -> Outcome,
) {
    for topo in topologies() {
        for (traffic, build, must_skip) in traffics() {
            let scenario = build(topo);
            let ctx = format!("{net}/{topo:?}/{traffic}");
            let ckpt = checkpoint(&scenario, topo);
            let (base_report, base_telemetry, base_end, base_skipped) = fork_leg(&ckpt, false);
            assert!(
                base_report.flits_delivered > 0,
                "{ctx}: oracle run delivered nothing — test is vacuous"
            );
            assert_eq!(
                base_skipped, 0,
                "{ctx}: fast-forward-off run skipped cycles"
            );
            let check = |report: SimReport,
                         telemetry: TelemetryReport,
                         end: u64,
                         skipped: u64,
                         threads: usize| {
                assert_eq!(
                    report, base_report,
                    "{ctx}: SimReport diverged at {threads} shards with fast-forward on"
                );
                assert_eq!(
                    telemetry, base_telemetry,
                    "{ctx}: TelemetryReport diverged at {threads} shards with fast-forward on"
                );
                assert_eq!(
                    end, base_end,
                    "{ctx}: drain terminated at a different cycle at {threads} shards"
                );
                if must_skip {
                    assert!(
                        skipped > 0,
                        "{ctx}: fast path never engaged at {threads} shards — \
                         quiescence-heavy workload should jump"
                    );
                }
            };
            // The single-shard ff-on leg forks the oracle's warmup.
            let (report, telemetry, end, skipped) = fork_leg(&ckpt, true);
            check(report, telemetry, end, skipped, 1);
            for threads in [2, 4] {
                let (report, telemetry, end, skipped) = scratch(&scenario, topo, threads);
                check(report, telemetry, end, skipped, threads);
            }
        }
    }
}

fn loft_cfg(topo: Topology, threads: usize) -> LoftConfig {
    LoftConfig {
        threads,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::on(topo)
    }
}

fn gsf_cfg(topo: Topology, threads: usize) -> GsfConfig {
    GsfConfig {
        threads,
        frame_size: 200,
        ..GsfConfig::on(topo)
    }
}

fn wormhole_cfg(topo: Topology, threads: usize) -> WormholeConfig {
    WormholeConfig {
        threads,
        ..WormholeConfig::on(topo)
    }
}

#[test]
fn loft_fast_forward_is_equivalent() {
    check_equivalence(
        "loft",
        |s, topo| checkpoint_loft_telemetry(s, loft_cfg(topo, 1), run(), SEED, false),
        |c, ff| {
            let (r, n, i) = c.fork().with_fast_forward(ff).resume();
            (r, n.into_probe().finish(), i.end_cycle, i.skipped_cycles)
        },
        |s, topo, threads| {
            let (r, t, i) =
                run_loft_telemetry_info(s, loft_cfg(topo, threads), run(), SEED, true, || {});
            (r, t, i.end_cycle, i.skipped_cycles)
        },
    );
}

#[test]
fn gsf_fast_forward_is_equivalent() {
    check_equivalence(
        "gsf",
        |s, topo| checkpoint_gsf_telemetry(s, gsf_cfg(topo, 1), run(), SEED, false),
        |c, ff| {
            let (r, n, i) = c.fork().with_fast_forward(ff).resume();
            (r, n.into_probe().finish(), i.end_cycle, i.skipped_cycles)
        },
        |s, topo, threads| {
            let (r, t, i) =
                run_gsf_telemetry_info(s, gsf_cfg(topo, threads), run(), SEED, true, || {});
            (r, t, i.end_cycle, i.skipped_cycles)
        },
    );
}

#[test]
fn wormhole_fast_forward_is_equivalent() {
    check_equivalence(
        "wormhole",
        |s, topo| checkpoint_wormhole_telemetry(s, wormhole_cfg(topo, 1), run(), SEED, false),
        |c, ff| {
            let (r, n, i) = c.fork().with_fast_forward(ff).resume();
            (r, n.into_probe().finish(), i.end_cycle, i.skipped_cycles)
        },
        |s, topo, threads| {
            let (r, t, i) = run_wormhole_telemetry_info(
                s,
                wormhole_cfg(topo, threads),
                run(),
                SEED,
                true,
                || {},
            );
            (r, t, i.end_cycle, i.skipped_cycles)
        },
    );
}
