//! Shard-count invariance: sharded parallel stepping must be
//! bit-for-bit identical to the single-threaded engine.
//!
//! For every network × {mesh, torus, ring}, the full [`SimReport`]
//! (per-flow stats, Welford latency accumulators, histogram — all of
//! it) must be identical at 1, 2, and 4 shards; a randomized
//! shard-count stress run extends that over arbitrary counts,
//! including degenerate ones (more shards than nodes). The Welford
//! latency mean is order-sensitive in its low bits, so `SimReport`
//! equality pins the exact delivery order, not just the totals.

use loft::LoftConfig;
use loft_bench::{run_gsf, run_loft, run_wormhole, SEED};
use noc_gsf::GsfConfig;
use noc_sim::{RunConfig, SimReport, Topology};
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// The three topology shapes under test, sized small enough that the
/// full matrix stays fast but large enough for real cross-shard
/// traffic at 4 shards.
fn topologies() -> [Topology; 3] {
    [
        Topology::mesh(4, 4),
        Topology::torus(4, 4),
        Topology::ring(12),
    ]
}

/// [`Scenario::uniform`] rebuilt for an arbitrary topology (the
/// ready-made scenarios are fixed to the paper's 8×8 mesh).
fn uniform_on(topo: Topology, rate: f64) -> Scenario {
    let mut s = Scenario::uniform(rate);
    let n = topo.num_nodes();
    s.topo = topo;
    s.flows.truncate(n);
    for (f, src) in s.flows.iter_mut().zip(topo.nodes()) {
        f.src = src;
        f.dest = noc_traffic::DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s
}

fn run() -> RunConfig {
    RunConfig {
        warmup: 100,
        measure: 1_000,
        drain: 1_000,
    }
}

fn assert_invariant(name: &str, reports: &[(usize, SimReport)]) {
    let (_, base) = &reports[0];
    assert!(
        base.flits_delivered > 0,
        "{name}: baseline run delivered nothing — test is vacuous"
    );
    for (threads, r) in &reports[1..] {
        assert_eq!(
            r, base,
            "{name}: report at {threads} shards diverged from 1 shard"
        );
    }
}

fn wormhole_at(topo: Topology, threads: usize) -> SimReport {
    let cfg = WormholeConfig {
        threads,
        ..WormholeConfig::on(topo)
    };
    run_wormhole(&uniform_on(topo, 0.30), cfg, run(), SEED)
}

fn gsf_at(topo: Topology, threads: usize) -> SimReport {
    let cfg = GsfConfig {
        threads,
        frame_size: 200,
        ..GsfConfig::on(topo)
    };
    run_gsf(&uniform_on(topo, 0.30), cfg, run(), SEED)
}

fn loft_at(topo: Topology, threads: usize) -> SimReport {
    let cfg = LoftConfig {
        threads,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::on(topo)
    };
    run_loft(&uniform_on(topo, 0.30), cfg, run(), SEED)
}

#[test]
fn wormhole_reports_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, wormhole_at(topo, t))).into();
        assert_invariant("wormhole", &reports);
    }
}

#[test]
fn gsf_reports_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, gsf_at(topo, t))).into();
        assert_invariant("gsf", &reports);
    }
}

#[test]
fn loft_reports_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, loft_at(topo, t))).into();
        assert_invariant("loft", &reports);
    }
}

/// Randomized stress: arbitrary shard counts (including more shards
/// than nodes, where the partition clamps) on a small mesh must all
/// reproduce the single-shard report. xorshift64 keeps the test
/// deterministic and dependency-free.
#[test]
fn randomized_shard_counts_match_single_shard() {
    let mut state = 0x5EED_CAFE_F00Du64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let topo = Topology::mesh(4, 4);
    let worm_base = wormhole_at(topo, 1);
    let gsf_base = gsf_at(topo, 1);
    for _ in 0..6 {
        // 2..=24: covers odd counts, non-divisors of 16, and counts
        // past the node count.
        let threads = 2 + (rng() % 23) as usize;
        assert_eq!(
            wormhole_at(topo, threads),
            worm_base,
            "wormhole diverged at {threads} shards"
        );
        assert_eq!(
            gsf_at(topo, threads),
            gsf_base,
            "gsf diverged at {threads} shards"
        );
    }
}
