//! Checkpoint/fork equivalence: freezing a simulation at the warmup
//! boundary and forking it must be invisible in every observable —
//! a forked resume must reproduce a from-scratch run bit-for-bit in
//! the full [`SimReport`] (per-flow stats, Welford accumulators,
//! histogram), the full [`TelemetryReport`], and the drain's exact
//! termination cycle, for every network × {mesh, torus, ring} ×
//! {1, 2, 4} shards.
//!
//! Two properties per cell, both against from-scratch oracles:
//!
//! 1. `checkpoint → fork → resume` equals a straight run with the
//!    same [`RunConfig`] (the sweep runner's warmup-sharing path);
//! 2. `checkpoint → fork → with_measure(2k) → resume` equals a
//!    straight run with the doubled horizon (the adaptive-saturation
//!    path: one warmup serves every horizon extension).
//!
//! Both forks come from the *same* checkpoint, so the suite also
//! certifies that forking is non-destructive — a checkpoint can be
//! forked any number of times and each fork starts from the identical
//! frozen state. Sharded cells (2 and 4 shards) additionally cover
//! cloning of the parallel engine's mailboxes and the worker-pool
//! handle, which a fork must rebuild without perturbing results.

use loft::LoftConfig;
use loft_bench::{
    checkpoint_gsf_telemetry, checkpoint_loft_telemetry, checkpoint_wormhole_telemetry,
    run_gsf_telemetry_info, run_loft_telemetry_info, run_wormhole_telemetry_info, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::telemetry::TelemetryReport;
use noc_sim::{RunConfig, SimReport, Topology};
use noc_traffic::{DestRule, Scenario};
use noc_wormhole::WormholeConfig;

/// Same shapes as the shard-invariance suites: small enough to stay
/// fast, large enough for real cross-shard traffic at 4 shards.
fn topologies() -> [Topology; 3] {
    [
        Topology::mesh(4, 4),
        Topology::torus(4, 4),
        Topology::ring(12),
    ]
}

fn run() -> RunConfig {
    RunConfig {
        warmup: 150,
        measure: 600,
        drain: 600,
    }
}

/// [`Scenario::uniform`] rebuilt for an arbitrary topology: moderate
/// load so every cell delivers traffic in the measurement window.
fn uniform_on(topo: Topology) -> Scenario {
    let mut s = Scenario::uniform(0.10);
    let n = topo.num_nodes();
    s.topo = topo;
    s.flows.truncate(n);
    for (f, src) in s.flows.iter_mut().zip(topo.nodes()) {
        f.src = src;
        f.dest = DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s
}

/// Everything a cell compares: the full report, the full telemetry,
/// and the exact cycle the drain terminated at.
type Outcome = (SimReport, TelemetryReport, u64);

/// Runs the property matrix for one network. `checkpoint` warms up
/// and freezes; `fork_run` forks it with a measurement horizon;
/// `scratch` is the from-scratch oracle with the same settings. The
/// checkpoint type is opaque here — each network instantiates its
/// own.
fn check_net<K>(
    net: &str,
    checkpoint: impl Fn(&Scenario, Topology, usize) -> K,
    fork_run: impl Fn(&K, u64) -> Outcome,
    scratch: impl Fn(&Scenario, Topology, usize, RunConfig) -> Outcome,
) {
    for topo in topologies() {
        let scenario = uniform_on(topo);
        for threads in [1, 2, 4] {
            let ctx = format!("{net}/{topo:?}/{threads} shards");
            let ckpt = checkpoint(&scenario, topo, threads);

            let (base_report, base_telemetry, base_end) = scratch(&scenario, topo, threads, run());
            assert!(
                base_report.flits_delivered > 0,
                "{ctx}: oracle run delivered nothing — test is vacuous"
            );
            let (report, telemetry, end) = fork_run(&ckpt, run().measure);
            assert_eq!(report, base_report, "{ctx}: forked SimReport diverged");
            assert_eq!(
                telemetry, base_telemetry,
                "{ctx}: forked TelemetryReport diverged"
            );
            assert_eq!(
                end, base_end,
                "{ctx}: forked drain ended at a different cycle"
            );

            // Horizon extension: the same checkpoint, forked again
            // with a doubled measurement window, must equal a
            // from-scratch run at the doubled horizon.
            let doubled = RunConfig {
                measure: run().measure * 2,
                ..run()
            };
            let (long_report, long_telemetry, long_end) =
                scratch(&scenario, topo, threads, doubled);
            let (report, telemetry, end) = fork_run(&ckpt, doubled.measure);
            assert_eq!(
                report, long_report,
                "{ctx}: doubled-horizon fork SimReport diverged"
            );
            assert_eq!(
                telemetry, long_telemetry,
                "{ctx}: doubled-horizon fork TelemetryReport diverged"
            );
            assert_eq!(
                end, long_end,
                "{ctx}: doubled-horizon fork ended at a different cycle"
            );
        }
    }
}

fn loft_cfg(topo: Topology, threads: usize) -> LoftConfig {
    LoftConfig {
        threads,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::on(topo)
    }
}

fn gsf_cfg(topo: Topology, threads: usize) -> GsfConfig {
    GsfConfig {
        threads,
        frame_size: 200,
        ..GsfConfig::on(topo)
    }
}

fn wormhole_cfg(topo: Topology, threads: usize) -> WormholeConfig {
    WormholeConfig {
        threads,
        ..WormholeConfig::on(topo)
    }
}

#[test]
fn loft_forked_runs_match_scratch_runs() {
    check_net(
        "loft",
        |s, topo, threads| checkpoint_loft_telemetry(s, loft_cfg(topo, threads), run(), SEED, true),
        |c, measure| {
            let (r, n, i) = c.fork().with_measure(measure).resume();
            (r, n.into_probe().finish(), i.end_cycle)
        },
        |s, topo, threads, rc| {
            let (r, t, i) =
                run_loft_telemetry_info(s, loft_cfg(topo, threads), rc, SEED, true, || {});
            (r, t, i.end_cycle)
        },
    );
}

#[test]
fn gsf_forked_runs_match_scratch_runs() {
    check_net(
        "gsf",
        |s, topo, threads| checkpoint_gsf_telemetry(s, gsf_cfg(topo, threads), run(), SEED, true),
        |c, measure| {
            let (r, n, i) = c.fork().with_measure(measure).resume();
            (r, n.into_probe().finish(), i.end_cycle)
        },
        |s, topo, threads, rc| {
            let (r, t, i) =
                run_gsf_telemetry_info(s, gsf_cfg(topo, threads), rc, SEED, true, || {});
            (r, t, i.end_cycle)
        },
    );
}

#[test]
fn wormhole_forked_runs_match_scratch_runs() {
    check_net(
        "wormhole",
        |s, topo, threads| {
            checkpoint_wormhole_telemetry(s, wormhole_cfg(topo, threads), run(), SEED, true)
        },
        |c, measure| {
            let (r, n, i) = c.fork().with_measure(measure).resume();
            (r, n.into_probe().finish(), i.end_cycle)
        },
        |s, topo, threads, rc| {
            let (r, t, i) =
                run_wormhole_telemetry_info(s, wormhole_cfg(topo, threads), rc, SEED, true, || {});
            (r, t, i.end_cycle)
        },
    );
}
