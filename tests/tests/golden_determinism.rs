//! Golden determinism tests: each network, run with the shared bench
//! seed and the short run configuration, must reproduce these exact
//! pinned results — down to the last bit of the latency average.
//!
//! These pins were captured from the pre-optimization tree and lock
//! the simulator's observable behaviour across performance work: any
//! change to iteration order, scheduling tie-breaks, or RNG
//! consumption shows up here as a hard failure, not a silent drift.
//! If a pin moves, the change is a semantic change (and needs its own
//! justification), not an optimization.
//!
//! Every pin runs at 1, 2, and 4 shards (`threads` in the configs):
//! sharded parallel stepping must be bit-for-bit identical to the
//! single-threaded engine, so the same pins are the oracle for the
//! parallel path (see `noc_sim::par`). Each pin additionally runs
//! once with quiescence fast-forward disabled — the default runners
//! use the fast path, so the pair certifies that closed-form idle
//! jumps and per-cycle stepping are observably the same simulation.
//!
//! The plain runners used here build networks with the default
//! telemetry probe (`noc_sim::telemetry::NoopProbe`), so these pins
//! also certify that the telemetry-off configuration is bit-identical
//! to a tree without the probe plumbing — the zero-cost half of the
//! telemetry layer's contract (`telemetry_invariance.rs` checks the
//! telemetry-on half).
//!
//! The two single-shard legs (fast-forward on and off) fork one
//! shared warmup [`noc_sim::Checkpoint`] instead of each re-running
//! warmup, so every pin is also a checkpoint/fork oracle: a forked
//! resume must land on the exact pinned bits, or forking perturbed
//! the simulation. The checkpoint is captured with fast-forward off
//! so the ff-off leg stays skip-free end to end; the multi-shard legs
//! still run from scratch (the shard layout is part of network
//! construction, so a 1-shard checkpoint cannot be forked into them).

use loft::LoftConfig;
use loft_bench::{
    checkpoint_gsf, checkpoint_loft, checkpoint_wormhole, run_gsf, run_loft, run_wormhole, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// The multi-shard counts every pin must reproduce exactly from
/// scratch (the single-shard legs run via the shared checkpoint).
const SCRATCH_THREADS: [usize; 2] = [2, 4];

/// Asserts a report matches its pinned flit count and the exact IEEE
/// bit pattern of its average latency.
fn check(report: &noc_sim::SimReport, flits: u64, latency_bits: u64) {
    assert_eq!(report.flits_delivered, flits, "flits_delivered drifted");
    assert_eq!(
        report.avg_latency().to_bits(),
        latency_bits,
        "avg_latency drifted: got {:?}, pinned {:?}",
        report.avg_latency(),
        f64::from_bits(latency_bits),
    );
}

fn check_loft(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in SCRATCH_THREADS {
        let cfg = LoftConfig {
            threads,
            ..LoftConfig::default()
        };
        let r = run_loft(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    // Single-shard legs: one warmup, forked for both the plain
    // per-cycle leg and the quiescence-fast-forward leg — the fast
    // path and a forked resume must both land on the pinned bits.
    let ckpt = checkpoint_loft(scenario, LoftConfig::default(), run, SEED, false);
    let (r, _, info) = ckpt.fork().resume();
    check(&r, flits, latency_bits);
    assert_eq!(
        info.skipped_cycles, 0,
        "fast-forward-off leg skipped cycles"
    );
    let (r, _, _) = ckpt.fork().with_fast_forward(true).resume();
    check(&r, flits, latency_bits);
}

fn check_gsf(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in SCRATCH_THREADS {
        let cfg = GsfConfig {
            threads,
            ..GsfConfig::default()
        };
        let r = run_gsf(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    let ckpt = checkpoint_gsf(scenario, GsfConfig::default(), run, SEED, false);
    let (r, _, info) = ckpt.fork().resume();
    check(&r, flits, latency_bits);
    assert_eq!(
        info.skipped_cycles, 0,
        "fast-forward-off leg skipped cycles"
    );
    let (r, _, _) = ckpt.fork().with_fast_forward(true).resume();
    check(&r, flits, latency_bits);
}

fn check_wormhole(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in SCRATCH_THREADS {
        let cfg = WormholeConfig {
            threads,
            ..WormholeConfig::default()
        };
        let r = run_wormhole(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    let ckpt = checkpoint_wormhole(scenario, WormholeConfig::default(), run, SEED, false);
    let (r, _, info) = ckpt.fork().resume();
    check(&r, flits, latency_bits);
    assert_eq!(
        info.skipped_cycles, 0,
        "fast-forward-off leg skipped cycles"
    );
    let (r, _, _) = ckpt.fork().with_fast_forward(true).resume();
    check(&r, flits, latency_bits);
}

#[test]
fn loft_uniform_low_load_is_pinned() {
    // avg_latency = 33.78215667311398
    check_loft(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_588,
        0x4040_E41D_B5B9_AFB5,
    );
}

#[test]
fn gsf_uniform_low_load_is_pinned() {
    // avg_latency = 19.932543520309448
    check_gsf(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_576,
        0x4033_EEBB_2C11_D367,
    );
}

#[test]
fn wormhole_uniform_low_load_is_pinned() {
    // avg_latency = 20.0631044487428
    check_wormhole(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_576,
        0x4034_1027_9CF7_951A,
    );
}

/// The high-load run configuration used by the near-saturation pins:
/// long enough that the networks reach congested steady state, short
/// enough for the test suite.
fn high_load_run() -> RunConfig {
    RunConfig {
        warmup: 200,
        measure: 2_000,
        drain: 1_000,
    }
}

#[test]
fn loft_uniform_high_load_is_pinned() {
    // avg_latency = 928.110465612984
    check_loft(
        &Scenario::uniform(0.60),
        high_load_run(),
        34_320,
        0x408D_00E2_3BCB_98CA,
    );
}

#[test]
fn gsf_uniform_high_load_is_pinned() {
    // avg_latency = 405.18584669860394
    check_gsf(
        &Scenario::uniform(0.60),
        high_load_run(),
        58_728,
        0x4079_52F9_3A63_492D,
    );
}

#[test]
fn wormhole_uniform_high_load_is_pinned() {
    // avg_latency = 454.3367451967068
    check_wormhole(
        &Scenario::uniform(0.60),
        high_load_run(),
        56_360,
        0x407C_6563_4EEE_6F0D,
    );
}

#[test]
fn loft_hotspot_is_pinned() {
    // avg_latency = 1175.2189239332115
    check_loft(
        &Scenario::hotspot(0.02),
        RunConfig::short(),
        4_992,
        0x4092_5CE0_2D98_75D2,
    );
}

#[test]
fn gsf_hotspot_is_pinned() {
    // avg_latency = 1182.5690402476785
    check_gsf(
        &Scenario::hotspot(0.02),
        RunConfig::short(),
        5_004,
        0x4092_7A46_B27C_978C,
    );
}
