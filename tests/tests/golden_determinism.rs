//! Golden determinism tests: each network, run with the shared bench
//! seed and the short run configuration, must reproduce these exact
//! pinned results — down to the last bit of the latency average.
//!
//! These pins were captured from the pre-optimization tree and lock
//! the simulator's observable behaviour across performance work: any
//! change to iteration order, scheduling tie-breaks, or RNG
//! consumption shows up here as a hard failure, not a silent drift.
//! If a pin moves, the change is a semantic change (and needs its own
//! justification), not an optimization.
//!
//! Every pin runs at 1, 2, and 4 shards (`threads` in the configs):
//! sharded parallel stepping must be bit-for-bit identical to the
//! single-threaded engine, so the same pins are the oracle for the
//! parallel path (see `noc_sim::par`). Each pin additionally runs
//! once with quiescence fast-forward disabled — the default runners
//! use the fast path, so the pair certifies that closed-form idle
//! jumps and per-cycle stepping are observably the same simulation.
//!
//! The plain runners used here build networks with the default
//! telemetry probe (`noc_sim::telemetry::NoopProbe`), so these pins
//! also certify that the telemetry-off configuration is bit-identical
//! to a tree without the probe plumbing — the zero-cost half of the
//! telemetry layer's contract (`telemetry_invariance.rs` checks the
//! telemetry-on half).

use loft::LoftConfig;
use loft_bench::{
    run_gsf, run_gsf_info, run_loft, run_loft_info, run_wormhole, run_wormhole_info, SEED,
};
use noc_gsf::GsfConfig;
use noc_sim::RunConfig;
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// The shard counts every pin must reproduce exactly.
const THREADS: [usize; 3] = [1, 2, 4];

/// Asserts a report matches its pinned flit count and the exact IEEE
/// bit pattern of its average latency.
fn check(report: &noc_sim::SimReport, flits: u64, latency_bits: u64) {
    assert_eq!(report.flits_delivered, flits, "flits_delivered drifted");
    assert_eq!(
        report.avg_latency().to_bits(),
        latency_bits,
        "avg_latency drifted: got {:?}, pinned {:?}",
        report.avg_latency(),
        f64::from_bits(latency_bits),
    );
}

fn check_loft(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in THREADS {
        let cfg = LoftConfig {
            threads,
            ..LoftConfig::default()
        };
        let r = run_loft(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    // The default runners above run with quiescence fast-forward
    // enabled; the fast path must reproduce the same pins as plain
    // per-cycle stepping.
    let (r, _) = run_loft_info(scenario, LoftConfig::default(), run, SEED, false, || {});
    check(&r, flits, latency_bits);
}

fn check_gsf(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in THREADS {
        let cfg = GsfConfig {
            threads,
            ..GsfConfig::default()
        };
        let r = run_gsf(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    let (r, _) = run_gsf_info(scenario, GsfConfig::default(), run, SEED, false, || {});
    check(&r, flits, latency_bits);
}

fn check_wormhole(scenario: &Scenario, run: RunConfig, flits: u64, latency_bits: u64) {
    for threads in THREADS {
        let cfg = WormholeConfig {
            threads,
            ..WormholeConfig::default()
        };
        let r = run_wormhole(scenario, cfg, run, SEED);
        check(&r, flits, latency_bits);
    }
    let (r, _) = run_wormhole_info(scenario, WormholeConfig::default(), run, SEED, false, || {});
    check(&r, flits, latency_bits);
}

#[test]
fn loft_uniform_low_load_is_pinned() {
    // avg_latency = 33.78215667311398
    check_loft(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_588,
        0x4040_E41D_B5B9_AFB5,
    );
}

#[test]
fn gsf_uniform_low_load_is_pinned() {
    // avg_latency = 19.932543520309448
    check_gsf(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_576,
        0x4033_EEBB_2C11_D367,
    );
}

#[test]
fn wormhole_uniform_low_load_is_pinned() {
    // avg_latency = 20.0631044487428
    check_wormhole(
        &Scenario::uniform(0.05),
        RunConfig::short(),
        16_576,
        0x4034_1027_9CF7_951A,
    );
}

/// The high-load run configuration used by the near-saturation pins:
/// long enough that the networks reach congested steady state, short
/// enough for the test suite.
fn high_load_run() -> RunConfig {
    RunConfig {
        warmup: 200,
        measure: 2_000,
        drain: 1_000,
    }
}

#[test]
fn loft_uniform_high_load_is_pinned() {
    // avg_latency = 928.110465612984
    check_loft(
        &Scenario::uniform(0.60),
        high_load_run(),
        34_320,
        0x408D_00E2_3BCB_98CA,
    );
}

#[test]
fn gsf_uniform_high_load_is_pinned() {
    // avg_latency = 405.18584669860394
    check_gsf(
        &Scenario::uniform(0.60),
        high_load_run(),
        58_728,
        0x4079_52F9_3A63_492D,
    );
}

#[test]
fn wormhole_uniform_high_load_is_pinned() {
    // avg_latency = 454.3367451967068
    check_wormhole(
        &Scenario::uniform(0.60),
        high_load_run(),
        56_360,
        0x407C_6563_4EEE_6F0D,
    );
}

#[test]
fn loft_hotspot_is_pinned() {
    // avg_latency = 1175.2189239332115
    check_loft(
        &Scenario::hotspot(0.02),
        RunConfig::short(),
        4_992,
        0x4092_5CE0_2D98_75D2,
    );
}

#[test]
fn gsf_hotspot_is_pinned() {
    // avg_latency = 1182.5690402476785
    check_gsf(
        &Scenario::hotspot(0.02),
        RunConfig::short(),
        5_004,
        0x4092_7A46_B27C_978C,
    );
}
