//! Cross-crate integration tests: the paper's QoS requirements
//! (Section 2.1) checked end-to-end on the real networks.

use loft::{LoftConfig, LoftNetwork};
use noc_gsf::{GsfConfig, GsfNetwork};
use noc_sim::{FlowId, RunConfig, SimReport, Simulation};
use noc_traffic::Scenario;

fn short() -> RunConfig {
    RunConfig {
        warmup: 3_000,
        measure: 12_000,
        drain: 8_000,
    }
}

fn loft(scenario: &Scenario, seed: u64) -> SimReport {
    let cfg = LoftConfig::default();
    let r = scenario.reservations(cfg.frame_size).expect("fits");
    Simulation::new(LoftNetwork::new(cfg, &r), scenario.workload(seed), short()).run()
}

fn gsf(scenario: &Scenario, seed: u64) -> SimReport {
    let cfg = GsfConfig::default();
    let r = scenario.reservations(cfg.frame_size).expect("fits");
    Simulation::new(GsfNetwork::new(cfg, &r), scenario.workload(seed), short()).run()
}

/// Requirement (a): guaranteed minimum throughput. Every hotspot flow
/// with an equal reservation receives at least ~its guaranteed share
/// even under 3× oversubscription.
#[test]
fn loft_guarantees_minimum_throughput_under_saturation() {
    let s = Scenario::hotspot(0.05); // 63 × 0.05 ≈ 3× the ejection link
    let report = loft(&s, 1);
    let guarantee = 4.0 / 256.0; // R = 4 flits of a 256-flit frame
    for f in &report.flows {
        assert!(
            f.throughput > 0.9 * guarantee,
            "flow got {} < 90% of its guarantee {}",
            f.throughput,
            guarantee
        );
    }
}

/// Requirement (c): fairness — equal reservations give near-equal
/// throughput (the paper's Figure 10a reports sub-percent deviation;
/// we allow a few percent on a shorter run).
#[test]
fn loft_equal_allocation_is_fair() {
    let s = Scenario::hotspot(0.05);
    let report = loft(&s, 2);
    let g = report.group_throughput(s.group("all").expect("group"));
    assert!(
        g.cv() < 0.10,
        "coefficient of variation {:.3} too high",
        g.cv()
    );
}

/// Requirement (c): differentiated allocation — throughput tracks the
/// configured 8:6:6:3 quadrant weights (Figure 10b).
#[test]
fn loft_differentiated_allocation_is_proportional() {
    let s = Scenario::hotspot_differentiated4(0.05);
    let report = loft(&s, 3);
    let avg = |name: &str| {
        report
            .group_throughput(s.group(name).expect("group"))
            .mean()
    };
    let (r1, r2, r3, r4) = (avg("R1"), avg("R2"), avg("R3"), avg("R4"));
    assert!(r1 > r2 && r2 > r4, "ordering broken: {r1} {r2} {r3} {r4}");
    // R1:R4 configured 8:3 ≈ 2.67.
    let ratio = r1 / r4;
    assert!(
        (2.0..3.5).contains(&ratio),
        "R1/R4 ratio {ratio:.2} far from configured 2.67"
    );
}

/// Requirement (b)-adjacent: the victim of Case Study I keeps its
/// regulated throughput and a flat latency as aggressors scale
/// (Figure 12b).
#[test]
fn loft_isolates_victim_from_aggressors() {
    let calm = loft(&Scenario::case_study_1(0.1), 4);
    let storm = loft(&Scenario::case_study_1(0.8), 4);
    let victim = FlowId::new(0);
    assert!((storm.flow_throughput(victim) - 0.2).abs() < 0.01);
    let lat_calm = calm.flows[victim.index()].total_latency.mean();
    let lat_storm = storm.flows[victim.index()].total_latency.mean();
    assert!(
        lat_storm < lat_calm * 1.5,
        "victim latency degraded: {lat_calm:.1} → {lat_storm:.1}"
    );
}

/// Requirement (d): under-utilized bandwidth is scavenged — the
/// stripped node of Case Study II exceeds its reservation by a large
/// factor on LOFT but not on GSF (Figure 13).
#[test]
fn loft_scavenges_idle_bandwidth_gsf_does_not() {
    let s = Scenario::case_study_2(0.64);
    let l = loft(&s, 5);
    let g = gsf(&s, 5);
    let stripped = FlowId::new(8);
    assert!(
        l.flow_throughput(stripped) > 0.5,
        "LOFT stripped got only {}",
        l.flow_throughput(stripped)
    );
    assert!(
        g.flow_throughput(stripped) < 0.2,
        "GSF stripped should stay coupled to the hotspot, got {}",
        g.flow_throughput(stripped)
    );
    // The grey nodes keep their fair hotspot share in both.
    let grey_l = l.group_throughput(s.group("grey").expect("group"));
    assert!((grey_l.mean() - 0.125).abs() < 0.01);
}

/// Delay bound (Section 5.3.1): observed worst-case network latency
/// under a saturating hotspot stays within the analytic RCQ bound
/// for the longest path.
#[test]
fn loft_latency_respects_analytic_bound() {
    let cfg = LoftConfig::default();
    let s = Scenario::hotspot(0.017);
    let report = loft(&s, 6);
    let bound = noc_model::delay::loft_worst_case_for(
        &cfg,
        noc_sim::NodeId::new(0),
        noc_sim::NodeId::new(63),
    );
    assert!(
        (report.network_latency.max() as u64) <= bound,
        "max network latency {} exceeds bound {}",
        report.network_latency.max(),
        bound
    );
}

/// GSF's global frame recycling really is global: congestion at the
/// hotspot slows the head-frame turnover that every node shares.
#[test]
fn gsf_recycling_slows_under_congestion() {
    use noc_sim::Network as _;
    let idle = {
        let cfg = GsfConfig::default();
        let mut net = GsfNetwork::new(cfg, &[100]);
        let mut out = Vec::new();
        for _ in 0..10_000 {
            net.step(&mut out);
        }
        net.recycles()
    };
    let congested = {
        let s = Scenario::case_study_2(0.64);
        let cfg = GsfConfig::default();
        let r = s.reservations(cfg.frame_size).expect("fits");
        let mut net = GsfNetwork::new(cfg, &r);
        let mut traffic = s.workload(9);
        let mut fresh = Vec::new();
        let mut out = Vec::new();
        for cycle in 0..10_000 {
            fresh.clear();
            noc_sim::TrafficSource::generate(&mut traffic, cycle, &mut fresh);
            for p in fresh.drain(..) {
                noc_sim::Network::enqueue(&mut net, p);
            }
            noc_sim::Network::step(&mut net, &mut out);
        }
        net.recycles()
    };
    assert!(
        congested * 3 < idle,
        "congestion should slow recycling: idle {idle}, congested {congested}"
    );
}

/// Bursty flows (on/off injection) still receive their guaranteed
/// share under LOFT: the frame window absorbs bursts without letting
/// any flow starve.
#[test]
fn loft_guarantees_hold_under_bursty_traffic() {
    let s = Scenario::bursty_hotspot(0.4, 100.0, 300.0); // mean 0.1 ≫ guarantee
    let report = loft(&s, 12);
    let g = report.group_throughput(s.group("all").expect("group"));
    // Saturated hotspot: everyone pinned near the 1/63 fair share.
    assert!((g.mean() - 0.0156).abs() < 0.002, "mean {}", g.mean());
    let guarantee = 4.0 / 256.0;
    assert!(
        g.min() > 0.75 * guarantee,
        "bursty flow starved: min {}",
        g.min()
    );
}

/// Determinism across the whole stack: identical seeds give identical
/// reports on every network.
#[test]
fn full_stack_determinism() {
    let s = Scenario::uniform(0.2);
    let a = loft(&s, 77);
    let b = loft(&s, 77);
    assert_eq!(a.flits_delivered, b.flits_delivered);
    assert_eq!(a.total_latency.mean(), b.total_latency.mean());
    let c = gsf(&s, 77);
    let d = gsf(&s, 77);
    assert_eq!(c.flits_delivered, d.flits_delivered);
}
