//! Telemetry shard invariance: the merged [`TelemetryReport`] must be
//! identical — exact floating point, not approximate — at 1, 2, and 4
//! shards, for every network × {mesh, torus, ring}.
//!
//! This is the telemetry counterpart of `shard_invariance.rs`: shards
//! record events for disjoint node ranges into forked probes and the
//! owner absorbs them back in ascending shard order, so every
//! counter, occupancy accumulator, and per-flow series must land
//! bit-identically regardless of the shard count. `TelemetryReport`
//! derives `PartialEq` over all of it (including the Welford
//! accumulators, whose low bits pin the exact merge order).

use loft::LoftConfig;
use loft_bench::{run_gsf_telemetry, run_loft_telemetry, run_wormhole_telemetry, SEED};
use noc_gsf::GsfConfig;
use noc_sim::telemetry::TelemetryReport;
use noc_sim::{RunConfig, Topology};
use noc_traffic::Scenario;
use noc_wormhole::WormholeConfig;

/// Same shapes as the `SimReport` invariance suite: small enough to
/// stay fast, large enough for real cross-shard traffic at 4 shards.
fn topologies() -> [Topology; 3] {
    [
        Topology::mesh(4, 4),
        Topology::torus(4, 4),
        Topology::ring(12),
    ]
}

/// [`Scenario::uniform`] rebuilt for an arbitrary topology (the
/// ready-made scenarios are fixed to the paper's 8×8 mesh).
fn uniform_on(topo: Topology, rate: f64) -> Scenario {
    let mut s = Scenario::uniform(rate);
    let n = topo.num_nodes();
    s.topo = topo;
    s.flows.truncate(n);
    for (f, src) in s.flows.iter_mut().zip(topo.nodes()) {
        f.src = src;
        f.dest = noc_traffic::DestRule::UniformRandom {
            num_nodes: n as u32,
        };
    }
    s.groups.clear();
    s
}

fn run() -> RunConfig {
    RunConfig {
        warmup: 100,
        measure: 1_000,
        drain: 1_000,
    }
}

fn assert_invariant(name: &str, reports: &[(usize, TelemetryReport)]) {
    let (_, base) = &reports[0];
    assert!(
        base.link_flits.iter().sum::<u64>() > 0,
        "{name}: baseline run moved nothing — test is vacuous"
    );
    assert!(
        base.latency_histogram.count() > 0,
        "{name}: baseline run delivered nothing — test is vacuous"
    );
    for (threads, r) in &reports[1..] {
        assert_eq!(
            r, base,
            "{name}: telemetry at {threads} shards diverged from 1 shard"
        );
    }
}

fn wormhole_at(topo: Topology, threads: usize) -> TelemetryReport {
    let cfg = WormholeConfig {
        threads,
        ..WormholeConfig::on(topo)
    };
    run_wormhole_telemetry(&uniform_on(topo, 0.30), cfg, run(), SEED, || {}).1
}

fn gsf_at(topo: Topology, threads: usize) -> TelemetryReport {
    let cfg = GsfConfig {
        threads,
        frame_size: 200,
        ..GsfConfig::on(topo)
    };
    run_gsf_telemetry(&uniform_on(topo, 0.30), cfg, run(), SEED, || {}).1
}

fn loft_at(topo: Topology, threads: usize) -> TelemetryReport {
    let cfg = LoftConfig {
        threads,
        frame_size: 64,
        nonspec_buffer: 64,
        ..LoftConfig::on(topo)
    };
    run_loft_telemetry(&uniform_on(topo, 0.30), cfg, run(), SEED, || {}).1
}

#[test]
fn wormhole_telemetry_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, wormhole_at(topo, t))).into();
        assert_invariant("wormhole", &reports);
    }
}

#[test]
fn gsf_telemetry_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, gsf_at(topo, t))).into();
        assert_invariant("gsf", &reports);
    }
}

#[test]
fn loft_telemetry_invariant_under_sharding() {
    for topo in topologies() {
        let reports: Vec<_> = [1, 2, 4].map(|t| (t, loft_at(topo, t))).into();
        assert_invariant("loft", &reports);
    }
}

/// The JSON export is a pure function of the report, so it is also
/// shard-invariant — and stays parseable (sanity-check the envelope).
#[test]
fn telemetry_json_invariant_under_sharding() {
    let topo = Topology::mesh(4, 4);
    let base = loft_at(topo, 1).to_json();
    assert!(base.starts_with("{\"telemetry_version\":"));
    assert!(base.ends_with("]}"));
    assert_eq!(base, loft_at(topo, 4).to_json());
}
